//! Property-based tests on the coloring algorithms themselves: for
//! arbitrary graphs, every scheme must produce proper colorings, the
//! greedy family must respect the Δ+1 bound, and structural invariants
//! (isolated vertices get color 1, relabeling-independence of counts on
//! the sequential algorithm) must hold.

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::builder::from_undirected_edges;
use gcol::graph::ordering::Ordering;
use gcol::graph::{Csr, VertexId};
use gcol::simt::{Device, ExecMode};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..120).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        proptest::collection::vec(edge, 0..400)
            .prop_map(move |edges| from_undirected_edges(n, edges))
    })
}

fn det_opts() -> ColorOptions {
    ColorOptions {
        exec_mode: ExecMode::Deterministic,
        ..ColorOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_schemes_proper_on_arbitrary_graphs(g in arb_graph()) {
        let dev = Device::tiny();
        let opts = det_opts();
        for scheme in [
            Scheme::Sequential, Scheme::ThreeStepGm, Scheme::TopoBase,
            Scheme::TopoLdg, Scheme::DataBase, Scheme::DataLdg,
            Scheme::CsrColor, Scheme::CpuGm, Scheme::CpuJp,
        ] {
            let r = scheme.color(&g, &dev, &opts);
            prop_assert!(verify_coloring(&g, &r.colors).is_ok(),
                         "{scheme} produced an improper coloring");
        }
    }

    #[test]
    fn greedy_family_respects_delta_plus_one(g in arb_graph()) {
        let dev = Device::tiny();
        let opts = det_opts();
        let bound = g.max_degree() + 1;
        for scheme in [
            Scheme::Sequential, Scheme::ThreeStepGm, Scheme::TopoBase,
            Scheme::DataBase, Scheme::CpuGm,
        ] {
            let r = scheme.color(&g, &dev, &opts);
            prop_assert!(r.num_colors <= bound,
                "{scheme}: {} colors > Δ+1 = {bound}", r.num_colors);
        }
    }

    #[test]
    fn isolated_vertices_take_color_one(extra in 1usize..40) {
        // A graph of only isolated vertices: first-fit must give 1 to all.
        let g = Csr::empty(extra);
        let dev = Device::tiny();
        for scheme in [Scheme::Sequential, Scheme::TopoBase, Scheme::DataBase] {
            let r = scheme.color(&g, &dev, &det_opts());
            prop_assert!(r.colors.iter().all(|&c| c == 1), "{scheme}");
        }
    }

    #[test]
    fn sequential_orderings_all_proper_and_sdl_bounded(g in arb_graph()) {
        for ord in [Ordering::Natural, Ordering::LargestDegreeFirst,
                    Ordering::SmallestDegreeLast, Ordering::Random(5)] {
            let r = gcol::coloring::seq::greedy_seq(&g, ord);
            prop_assert!(verify_coloring(&g, &r.colors).is_ok());
        }
        // SDL order respects the degeneracy bound.
        let sdl = gcol::coloring::seq::greedy_seq(
            &g, Ordering::SmallestDegreeLast);
        let degen = gcol::graph::ordering::degeneracy(&g);
        prop_assert!(sdl.num_colors <= degen + 1,
                     "SDL {} vs degeneracy {degen}", sdl.num_colors);
    }

    #[test]
    fn gpu_and_cpu_speculative_schemes_agree_within_band(g in arb_graph()) {
        // All SGR variants should land in a tight band of color counts.
        let dev = Device::tiny();
        let opts = det_opts();
        let counts: Vec<usize> = [
            Scheme::Sequential, Scheme::TopoBase, Scheme::DataBase,
            Scheme::ThreeStepGm, Scheme::CpuGm,
        ].iter().map(|s| s.color(&g, &dev, &opts).num_colors).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        prop_assert!(max <= min + 3 || max <= min * 2,
                     "SGR spread too wide: {counts:?}");
    }

    #[test]
    fn seed_changes_csrcolor_but_keeps_it_proper(
        g in arb_graph(), seed in any::<u64>()) {
        let dev = Device::tiny();
        let opts = ColorOptions { seed, ..det_opts() };
        let r = Scheme::CsrColor.color(&g, &dev, &opts);
        prop_assert!(verify_coloring(&g, &r.colors).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn non_bipartite_graphs_need_at_least_three_colors(g in arb_graph()) {
        // Structural oracle: an odd cycle forces χ ≥ 3, so every proper
        // coloring any scheme produces must use ≥ 3 colors.
        prop_assume!(gcol::graph::traverse::bipartition(&g).is_none());
        let dev = Device::tiny();
        let opts = det_opts();
        for scheme in [Scheme::Sequential, Scheme::DataBase, Scheme::CsrColor] {
            let r = scheme.color(&g, &dev, &opts);
            prop_assert!(r.num_colors >= 3,
                "{scheme} used {} colors on a non-bipartite graph",
                r.num_colors);
        }
    }

    #[test]
    fn bipartite_oracle_agrees_with_verifier(g in arb_graph()) {
        // When the BFS 2-coloring exists it must pass the same verifier
        // the schemes are held to.
        if let Some(side) = gcol::graph::traverse::bipartition(&g) {
            prop_assert!(verify_coloring(&g, &side).is_ok());
        }
    }

    #[test]
    fn component_counts_bound_color_reuse(g in arb_graph()) {
        // Each component is colored independently by first-fit, so the
        // whole-graph color count equals the max over components — check
        // via the component with the largest internal count.
        let comps = gcol::graph::traverse::connected_components(&g);
        let dev = Device::tiny();
        let r = Scheme::Sequential.color(&g, &dev, &det_opts());
        let mut per_comp = vec![0u32; comps.count];
        for v in 0..g.num_vertices() {
            let c = comps.label[v] as usize;
            per_comp[c] = per_comp[c].max(r.colors[v]);
        }
        let max_comp = per_comp.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(max_comp as usize, r.num_colors);
    }
}

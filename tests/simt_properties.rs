//! Property-based integration tests of the simulator substrate against
//! host-side oracles: arbitrary kernels over arbitrary data must compute
//! exactly what the equivalent host loop computes, and the timing model
//! must respect basic monotonicity laws.

use gcol::scan::exclusive_scan;
use gcol::simt::mem::Buffer;
use gcol::simt::{
    grid_for, launch, launch_coop, CoopKernel, Device, ExecMode, GpuMem, Kernel, KernelCtx,
};
use proptest::prelude::*;

/// out[i] = a*x[i] + b, with a strided access pattern to vary coalescing.
struct Affine {
    a: u32,
    b: u32,
    stride: usize,
    x: Buffer<u32>,
    out: Buffer<u32>,
}

impl Kernel for Affine {
    fn name(&self) -> &'static str {
        "affine"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        let n = self.x.len();
        if i >= n {
            return;
        }
        // Permuted index: (i * stride) mod n with gcd(stride, n) == 1 is a
        // bijection; we force that in the strategy below.
        let j = (i * self.stride) % n;
        let v = t.ld(self.x, j);
        t.alu(2);
        t.st(self.out, j, v.wrapping_mul(self.a).wrapping_add(self.b));
    }
}

/// Emit every element larger than its predecessor (order-preserving
/// compaction with data-dependent predicates).
struct RisingEdges {
    x: Buffer<u32>,
    out: Buffer<u32>,
}

impl CoopKernel for RisingEdges {
    type Carry = (u32, bool);
    fn name(&self) -> &'static str {
        "rising"
    }
    fn count(&self, t: &mut impl KernelCtx) -> (Self::Carry, u32) {
        let i = t.global_id() as usize;
        if i == 0 || i >= self.x.len() {
            return ((0, false), 0);
        }
        let prev = t.ld(self.x, i - 1);
        let cur = t.ld(self.x, i);
        t.alu(1);
        let rising = cur > prev;
        ((cur, rising), rising as u32)
    }
    fn emit(&self, t: &mut impl KernelCtx, carry: Self::Carry, dst: u32) {
        if carry.1 {
            t.st(self.out, dst as usize, carry.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn affine_kernel_matches_host_loop(
        data in proptest::collection::vec(any::<u32>(), 1..2000),
        a in any::<u32>(),
        b in any::<u32>(),
        stride_sel in 0usize..4,
        block_exp in 0u32..5,
    ) {
        let n = data.len();
        // Strides coprime with any n: 1 plus odd primes (skip those
        // dividing n).
        let candidates = [1usize, 3, 7, 11];
        let stride = candidates[stride_sel];
        prop_assume!(n % stride != 0 || stride == 1);
        let block = 32u32 << block_exp; // 32..512
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let x = mem.alloc_from_slice(&data);
        let out = mem.alloc::<u32>(n);
        let k = Affine { a, b, stride, x, out };
        let stats = launch(&mem, &dev, ExecMode::Deterministic,
                           grid_for(n, block), block, &k);
        let got = mem.read_vec(out);
        for (j, &xv) in data.iter().enumerate() {
            prop_assert_eq!(got[j], xv.wrapping_mul(a).wrapping_add(b));
        }
        prop_assert!(stats.cycles > 0);
        prop_assert!(stats.mem_transactions >= 1);
    }

    #[test]
    fn coop_compaction_matches_host_filter(
        data in proptest::collection::vec(any::<u32>(), 2..3000),
        block_exp in 0u32..4,
    ) {
        let n = data.len();
        let block = 64u32 << block_exp;
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let x = mem.alloc_from_slice(&data);
        let out = mem.alloc::<u32>(n);
        let k = RisingEdges { x, out };
        let (_, total) = launch_coop(&mem, &dev, ExecMode::Deterministic,
                                     grid_for(n, block), block, &k);
        let expect: Vec<u32> = (1..n)
            .filter(|&i| data[i] > data[i - 1])
            .map(|i| data[i])
            .collect();
        prop_assert_eq!(total as usize, expect.len());
        let got = mem.read_vec(out);
        prop_assert_eq!(&got[..expect.len()], expect.as_slice());
    }

    #[test]
    fn coop_totals_agree_with_scan_crate(
        reqs in proptest::collection::vec(0u32..4, 1..500),
    ) {
        // The device-side block scan and the host scan crate must agree on
        // the grand total for identical inputs.
        let (_, host_total) = exclusive_scan(&reqs);

        struct Emitter { reqs: Buffer<u32>, out: Buffer<u32> }
        impl CoopKernel for Emitter {
            type Carry = u32;
            fn count(&self, t: &mut impl KernelCtx) -> (u32, u32) {
                let i = t.global_id() as usize;
                if i >= self.reqs.len() { return (0, 0); }
                let r = t.ld(self.reqs, i);
                (r, r)
            }
            fn emit(&self, t: &mut impl KernelCtx, r: u32, dst: u32) {
                for k in 0..r {
                    t.st(self.out, (dst + k) as usize, 1);
                }
            }
        }

        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let rb = mem.alloc_from_slice(&reqs);
        let out = mem.alloc::<u32>(host_total.max(1) as usize);
        let k = Emitter { reqs: rb, out };
        let (_, total) = launch_coop(&mem, &dev, ExecMode::Deterministic,
                                     grid_for(reqs.len(), 128), 128, &k);
        prop_assert_eq!(total, host_total);
        // Every reserved slot was written exactly once.
        let written = mem.read_vec(out);
        prop_assert!(written[..host_total as usize].iter().all(|&w| w == 1));
    }

    #[test]
    fn more_work_never_takes_less_modeled_time(
        n1 in 100usize..800,
        factor in 2usize..5,
    ) {
        let n2 = n1 * factor;
        let dev = Device::tiny();
        let time_for = |n: usize| {
            let mut mem = GpuMem::new();
            let data: Vec<u32> = (0..n as u32).collect();
            let x = mem.alloc_from_slice(&data);
            let out = mem.alloc::<u32>(n);
            let k = Affine { a: 3, b: 1, stride: 1, x, out };
            launch(&mem, &dev, ExecMode::Deterministic,
                   grid_for(n, 128), 128, &k).cycles
        };
        prop_assert!(time_for(n2) >= time_for(n1));
    }
}

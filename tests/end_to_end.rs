//! End-to-end integration tests spanning every crate: graphs come from
//! generators or IO, colorings from all nine schemes on the simulated
//! device, and every result is checked against the graph-crate verifier.

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::gen::{self, RmatParams, StencilKind};
use gcol::graph::Csr;
use gcol::simt::{Device, ExecMode};

fn det_opts() -> ColorOptions {
    ColorOptions {
        exec_mode: ExecMode::Deterministic,
        ..ColorOptions::default()
    }
}

fn all_schemes() -> [Scheme; 9] {
    [
        Scheme::Sequential,
        Scheme::ThreeStepGm,
        Scheme::TopoBase,
        Scheme::TopoLdg,
        Scheme::DataBase,
        Scheme::DataLdg,
        Scheme::CsrColor,
        Scheme::CpuGm,
        Scheme::CpuJp,
    ]
}

/// A zoo of structurally diverse graphs; every scheme must produce a
/// proper coloring on each.
fn zoo() -> Vec<(&'static str, Csr)> {
    vec![
        ("path", gen::path(501)),
        ("odd-cycle", gen::cycle(333)),
        ("complete", gen::complete(40)),
        ("star", gen::star(1000)),
        ("bipartite", gen::random_bipartite(150, 250, 2000, 3)),
        ("er", gen::erdos_renyi(1500, 9000, 5)),
        ("regular", gen::random_regular(800, 10, 7)),
        ("grid2d", gen::grid2d(37, 23, StencilKind::FivePoint)),
        ("grid2d-9pt", gen::grid2d(25, 25, StencilKind::NinePoint)),
        ("grid3d", gen::grid3d(11, 12, 13)),
        ("mesh", gen::mesh2d(40, 40, 0.12, 9)),
        ("circuit", gen::circuit_graph(2000, 3, 0.8, 11)),
        ("rmat-er", gen::rmat(RmatParams::erdos_renyi(11, 10), 13)),
        ("rmat-skew", gen::rmat(RmatParams::skewed(11, 10), 13)),
        ("isolated", Csr::empty(64)),
    ]
}

#[test]
fn every_scheme_properly_colors_the_zoo() {
    let dev = Device::k20c();
    let opts = det_opts();
    for (name, g) in zoo() {
        for scheme in all_schemes() {
            let r = scheme.color(&g, &dev, &opts);
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme} on {name}: {e}"));
            assert!(
                r.num_colors <= g.max_degree() + 1
                    || scheme == Scheme::CsrColor
                    || scheme == Scheme::CpuJp,
                "{scheme} on {name}: {} colors exceeds Δ+1 = {}",
                r.num_colors,
                g.max_degree() + 1
            );
        }
    }
}

#[test]
fn greedy_schemes_meet_known_chromatic_numbers() {
    let dev = Device::k20c();
    let opts = det_opts();
    // (graph, chromatic number, allowed slack for speculative variants)
    let cases: Vec<(&str, Csr, usize, usize)> = vec![
        ("path", gen::path(100), 2, 1),
        ("even-cycle", gen::cycle(100), 2, 1),
        ("odd-cycle", gen::cycle(101), 3, 1),
        ("complete", gen::complete(25), 25, 0),
        ("star", gen::star(200), 2, 1),
    ];
    for (name, g, chi, slack) in cases {
        for scheme in [
            Scheme::Sequential,
            Scheme::TopoBase,
            Scheme::DataBase,
            Scheme::ThreeStepGm,
            Scheme::CpuGm,
        ] {
            let r = scheme.color(&g, &dev, &opts);
            assert!(
                r.num_colors >= chi,
                "{scheme} on {name} used fewer colors than chromatic number"
            );
            assert!(
                r.num_colors <= chi + slack,
                "{scheme} on {name}: {} colors vs χ = {chi} (+{slack} slack)",
                r.num_colors,
            );
        }
    }
}

#[test]
fn deterministic_mode_is_bit_stable_across_runs() {
    let dev = Device::k20c();
    let opts = det_opts();
    let g = gen::rmat(RmatParams::skewed(11, 12), 99);
    for scheme in [Scheme::TopoLdg, Scheme::DataLdg, Scheme::CsrColor] {
        let a = scheme.color(&g, &dev, &opts);
        let b = scheme.color(&g, &dev, &opts);
        assert_eq!(a.colors, b.colors, "{scheme} functional determinism");
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.total_ms(), b.total_ms(), "{scheme} timing determinism");
    }
}

#[test]
fn parallel_mode_colorings_remain_proper() {
    let dev = Device::k20c();
    let opts = ColorOptions {
        exec_mode: ExecMode::Parallel,
        ..ColorOptions::default()
    };
    let g = gen::rmat(RmatParams::erdos_renyi(12, 12), 5);
    for scheme in Scheme::proposed_four() {
        let r = scheme.color(&g, &dev, &opts);
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}

#[test]
fn mtx_loaded_graph_flows_through_the_whole_pipeline() {
    // Write a graph to MatrixMarket, read it back, color it, verify.
    let g = gen::mesh2d(30, 30, 0.1, 4);
    let mut buf = Vec::new();
    gcol::graph::io::write_matrix_market(&g, &mut buf).unwrap();
    let loaded =
        gcol::graph::io::read_matrix_market(std::io::BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(loaded, g);
    let dev = Device::k20c();
    let r = Scheme::DataLdg.color(&loaded, &dev, &det_opts());
    verify_coloring(&loaded, &r.colors).unwrap();
}

#[test]
fn block_size_sweep_is_functionally_invariant() {
    // Fig. 8 varies the block size; the coloring must stay proper and the
    // quality must stay in the same band for every size.
    let dev = Device::k20c();
    let g = gen::grid3d(16, 16, 16);
    let mut counts = Vec::new();
    for block in [32u32, 64, 128, 256, 512, 1024] {
        let opts = ColorOptions {
            block_size: block,
            ..det_opts()
        };
        let r = Scheme::DataBase.color(&g, &dev, &opts);
        verify_coloring(&g, &r.colors).unwrap();
        counts.push(r.num_colors);
    }
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    assert!(
        max <= min + 3,
        "color quality should not depend strongly on block size: {counts:?}"
    );
}

#[test]
fn csrcolor_quality_gap_shows_at_scale() {
    // The motivating observation (Figs. 1b, 6): MIS coloring burns several
    // times more colors than speculative greedy.
    let dev = Device::k20c();
    let opts = det_opts();
    let g = gen::rmat(RmatParams::erdos_renyi(13, 16), 21);
    let seq = Scheme::Sequential.color(&g, &dev, &opts);
    let csr = Scheme::CsrColor.color(&g, &dev, &opts);
    let sgr = Scheme::DataLdg.color(&g, &dev, &opts);
    assert!(
        csr.num_colors as f64 >= 2.0 * seq.num_colors as f64,
        "csrcolor {} vs sequential {}",
        csr.num_colors,
        seq.num_colors
    );
    assert!(
        sgr.num_colors <= seq.num_colors + 4,
        "SGR {} vs sequential {}",
        sgr.num_colors,
        seq.num_colors
    );
}

#[test]
fn threestep_is_slower_and_data_driven_is_faster_than_sequential() {
    // The headline performance shape of Figs. 1a and 7 at reduced scale.
    let dev = Device::k20c();
    let opts = det_opts();
    let g = gen::rmat(RmatParams::erdos_renyi(14, 16), 33);
    let seq_ms = Scheme::Sequential.color(&g, &dev, &opts).total_ms();
    let threestep_ms = Scheme::ThreeStepGm.color(&g, &dev, &opts).total_ms();
    let data_ms = Scheme::DataLdg.color(&g, &dev, &opts).total_ms();
    assert!(
        threestep_ms > seq_ms,
        "3-step GM must be slower than sequential ({threestep_ms:.3} vs {seq_ms:.3})"
    );
    assert!(
        data_ms < seq_ms,
        "D-ldg must beat sequential ({data_ms:.3} vs {seq_ms:.3})"
    );
}

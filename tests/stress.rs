//! Failure-injection / adversarial stress tests: inputs crafted to trigger
//! the worst behavior of each component — conflict storms where every
//! warp-mate is adjacent, hubs that serialize a warp, degenerate block
//! sizes, and colorMask reuse across many rounds.

use gcol::coloring::{verify_coloring, ColorOptions, Scheme};
use gcol::graph::builder::from_undirected_edges;
use gcol::graph::{gen, Csr, VertexId};
use gcol::simt::{Device, ExecMode};

fn det_opts() -> ColorOptions {
    ColorOptions {
        exec_mode: ExecMode::Deterministic,
        ..ColorOptions::default()
    }
}

/// A graph of disjoint 32-cliques, each exactly filling one warp: every
/// lane of a warp is adjacent to every other lane — the maximal
/// speculative conflict storm under lockstep semantics.
fn warp_clique_storm(num_cliques: usize) -> Csr {
    let n = num_cliques * 32;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for c in 0..num_cliques {
        let base = (c * 32) as VertexId;
        for i in 0..32 {
            for j in (i + 1)..32 {
                edges.push((base + i, base + j));
            }
        }
    }
    from_undirected_edges(n, edges)
}

#[test]
fn conflict_storm_converges_and_stays_delta_plus_one() {
    let g = warp_clique_storm(64);
    let dev = Device::k20c();
    for scheme in [Scheme::TopoBase, Scheme::DataBase, Scheme::DataAtomic] {
        let r = scheme.color(&g, &dev, &det_opts());
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(r.num_colors, 32, "{scheme}: clique needs exactly 32");
        // Lockstep speculation needs one round per clique member in the
        // worst case; it must converge well within the safety valve.
        assert!(r.iterations <= 40, "{scheme}: {} rounds", r.iterations);
    }
}

#[test]
fn single_monster_hub_does_not_break_anything() {
    // Star of 20k leaves: one thread walks 20k neighbors while its warp
    // mates walk one — the divergence + chain-latency worst case.
    let g = gen::star(20_000);
    let dev = Device::k20c();
    for scheme in [Scheme::TopoLdg, Scheme::DataLdg, Scheme::CsrColor] {
        let r = scheme.color(&g, &dev, &det_opts());
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.total_ms().is_finite() && r.total_ms() > 0.0);
    }
}

#[test]
fn extreme_block_sizes_stay_correct() {
    let g = gen::erdos_renyi(3000, 18_000, 1);
    let dev = Device::k20c();
    for block in [1u32, 2, 31, 33, 1024] {
        let opts = ColorOptions {
            block_size: block,
            ..det_opts()
        };
        let r = Scheme::DataBase.color(&g, &dev, &opts);
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("block {block}: {e}"));
    }
}

#[test]
#[should_panic(expected = "bad block size")]
fn oversized_block_is_rejected() {
    let g = gen::path(10);
    let dev = Device::k20c();
    let opts = ColorOptions {
        block_size: 2048,
        ..det_opts()
    };
    Scheme::TopoBase.color(&g, &dev, &opts);
}

#[test]
fn many_rounds_do_not_corrupt_the_colormask_reuse() {
    // A long path colored with 32-thread blocks maximizes warp-mate
    // conflicts and hence the number of rounds the per-lane colorMask is
    // reused across — the pass-tagged markers must stay sound.
    let g = gen::path(50_000);
    let dev = Device::k20c();
    let opts = ColorOptions {
        block_size: 32,
        ..det_opts()
    };
    let r = Scheme::TopoBase.color(&g, &dev, &opts);
    verify_coloring(&g, &r.colors).unwrap();
    assert!(r.num_colors <= 3, "path needs ≤ 3 under any greedy order");
}

#[test]
fn dense_small_world_with_multiple_components() {
    // Disconnected mix: cliques + isolated vertices + a bipartite blob.
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Clique on 0..20.
    for i in 0..20u32 {
        for j in (i + 1)..20 {
            edges.push((i, j));
        }
    }
    // Bipartite 40..60 vs 60..90.
    for a in 40u32..60 {
        for b in 60u32..90 {
            if (a + b) % 3 == 0 {
                edges.push((a, b));
            }
        }
    }
    let g = from_undirected_edges(120, edges); // 90..120 isolated
    let dev = Device::k20c();
    for scheme in [Scheme::Sequential, Scheme::DataLdg, Scheme::CpuRokos] {
        let r = scheme.color(&g, &dev, &det_opts());
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.num_colors >= 20, "clique forces ≥ 20");
        // Isolated tail must be color 1.
        assert!(r.colors[90..].iter().all(|&c| c == 1));
    }
}

#[test]
fn csrcolor_survives_adversarial_hash_collisions() {
    // All vertices hash through the same seed; a clique forces total
    // ordering resolution purely via tie-breaks.
    let g = gen::complete(64);
    let dev = Device::k20c();
    let r = Scheme::CsrColor.color(&g, &dev, &det_opts());
    verify_coloring(&g, &r.colors).unwrap();
    assert_eq!(r.num_colors, 64);
}

#[test]
fn threestep_handles_zero_conflict_graphs() {
    // A graph so sparse the GPU rounds leave nothing for the CPU step.
    let g = gen::path(5000);
    let dev = Device::k20c();
    let r = Scheme::ThreeStepGm.color(&g, &dev, &det_opts());
    verify_coloring(&g, &r.colors).unwrap();
}

//! Offline stand-in for the [`loom`](https://docs.rs/loom) concurrency
//! model checker.
//!
//! The real loom is unreachable from this build environment, so this shim
//! implements the core idea from scratch: run a test body many times,
//! exhaustively enumerating the order in which its threads interleave at
//! *synchronization points* (mutex acquisitions, condvar waits, atomic
//! operations, spawns, joins), so that order-dependent bugs are found
//! systematically instead of by luck.
//!
//! # How it works
//!
//! Every thread spawned inside [`model`] is a real OS thread, but only
//! one runs at a time: a cooperative `Scheduler` owns an `active`
//! token, and each loom primitive calls back into the scheduler at a
//! *choice point*, where the scheduler picks which runnable thread runs
//! next. The sequence of choices is recorded; after the execution
//! completes, the driver backtracks depth-first — the last choice point
//! with an unexplored alternative is advanced and the prefix replayed —
//! until the whole (preemption-bounded) schedule tree is exhausted.
//!
//! Blocking is modeled, not spun: a thread that would block (contended
//! mutex, condvar wait, join on a live thread) is parked in a
//! `Blocked*` state and only becomes schedulable again when the event it
//! waits for happens. A state where no thread is runnable and not all
//! have finished is reported as a **deadlock** with the blocked-thread
//! states in the panic message.
//!
//! # Preemption bounding
//!
//! Exhaustive interleaving is exponential; like real loom, the explorer
//! bounds the number of *preemptions* per execution — choice points
//! where a runnable current thread is descheduled in favor of another.
//! Most concurrency bugs need very few preemptions (the classic result
//! behind CHESS-style bounded search), so the default bound of 2 already
//! covers the bug classes these tests target while keeping runs fast.
//! `LOOM_MAX_PREEMPTIONS` raises it (the nightly CI job does).
//!
//! # Honest differences vs real loom
//!
//! * **Sequential consistency only.** Because exactly one thread runs at
//!   a time, every atomic behaves as `SeqCst`; relaxed-memory reorderings
//!   that real loom models (its C11 memory-model layer) are not explored.
//! * **`notify_one` wakes the longest waiter** (FIFO) instead of
//!   branching over every waiter choice, and condvars never wake
//!   spuriously. Code must still tolerate wakeups via the standard
//!   `while` re-check pattern — a missing loop shows up as an assertion
//!   failure on some schedule, not as a missed wakeup.
//! * **`sync::Arc` is `std::sync::Arc`** — drop/ref-count interleavings
//!   are not explored.
//! * Executions must be deterministic given the schedule (no wall-clock
//!   branching, no randomness); a replay divergence aborts with a
//!   "nondeterministic execution" panic rather than exploring garbage.
//!
//! Environment knobs: `LOOM_MAX_PREEMPTIONS` (default 2),
//! `LOOM_MAX_ITERATIONS` (default 100 000 executions — exceeding it is a
//! *failure*, not a silent truncation), `LOOM_LOG=1` prints the explored
//! execution count.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};

/// Payload used to unwind threads of an aborted execution (first panic or
/// detected deadlock wins; the rest are torn down with this token and
/// their unwinds discarded).
struct AbortToken;

/// Hard cap on sync operations in one execution — a runaway model (e.g.
/// a spin loop around an atomic) fails loudly instead of hanging CI.
const MAX_OPS_PER_EXECUTION: u64 = 1_000_000;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    BlockedMutex(u64),
    BlockedCondvar { cv: u64, seq: u64 },
    BlockedJoin(usize),
    Finished,
}

/// One recorded scheduling decision: which position of the runnable set
/// was taken, out of how many options. The driver's DFS advances `pos`
/// on backtrack.
#[derive(Clone, Copy, Debug)]
struct ChoiceRec {
    pos: usize,
    len: usize,
}

struct SchedState {
    threads: Vec<TState>,
    /// Thread currently holding the run token.
    active: usize,
    /// Index of the next choice point within `path`.
    step: usize,
    /// Replay prefix (from the driver) extended in place by new choices.
    path: Vec<ChoiceRec>,
    preemptions: usize,
    wait_seq: u64,
    ops: u64,
    aborting: bool,
    failure: Option<Box<dyn Any + Send>>,
    all_done: bool,
}

struct Scheduler {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    max_preemptions: usize,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    fn new(prefix: Vec<ChoiceRec>, max_preemptions: usize) -> Self {
        Self {
            state: StdMutex::new(SchedState {
                threads: vec![TState::Runnable],
                active: 0,
                step: 0,
                path: prefix,
                preemptions: 0,
                wait_seq: 0,
                ops: 0,
                aborting: false,
                failure: None,
                all_done: false,
            }),
            cv: StdCondvar::new(),
            max_preemptions,
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Picks the next thread to run. `current_runnable` says whether the
    /// calling thread stays schedulable (a plain choice point) or is
    /// blocking/finishing. Returns the chosen thread, or `None` when the
    /// execution is complete or aborting.
    fn choose_next(
        &self,
        st: &mut SchedState,
        current: usize,
        current_runnable: bool,
    ) -> Option<usize> {
        if st.aborting {
            return None;
        }
        st.ops += 1;
        if st.ops > MAX_OPS_PER_EXECUTION {
            self.abort(
                st,
                format!(
                    "loom: execution exceeded {MAX_OPS_PER_EXECUTION} sync operations \
                     (livelock in the model?)"
                ),
            );
            return None;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, TState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| matches!(t, TState::Finished)) {
                st.all_done = true;
                self.cv.notify_all();
            } else {
                self.abort(
                    st,
                    format!("loom: deadlock detected; thread states: {:?}", st.threads),
                );
            }
            return None;
        }
        // Preemption bound: once spent, a still-runnable current thread
        // keeps running (the only option offered, so DFS records no
        // branch here).
        let options: Vec<usize> = if current_runnable && st.preemptions >= self.max_preemptions {
            vec![current]
        } else {
            runnable
        };
        let pos = if st.step < st.path.len() {
            let rec = st.path[st.step];
            if rec.len != options.len() {
                self.abort(
                    st,
                    format!(
                        "loom: nondeterministic execution: replay step {} saw {} options, \
                         recorded {} (model must not branch on time or randomness)",
                        st.step,
                        options.len(),
                        rec.len
                    ),
                );
                return None;
            }
            rec.pos
        } else {
            st.path.push(ChoiceRec {
                pos: 0,
                len: options.len(),
            });
            0
        };
        st.step += 1;
        let chosen = options[pos];
        if current_runnable && chosen != current {
            st.preemptions += 1;
        }
        st.active = chosen;
        Some(chosen)
    }

    /// Flags the execution as failed and wakes every parked thread so it
    /// can unwind with [`AbortToken`].
    fn abort(&self, st: &mut SchedState, msg: String) {
        if !st.aborting {
            st.aborting = true;
            st.failure = Some(Box::new(msg));
        }
        self.cv.notify_all();
    }

    /// A plain choice point: the calling thread stays runnable and waits
    /// until it is scheduled again.
    fn switch(&self, id: usize) {
        let mut st = self.lock();
        match self.choose_next(&mut st, id, true) {
            Some(next) if next == id => return,
            Some(_) => self.cv.notify_all(),
            None => {
                drop(st);
                panic::panic_any(AbortToken);
            }
        }
        self.wait_for_turn(st, id);
    }

    /// Parks the calling thread in `state` until something wakes it and
    /// the scheduler picks it.
    fn block(&self, id: usize, state: TState) {
        let mut st = self.lock();
        st.threads[id] = state;
        if self.choose_next(&mut st, id, false).is_none() {
            drop(st);
            panic::panic_any(AbortToken);
        }
        self.cv.notify_all();
        self.wait_for_turn(st, id);
    }

    fn wait_for_turn(&self, mut st: std::sync::MutexGuard<'_, SchedState>, id: usize) {
        while st.active != id && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
    }

    /// Marks every thread blocked on `mutex_id` runnable again (the lock
    /// was released; they re-contend at their next scheduling).
    fn wake_mutex_waiters(&self, mutex_id: u64) {
        let mut st = self.lock();
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedMutex(mutex_id) {
                *t = TState::Runnable;
            }
        }
    }

    fn thread_finished(&self, id: usize, payload: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock();
        st.threads[id] = TState::Finished;
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedJoin(id) {
                *t = TState::Runnable;
            }
        }
        if let Some(p) = payload {
            if !st.aborting {
                st.aborting = true;
                st.failure = Some(p);
            }
        }
        if st.aborting {
            if st.threads.iter().all(|t| matches!(t, TState::Finished)) {
                st.all_done = true;
            }
            self.cv.notify_all();
            return;
        }
        if self.choose_next(&mut st, id, false).is_some() {
            self.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread context
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    sched: StdArc<Scheduler>,
    id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Ctx {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

/// A scheduling point, from inside the model.
fn point() {
    let c = ctx();
    c.sched.switch(c.id);
}

fn thread_main(sched: StdArc<Scheduler>, id: usize, body: impl FnOnce()) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            sched: StdArc::clone(&sched),
            id,
        })
    });
    // Wait to be scheduled for the first time.
    {
        let mut st = sched.lock();
        while st.active != id && !st.aborting {
            st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    let payload = match result {
        Ok(()) => None,
        Err(p) if p.is::<AbortToken>() => None,
        Err(p) => Some(p),
    };
    sched.thread_finished(id, payload);
    CTX.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Serializes concurrent `model()` calls (e.g. `cargo test` running two
/// loom tests on different harness threads): the panic-hook swap below is
/// process-global.
static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

/// Exploration settings; the [`model`] function uses the defaults.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum preemptive context switches per execution
    /// (`LOOM_MAX_PREEMPTIONS`, default 2).
    pub preemption_bound: Option<usize>,
    /// Maximum executions before the exploration itself fails
    /// (`LOOM_MAX_ITERATIONS`, default 100 000).
    pub max_iterations: Option<usize>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// Settings from the environment (or the defaults).
    pub fn new() -> Self {
        Self {
            preemption_bound: None,
            max_iterations: None,
        }
    }

    /// Explores every schedule of `f` within the preemption bound,
    /// propagating the first panic (with its original payload) and
    /// reporting deadlocks. Returns normally iff every schedule does.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let max_preemptions = self
            .preemption_bound
            .unwrap_or_else(|| env_usize("LOOM_MAX_PREEMPTIONS", 2));
        let max_iterations = self
            .max_iterations
            .unwrap_or_else(|| env_usize("LOOM_MAX_ITERATIONS", 100_000));
        let _guard = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        // Silence the torn-down threads' AbortToken unwinds; real panics
        // still print (and are re-raised on the test thread below).
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|info| {
            if !info.payload().is::<AbortToken>() {
                let loc = info
                    .location()
                    .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
                    .unwrap_or_default();
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "Box<dyn Any>".into());
                eprintln!("loom model thread panicked at {loc}:\n{msg}");
            }
        }));
        let restore = |hook: Box<dyn Fn(&panic::PanicHookInfo<'_>) + Send + Sync>| {
            let _ = panic::take_hook();
            panic::set_hook(hook);
        };

        let f = StdArc::new(f);
        let mut prefix: Vec<ChoiceRec> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > max_iterations {
                restore(prev_hook);
                panic!(
                    "loom: exploration exceeded {max_iterations} executions \
                     (raise LOOM_MAX_ITERATIONS or shrink the model)"
                );
            }
            let sched = StdArc::new(Scheduler::new(std::mem::take(&mut prefix), max_preemptions));
            {
                let body = StdArc::clone(&f);
                let s = StdArc::clone(&sched);
                let os = std::thread::Builder::new()
                    .name("loom-root".into())
                    .spawn(move || thread_main(s, 0, move || body()))
                    .expect("spawn loom root");
                sched
                    .os_handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(os);
            }
            // Root starts active (active == 0); wait for the execution.
            let (path, failure) = {
                let mut st = sched.lock();
                while !st.all_done {
                    st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                (std::mem::take(&mut st.path), st.failure.take())
            };
            for h in sched
                .os_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                let _ = h.join();
            }
            if let Some(p) = failure {
                restore(prev_hook);
                panic::resume_unwind(p);
            }
            // Depth-first backtrack: advance the deepest choice with an
            // unexplored alternative, drop exhausted tail choices.
            prefix = path;
            loop {
                match prefix.last_mut() {
                    None => break,
                    Some(last) if last.pos + 1 < last.len => {
                        last.pos += 1;
                        break;
                    }
                    Some(_) => {
                        prefix.pop();
                    }
                }
            }
            if prefix.is_empty() {
                break;
            }
        }
        restore(prev_hook);
        if std::env::var("LOOM_LOG").is_ok() {
            eprintln!(
                "loom: explored {iterations} executions (preemption bound {max_preemptions})"
            );
        }
    }
}

/// Explores every schedule of `f` with the default bounds. See [`Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

// ---------------------------------------------------------------------------
// loom::thread
// ---------------------------------------------------------------------------

/// Model-aware replacement for `std::thread`.
pub mod thread {
    use super::*;

    /// Handle to a model thread; joining blocks (in model time) until the
    /// thread finishes.
    pub struct JoinHandle<T> {
        id: usize,
        slot: StdArc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result. A child
        /// panic aborts the whole model, so this only resolves `Ok`.
        pub fn join(self) -> std::thread::Result<T> {
            let c = ctx();
            loop {
                {
                    let st = c.sched.lock();
                    if matches!(st.threads[self.id], TState::Finished) {
                        break;
                    }
                }
                c.sched.block(c.id, TState::BlockedJoin(self.id));
            }
            let v = self
                .slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("joined thread left no result");
            Ok(v)
        }
    }

    /// Spawns a model thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("loom spawn")
    }

    /// Yields the current thread at a scheduling point.
    pub fn yield_now() {
        point();
    }

    /// Mirror of `std::thread::Builder` (the name is carried through to
    /// the OS thread for debuggability; stack size is ignored).
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// A new, default builder.
        pub fn new() -> Self {
            Self::default()
        }

        /// Names the thread.
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawns a model thread.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let c = ctx();
            let slot: StdArc<StdMutex<Option<T>>> = StdArc::new(StdMutex::new(None));
            let id = {
                let mut st = c.sched.lock();
                st.threads.push(TState::Runnable);
                st.threads.len() - 1
            };
            let sched = StdArc::clone(&c.sched);
            let body_slot = StdArc::clone(&slot);
            let os = std::thread::Builder::new()
                .name(self.name.unwrap_or_else(|| format!("loom-{id}")))
                .spawn(move || {
                    thread_main(StdArc::clone(&sched), id, move || {
                        let v = f();
                        *body_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    })
                })?;
            c.sched
                .os_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(os);
            // Choice point: the child may run before the spawner proceeds.
            c.sched.switch(c.id);
            Ok(JoinHandle { id, slot })
        }
    }
}

// ---------------------------------------------------------------------------
// loom::sync
// ---------------------------------------------------------------------------

/// Model-aware replacements for `std::sync` primitives.
pub mod sync {
    use super::*;
    pub use std::sync::Arc;
    use std::sync::LockResult;

    static NEXT_SYNC_ID: StdAtomicU64 = StdAtomicU64::new(1);

    fn next_id() -> u64 {
        NEXT_SYNC_ID.fetch_add(1, StdOrdering::Relaxed)
    }

    /// Model-checked mutex: acquisition is a scheduling point, contention
    /// parks the thread in the model scheduler.
    pub struct Mutex<T> {
        id: u64,
        /// Model-level ownership; the inner std lock is never contended
        /// (only the model-level owner touches it).
        held: std::sync::atomic::AtomicBool,
        inner: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        /// A new unlocked mutex.
        pub fn new(value: T) -> Self {
            Self {
                id: next_id(),
                held: std::sync::atomic::AtomicBool::new(false),
                inner: StdMutex::new(value),
            }
        }

        /// Acquires the lock (a model scheduling point; blocks in model
        /// time while contended). Never poisoned.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let c = ctx();
            loop {
                c.sched.switch(c.id);
                if !self.held.swap(true, StdOrdering::SeqCst) {
                    break;
                }
                c.sched.block(c.id, TState::BlockedMutex(self.id));
            }
            Ok(MutexGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            })
        }
    }

    /// Guard for [`Mutex`]; releases the model-level lock on drop and
    /// wakes blocked threads.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard live")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard live")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            self.lock.held.store(false, StdOrdering::SeqCst);
            if let Some(c) = CTX.with(|c| c.borrow().clone()) {
                c.sched.wake_mutex_waiters(self.lock.id);
            }
        }
    }

    /// Model-checked condition variable. `notify_one` wakes the longest
    /// waiter; there are no spurious wakeups (see the crate docs).
    pub struct Condvar {
        id: u64,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        /// A new condvar with no waiters.
        pub fn new() -> Self {
            Self { id: next_id() }
        }

        /// Atomically releases the guard's mutex and parks until
        /// notified, then re-acquires. Never poisoned.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let c = ctx();
            let lock = guard.lock;
            let seq = {
                let mut st = c.sched.lock();
                st.wait_seq += 1;
                st.wait_seq
            };
            // Release-and-park is atomic w.r.t. the model: the blocked
            // state is installed by `block` before any other thread runs.
            drop(guard);
            c.sched
                .block(c.id, TState::BlockedCondvar { cv: self.id, seq });
            lock.lock()
        }

        /// Wakes the longest-parked waiter, if any (lost otherwise).
        pub fn notify_one(&self) {
            let c = ctx();
            let mut st = c.sched.lock();
            let oldest = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t {
                    TState::BlockedCondvar { cv, seq } if *cv == self.id => Some((*seq, i)),
                    _ => None,
                })
                .min();
            if let Some((_, i)) = oldest {
                st.threads[i] = TState::Runnable;
            }
        }

        /// Wakes every parked waiter.
        pub fn notify_all(&self) {
            let c = ctx();
            let mut st = c.sched.lock();
            for t in st.threads.iter_mut() {
                if matches!(t, TState::BlockedCondvar { cv, .. } if *cv == self.id) {
                    *t = TState::Runnable;
                }
            }
        }
    }

    /// Model-aware atomics: every operation is a scheduling point; all
    /// orderings behave as `SeqCst` (see the crate docs).
    pub mod atomic {
        use super::super::point;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomics {
            ($($name:ident($inner:ident, $ty:ty);)+) => {$(
                /// Model-aware atomic: every operation is a scheduling
                /// point and behaves as `SeqCst`.
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$inner);

                impl $name {
                    /// A new atomic with the given value.
                    pub fn new(v: $ty) -> Self {
                        Self(std::sync::atomic::$inner::new(v))
                    }

                    /// Atomic load (scheduling point).
                    pub fn load(&self, _o: Ordering) -> $ty {
                        point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Atomic store (scheduling point).
                    pub fn store(&self, v: $ty, _o: Ordering) {
                        point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// Atomic swap (scheduling point).
                    pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Atomic compare-exchange (scheduling point).
                    pub fn compare_exchange(
                        &self,
                        cur: $ty,
                        new: $ty,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$ty, $ty> {
                        point();
                        self.0
                            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            )+};
        }

        atomics! {
            AtomicBool(AtomicBool, bool);
            AtomicU32(AtomicU32, u32);
            AtomicU64(AtomicU64, u64);
            AtomicUsize(AtomicUsize, usize);
        }

        macro_rules! fetch_ops {
            ($($name:ident: $ty:ty;)+) => {$(
                impl $name {
                    /// Atomic add returning the previous value
                    /// (scheduling point).
                    pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }
                }
            )+};
        }

        fetch_ops! {
            AtomicU32: u32;
            AtomicU64: u64;
            AtomicUsize: usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::thread;

    #[test]
    fn explores_both_orders_of_two_writers() {
        // Record which thread wrote last across executions: with two
        // unsynchronized writers both final values must be observed.
        use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
        use std::sync::Arc as StdArc;
        let seen = StdArc::new(StdAtomicUsize::new(0));
        let seen2 = StdArc::clone(&seen);
        super::model(move || {
            let v = Arc::new(Mutex::new(0usize));
            let v2 = Arc::clone(&v);
            let t = thread::spawn(move || {
                *v2.lock().unwrap() = 1;
            });
            *v.lock().unwrap() = 2;
            t.join().unwrap();
            let last = *v.lock().unwrap();
            seen2.fetch_or(1 << last, StdOrdering::SeqCst);
        });
        assert_eq!(
            seen.load(StdOrdering::SeqCst),
            0b110,
            "both final values must be explored"
        );
    }

    #[test]
    fn finds_unsynchronized_check_then_act() {
        // The classic lost-update: two threads read-modify-write through
        // an atomic without a CAS loop. Some interleaving loses one
        // increment; the model must find it.
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = thread::spawn(move || {
                    let v = n2.load(Ordering::SeqCst);
                    n2.store(v + 1, Ordering::SeqCst);
                });
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(found.is_err(), "model missed the lost-update interleaving");
    }

    #[test]
    fn condvar_wakeup_is_not_lost() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut ready = m.lock().unwrap();
                *ready = true;
                cv.notify_one();
                drop(ready);
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    #[test]
    fn deadlock_is_reported() {
        let r = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                t.join().unwrap();
            });
        });
        let msg = r.expect_err("AB/BA locking must deadlock on some schedule");
        let msg = msg.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }
}

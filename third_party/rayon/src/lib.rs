//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! Presents the subset of rayon's parallel-iterator API that this
//! workspace uses, executed **sequentially** on the calling thread.
//! Semantics are identical for race-free algorithms (which is what the
//! workspace's deterministic tests require); wall-clock parallel speedup
//! is absent. See `third_party/README.md` for why this exists.

#![allow(clippy::all)]

pub mod iter {
    /// A value of one of two types; `partition_map` routes items with it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Either<L, R> {
        /// Goes to the first output collection.
        Left(L),
        /// Goes to the second output collection.
        Right(R),
    }

    /// A "parallel" iterator: a thin wrapper over a sequential iterator
    /// providing rayon's adapter names.
    pub struct Par<I>(pub I);

    // `Par` is itself an iterator so `a.zip(b.par_iter())` composes; the
    // inherent adapter methods below shadow `Iterator`'s same-named ones
    // during method resolution, keeping rayon signatures (e.g. the
    // two-argument `reduce`) intact.
    impl<I: Iterator> Iterator for Par<I> {
        type Item = I::Item;
        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: DoubleEndedIterator> DoubleEndedIterator for Par<I> {
        fn next_back(&mut self) -> Option<I::Item> {
            self.0.next_back()
        }
    }

    impl<I: ExactSizeIterator> ExactSizeIterator for Par<I> {}

    impl<I: Iterator> Par<I> {
        pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> Par<std::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
            Par(self.0.filter(f))
        }

        pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
            self,
            f: F,
        ) -> Par<std::iter::FilterMap<I, F>> {
            Par(self.0.filter_map(f))
        }

        pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
            Par(self.0.enumerate())
        }

        pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
            Par(self.0.zip(other.into_par_iter().0))
        }

        pub fn rev(self) -> Par<std::iter::Rev<I>>
        where
            I: DoubleEndedIterator,
        {
            Par(self.0.rev())
        }

        pub fn flat_map<R: IntoIterator, F: FnMut(I::Item) -> R>(
            self,
            f: F,
        ) -> Par<std::iter::FlatMap<I, R, F>> {
            Par(self.0.flat_map(f))
        }

        /// Rayon's `flat_map_iter` (sequential sub-iterators) — identical
        /// to `flat_map` here.
        pub fn flat_map_iter<R: IntoIterator, F: FnMut(I::Item) -> R>(
            self,
            f: F,
        ) -> Par<std::iter::FlatMap<I, R, F>> {
            Par(self.0.flat_map(f))
        }

        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// Rayon's per-worker-state `for_each`; sequentially there is
        /// exactly one worker, so `init` runs once.
        pub fn for_each_init<T, INIT: Fn() -> T, F: FnMut(&mut T, I::Item)>(
            self,
            init: INIT,
            mut f: F,
        ) {
            let mut state = init();
            self.0.for_each(move |x| f(&mut state, x))
        }

        /// Rayon's per-worker-state `map`.
        pub fn map_init<T, R, INIT, F>(self, init: INIT, mut f: F) -> Par<impl Iterator<Item = R>>
        where
            INIT: Fn() -> T,
            F: FnMut(&mut T, I::Item) -> R,
        {
            let mut state = init();
            Par(self.0.map(move |x| f(&mut state, x)))
        }

        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        pub fn count(self) -> usize {
            self.0.count()
        }

        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }

        pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut it = self.0;
            let mut f = f;
            it.all(|x| f(x))
        }

        pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut it = self.0;
            let mut f = f;
            it.any(|x| f(x))
        }

        pub fn copied<'a, T: 'a + Copy>(self) -> Par<std::iter::Copied<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.copied())
        }

        pub fn cloned<'a, T: 'a + Clone>(self) -> Par<std::iter::Cloned<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.cloned())
        }

        /// Rayon's "any worker finds it" search — sequentially the first
        /// match.
        pub fn find_map_any<R, F: FnMut(I::Item) -> Option<R>>(self, f: F) -> Option<R> {
            let mut it = self.0;
            let mut f = f;
            it.find_map(|x| f(x))
        }

        /// Rayon-style reduce: fold from a fresh identity value.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }

        /// Routes each item into one of two collections via [`Either`].
        pub fn partition_map<A, B, L, R, F>(self, f: F) -> (L, R)
        where
            F: FnMut(I::Item) -> Either<A, B>,
            L: Default + Extend<A>,
            R: Default + Extend<B>,
        {
            let mut f = f;
            let (mut l, mut r) = (L::default(), R::default());
            for x in self.0 {
                match f(x) {
                    Either::Left(a) => l.extend(std::iter::once(a)),
                    Either::Right(b) => r.extend(std::iter::once(b)),
                }
            }
            (l, r)
        }
    }

    /// By-value conversion into a [`Par`] iterator (`into_par_iter`).
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Iter = T::IntoIter;
        type Item = T::Item;
        fn into_par_iter(self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// Borrowing conversion (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'a;
        fn par_iter(&'a self) -> Par<Self::Iter>;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// Mutably borrowing conversion (`par_iter_mut`).
    pub trait IntoParallelRefMutIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'a;
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        type Item = <&'a mut C as IntoIterator>::Item;
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }
}

pub mod slice {
    use super::iter::Par;

    /// `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.chunks(chunk_size))
        }
    }

    /// `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.chunks_mut(chunk_size))
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use crate::iter::Either;
    use crate::prelude::*;

    #[test]
    fn adapters_match_sequential() {
        let v = vec![1u32, 2, 3, 4, 5];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let s: u32 = v.par_iter().copied().sum();
        assert_eq!(s, 15);
        let (even, odd): (Vec<u32>, Vec<u32>) = v.par_iter().partition_map(|&x| {
            if x % 2 == 0 {
                Either::Left(x)
            } else {
                Either::Right(x)
            }
        });
        assert_eq!(even, vec![2, 4]);
        assert_eq!(odd, vec![1, 3, 5]);
    }

    #[test]
    fn chunks_and_reduce() {
        let xs: Vec<u32> = (0..100).collect();
        let total = xs
            .par_chunks(7)
            .map(|c| c.iter().sum::<u32>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn zip_and_mut() {
        let mut out = vec![0u32; 4];
        let xs = vec![1u32, 2, 3, 4];
        out.par_iter_mut()
            .zip(xs.par_iter())
            .for_each(|(o, &x)| *o = x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
        let r: Vec<usize> = (0..4usize).into_par_iter().rev().collect();
        assert_eq!(r, vec![3, 2, 1, 0]);
    }
}

//! Offline shim for serde's derive macros.
//!
//! Parses the derive input with a small hand-rolled token scanner (no
//! syn/quote available offline) and emits `Serialize`/`Deserialize`
//! impls against the `serde` shim's `Value`-tree traits. Supported
//! shapes: non-generic structs with named fields, and non-generic enums
//! with unit, newtype, tuple and struct variants (externally tagged,
//! like real serde). Attributes (`#[serde(...)]`, doc comments) are
//! ignored.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips leading `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Consumes a type (or any token run) up to a top-level comma, tracking
/// `<`/`>` nesting so commas inside generics don't split early.
fn skip_to_top_level_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while let Some(tt) = toks.get(i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected ':' after field `{name}`, got {other:?}"),
        }
        i = skip_to_top_level_comma(&toks, i);
        i += 1; // past the comma (or end)
        fields.push(Field { name });
    }
    fields
}

/// Counts tuple-variant fields by splitting the paren group on
/// top-level commas.
fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_to_top_level_comma(&toks, i);
        n += 1;
        i += 1;
    }
    n
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        i = skip_to_top_level_comma(&toks, i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            panic!(
                "serde shim derive: only braced structs/enums are supported (`{name}`: {other:?})"
            )
        }
    };
    match kw.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("f{k}")).collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        ::serde::Value::Object(vec![\n"
            ));
            for f in &fields {
                let fname = &f.name;
                out.push_str(&format!(
                    "            (String::from(\"{fname}\"), ::serde::Serialize::to_value(&self.{fname})),\n"
                ));
            }
            out.push_str("        ])\n    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for v in &variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "            {name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vname}(f0) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds = tuple_binders(*n).join(", ");
                        let elems = tuple_binders(*n)
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "            {name}::{vname}({binds}) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Value::Array(vec![{elems}]))]),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let pairs = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "            {name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Value::Object(vec![{pairs}]))]),\n"
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> Result<Self, String> {{\n        Ok(Self {{\n"
            ));
            for f in &fields {
                let fname = &f.name;
                out.push_str(&format!(
                    "            {fname}: ::serde::Deserialize::from_value(v.get(\"{fname}\").unwrap_or(&::serde::Value::Null)).map_err(|e| format!(\"{name}.{fname}: {{e}}\"))?,\n"
                ));
            }
            out.push_str("        })\n    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> Result<Self, String> {{\n        match v {{\n"
            ));
            // Unit variants arrive as bare strings.
            out.push_str("            ::serde::Value::Str(s) => match s.as_str() {\n");
            for v in variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
            {
                let vname = &v.name;
                out.push_str(&format!(
                    "                \"{vname}\" => Ok({name}::{vname}),\n"
                ));
            }
            out.push_str(&format!(
                "                other => Err(format!(\"unknown {name} variant {{other}}\")),\n            }},\n"
            ));
            // Data variants arrive as single-key objects.
            out.push_str(
                "            ::serde::Value::Object(fields) if fields.len() == 1 => {\n                let (tag, payload) = &fields[0];\n                match tag.as_str() {\n",
            );
            for v in &variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "                    \"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&xs[{k}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "                    \"{vname}\" => match payload {{\n                        ::serde::Value::Array(xs) if xs.len() == {n} => Ok({name}::{vname}({elems})),\n                        _ => Err(String::from(\"{name}::{vname}: expected {n}-element array\")),\n                    }},\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{0}: ::serde::Deserialize::from_value(payload.get(\"{0}\").unwrap_or(&::serde::Value::Null)).map_err(|e| format!(\"{name}::{vname}.{0}: {{e}}\"))?",
                                    f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "                    \"{vname}\" => Ok({name}::{vname} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "                    other => Err(format!(\"unknown {name} variant {{other}}\")),\n                }}\n            }},\n            other => Err(format!(\"expected {name}, got {{other:?}}\")),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    out.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! Runs each benchmark closure `sample_size` times under
//! `std::time::Instant` and prints min/mean per iteration. Like the real
//! crate's harness, it does nothing unless `--bench` is on the command
//! line (which is how `cargo bench` invokes bench binaries), so
//! `cargo test` stays fast. See `third_party/README.md`.

#![allow(clippy::all)]

use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    samples: usize,
    /// (min_ns, mean_ns) of the last `iter` call.
    result: Option<(f64, f64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup iteration, then `samples` timed ones.
        black_box(f());
        let mut min = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let ns = t0.elapsed().as_secs_f64() * 1e9;
            min = min.min(ns);
            total += ns;
        }
        self.result = Some((min, total / self.samples as f64));
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((min, mean)) => {
            println!("bench {label:<50} min {min:>14.0} ns/iter  mean {mean:>14.0} ns/iter  (n={samples})")
        }
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    enabled: bool,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        if self.enabled {
            run_one(&format!("{}/{}", self.name, id), self.samples, f);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        if self.enabled {
            run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
                f(b, input)
            });
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion only measures when the harness passes --bench;
        // under `cargo test` the binary runs without it and exits fast.
        Self {
            enabled: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            enabled: self.enabled,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        if self.enabled {
            run_one(&id.to_string(), 10, f);
        }
        self
    }
}

/// Declares a group function calling each target with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_without_bench_flag() {
        // Test binaries never pass --bench, so nothing should run.
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(!ran);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("seq", 42).to_string(), "seq/42");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

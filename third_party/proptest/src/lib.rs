//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! Provides the `proptest!` macro, the [`Strategy`] trait with the
//! combinators this workspace uses (`prop_map`, `prop_flat_map`,
//! tuples, ranges, `Just`, `collection::vec`, `any::<T>()`), and the
//! `prop_assert!`/`prop_assert_eq!` macros. Inputs are generated from a
//! fixed deterministic seed per case index, so failures reproduce
//! run-to-run; there is **no shrinking**. Case count defaults to 64 and
//! honors the `PROPTEST_CASES` environment variable.

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed per-case seed: same inputs on every run.
    pub fn for_case(case: u64) -> Self {
        Self {
            state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case.wrapping_add(0x5851_F42D_4C95_7F2D)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Number of cases each `proptest!` test runs, given the block's
/// configured default; the `PROPTEST_CASES` environment variable wins.
pub fn cases_with(default: u64) -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Case count for unconfigured `proptest!` blocks.
pub fn cases() -> u64 {
    cases_with(64)
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u64,
}

impl ProptestConfig {
    pub fn with_cases(cases: u64) -> Self {
        Self { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn sample(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.sample(rng))
    }
}

/// `strategy.prop_flat_map(f)`.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` — the full-range strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `vec(element_strategy, len_range)`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }
}

/// Runs each test body over deterministic sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                for __case in 0..$crate::cases_with(($cfg).cases) {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                for __case in 0..$crate::cases() {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Skips the current case when its precondition fails. Expands to a
/// `continue` of the case loop, so it must appear at the top level of
/// the test body (not inside a nested loop) — which is how this
/// workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..100, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn map_and_flat_map_compose(
            (n, xs) in (1usize..8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0usize..n, 1..20))
            })
        ) {
            prop_assert!(xs.iter().all(|&x| x < n));
        }
    }
}

//! Offline shim for [rand](https://crates.io/crates/rand).
//!
//! The workspace declares `rand` as a dev-dependency but never uses it;
//! this placeholder exists only so dependency resolution works offline.
//! If code starts needing randomness, extend this with a small PRNG (or
//! use the deterministic generators in `gcol-graph::rng`).

#![allow(clippy::all)]

//! Offline shim for [serde](https://crates.io/crates/serde).
//!
//! Instead of the real crate's serializer/deserializer abstraction this
//! shim converts values to and from an owned [`Value`] tree; the
//! companion `serde_json` shim renders and parses that tree. The derive
//! macros (re-exported from the `serde_derive` shim when the `derive`
//! feature is on) generate `Serialize`/`Deserialize` impls using serde's
//! externally-tagged enum representation, so JSON output is
//! layout-compatible with the real crate for the types this workspace
//! defines. See `third_party/README.md`.

#![allow(clippy::all)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers (u8..=u64, usize).
    U64(u64),
    /// Signed integers that don't fit the unsigned variant.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x).map_err(|e| e.to_string()),
                    Value::I64(x) => <$t>::try_from(*x).map_err(|e| e.to_string()),
                    other => Err(format!("expected unsigned integer, got {other:?}")),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|e| e.to_string())
                        .and_then(|x| <$t>::try_from(x).map_err(|e| e.to_string())),
                    Value::I64(x) => <$t>::try_from(*x).map_err(|e| e.to_string()),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows from the input; an owned [`Value`] tree has
    /// nothing to borrow from, so this impl exists only to satisfy
    /// derives on types carrying `&'static str` fields and always errs.
    fn from_value(_: &Value) -> Result<Self, String> {
        Err("cannot deserialize borrowed &str in the offline serde shim".into())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }
}

//! Offline shim for [serde_json](https://crates.io/crates/serde_json).
//!
//! Renders the serde shim's [`Value`] tree as JSON (2-space pretty
//! printing, same layout as the real crate) and parses JSON back into
//! it. See `third_party/README.md`.

#![allow(clippy::all)]

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(x: f64) -> String {
    if !x.is_finite() {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // report writing total.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn render(v: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => out.push_str(&number_to_string(*x)),
        Value::Str(s) => escape_into(s, out),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                render(x, pretty, indent + 1, out);
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(x, pretty, indent + 1, out);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), false, 0, &mut out);
    Ok(out)
}

/// Serializes to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), true, 0, &mut out);
    Ok(out)
}

/// Serializes compactly into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut w: W,
    value: &T,
) -> Result<(), Error> {
    w.write_all(to_string(value)?.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Serializes pretty into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut w: W,
    value: &T,
) -> Result<(), Error> {
    w.write_all(to_string_pretty(value)?.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_lit("true", Value::Bool(true)),
            b'f' => self.parse_lit("false", Value::Bool(false)),
            b'n' => self.parse_lit("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !s.contains(['.', 'e', 'E']) {
            if let Ok(u) = s.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = s.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        s.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{s}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error("unterminated string".into()))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape '\\{}'", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            xs.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']', got '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let val = self.parse_value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}', got '{}'",
                        other as char
                    )))
                }
            }
        }
    }
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_vec() {
        let s = to_string_pretty(&vec![1u32, 2, 3]).unwrap();
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::F64(1.5), Value::F64(2.0)]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    2.0\n  ]\n}");
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Vec<f64> = from_str("[1, -2.5, 1e3]").unwrap();
        assert_eq!(v, vec![1.0, -2.5, 1000.0]);
        let s: String = from_str("\"a\\nb\\u0041\"").unwrap();
        assert_eq!(s, "a\nbA");
    }
}

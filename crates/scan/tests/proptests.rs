//! Property tests: every parallel/work-efficient scan variant must agree
//! with the sequential oracle, and compaction must equal `filter`.

use gcol_scan::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn blelloch_matches_sequential(xs in proptest::collection::vec(0u32..1000, 0..600)) {
        let (expect, total) = exclusive_scan(&xs);
        let mut got = xs;
        prop_assert_eq!(blelloch_exclusive_scan(&mut got), total);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn par_matches_sequential(xs in proptest::collection::vec(0u32..1000, 0..2000)) {
        prop_assert_eq!(par_exclusive_scan(&xs), exclusive_scan(&xs));
        prop_assert_eq!(par_inclusive_scan(&xs), inclusive_scan(&xs));
    }

    #[test]
    fn compact_equals_filter(pairs in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..500)) {
        let xs: Vec<u32> = pairs.iter().map(|&(x, _)| x).collect();
        let flags: Vec<bool> = pairs.iter().map(|&(_, f)| f).collect();
        let expect: Vec<u32> = pairs.iter().filter(|&&(_, f)| f).map(|&(x, _)| x).collect();
        prop_assert_eq!(compact_flagged(&xs, &flags), expect);
    }

    #[test]
    fn scan_is_monotone_for_nonnegative(xs in proptest::collection::vec(0u32..100, 1..300)) {
        let (out, total) = exclusive_scan(&xs);
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(*out.last().unwrap() <= total);
    }

    #[test]
    fn histogram_total_is_input_length(xs in proptest::collection::vec(0u32..64, 0..500),
                                       buckets in 1usize..80) {
        let h = gcol_scan::reduce::histogram(&xs, buckets);
        prop_assert_eq!(h.iter().sum::<u64>(), xs.len() as u64);
    }
}

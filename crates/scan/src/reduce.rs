//! Parallel reductions and histograms used by the experiment harness
//! (degree histograms, conflict counts, color tallies).

use rayon::prelude::*;

/// Parallel sum of a `u32` slice as `u64` (no overflow for ≤ 2^32 items).
pub fn sum_u64(xs: &[u32]) -> u64 {
    xs.par_iter().map(|&x| x as u64).sum()
}

/// Parallel maximum; `None` on empty input.
pub fn max_u32(xs: &[u32]) -> Option<u32> {
    xs.par_iter().copied().max()
}

/// Parallel minimum; `None` on empty input.
pub fn min_u32(xs: &[u32]) -> Option<u32> {
    xs.par_iter().copied().min()
}

/// Histogram of values `< buckets`; values out of range are counted in the
/// last bucket. Computed with per-chunk local histograms merged at the end
/// (no atomics — the technique the paper's "atomic operation reduction"
/// section motivates, applied on the CPU).
pub fn histogram(xs: &[u32], buckets: usize) -> Vec<u64> {
    assert!(buckets > 0, "need at least one bucket");
    xs.par_chunks(1 << 14)
        .map(|chunk| {
            let mut h = vec![0u64; buckets];
            for &x in chunk {
                let b = (x as usize).min(buckets - 1);
                h[b] += 1;
            }
            h
        })
        .reduce(
            || vec![0u64; buckets],
            |mut a, b| {
                for (ai, bi) in a.iter_mut().zip(b) {
                    *ai += bi;
                }
                a
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_extrema() {
        let xs = [3u32, 1, 4, 1, 5];
        assert_eq!(sum_u64(&xs), 14);
        assert_eq!(max_u32(&xs), Some(5));
        assert_eq!(min_u32(&xs), Some(1));
        assert_eq!(max_u32(&[]), None);
        assert_eq!(min_u32(&[]), None);
        assert_eq!(sum_u64(&[]), 0);
    }

    #[test]
    fn histogram_counts() {
        let h = histogram(&[0, 1, 1, 2, 9], 4);
        assert_eq!(h, vec![1, 2, 1, 1]); // 9 clamps into last bucket
        assert_eq!(h.iter().sum::<u64>(), 5);
    }

    #[test]
    fn histogram_large_matches_serial() {
        let xs: Vec<u32> = (0..100_000u32).map(|i| i % 10).collect();
        let h = histogram(&xs, 10);
        assert!(h.iter().all(|&c| c == 10_000));
    }

    #[test]
    fn sum_does_not_overflow_u32() {
        let xs = vec![u32::MAX; 4];
        assert_eq!(sum_u64(&xs), 4 * (u32::MAX as u64));
    }
}

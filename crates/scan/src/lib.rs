//! # gcol-scan — prefix-sum and compaction primitives
//!
//! The paper (§III-C, Fig. 5) relies on parallel prefix sum — via NVIDIA's
//! CUB library — to turn per-thread "I want to emit k items" requests into
//! scatter offsets, replacing per-item atomic queue pushes with one global
//! atomic per thread block. This crate provides that primitive family on
//! the host:
//!
//! * [`seq`] — straightforward sequential scans (the correctness oracle).
//! * [`blelloch`] — the work-efficient up-sweep/down-sweep scan
//!   (Blelloch 1989, ref. \[32\] of the paper).
//! * [`par`] — a chunked two-pass multicore scan built on rayon.
//! * [`compact`] — stream compaction (select-if) built on scan.
//! * [`reduce`] — parallel reductions and histograms.
//!
//! The device-side (simulated GPU) block scan lives in `gcol-simt`; its
//! tests use this crate as the reference.
//!
//! ```
//! use gcol_scan::{exclusive_scan, compact_flagged};
//!
//! // Fig. 5 of the paper: allocation requests → scatter offsets.
//! let requests = [2u32, 1, 0, 3];
//! let (offsets, total) = exclusive_scan(&requests);
//! assert_eq!(offsets, vec![0, 2, 3, 3]);
//! assert_eq!(total, 6);
//!
//! // Order-preserving compaction (worklist assembly).
//! let kept = compact_flagged(&[10, 20, 30], &[true, false, true]);
//! assert_eq!(kept, vec![10, 30]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blelloch;
pub mod compact;
pub mod par;
pub mod reduce;
pub mod seq;

pub use blelloch::blelloch_exclusive_scan;
pub use compact::{compact_flagged, compact_indices};
pub use par::{par_exclusive_scan, par_inclusive_scan};
pub use seq::{exclusive_scan, inclusive_scan};

//! Sequential scans — simple, obviously correct, used as the oracle for
//! every parallel variant.

/// Exclusive prefix sum: `out[i] = sum(xs[..i])`. Returns the total (which
/// equals `out[n]` in the size-`n+1` convention; we return it separately so
/// `out` keeps the input length, matching CUB's `ExclusiveSum`).
pub fn exclusive_scan(xs: &[u32]) -> (Vec<u32>, u32) {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0u32;
    for &x in xs {
        out.push(acc);
        acc += x;
    }
    (out, acc)
}

/// Inclusive prefix sum: `out[i] = sum(xs[..=i])`.
pub fn inclusive_scan(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0u32;
    for &x in xs {
        acc += x;
        out.push(acc);
    }
    out
}

/// In-place exclusive scan; returns the total.
pub fn exclusive_scan_in_place(xs: &mut [u32]) -> u32 {
    let mut acc = 0u32;
    for x in xs.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Generic exclusive scan over any associative operation with identity —
/// used by tests to check non-addition monoids (max, min).
pub fn exclusive_scan_by<T: Copy>(xs: &[T], identity: T, op: impl Fn(T, T) -> T) -> Vec<T> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = identity;
    for &x in xs {
        out.push(acc);
        acc = op(acc, x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_basic() {
        let (out, total) = exclusive_scan(&[2, 1, 0, 3, 2]);
        assert_eq!(out, vec![0, 2, 3, 3, 6]);
        assert_eq!(total, 8);
    }

    #[test]
    fn exclusive_matches_fig5() {
        // Fig. 5 of the paper: allocation requirements 2,1,0,3,2,... →
        // offsets 0,2,3,3,6,...
        let reqs = [2u32, 1, 0, 3, 2, 1, 1, 0];
        let (offsets, total) = exclusive_scan(&reqs);
        assert_eq!(offsets, vec![0, 2, 3, 3, 6, 8, 9, 10]);
        assert_eq!(total, 10);
    }

    #[test]
    fn inclusive_basic() {
        assert_eq!(inclusive_scan(&[1, 2, 3]), vec![1, 3, 6]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(exclusive_scan(&[]), (vec![], 0));
        assert_eq!(inclusive_scan(&[]), Vec::<u32>::new());
        assert_eq!(exclusive_scan_in_place(&mut []), 0);
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let xs = [5u32, 0, 7, 1];
        let (expect, total) = exclusive_scan(&xs);
        let mut ys = xs;
        assert_eq!(exclusive_scan_in_place(&mut ys), total);
        assert_eq!(ys.to_vec(), expect);
    }

    #[test]
    fn generic_scan_with_max() {
        let out = exclusive_scan_by(&[3, 1, 4, 1, 5], 0, |a: u32, b| a.max(b));
        assert_eq!(out, vec![0, 3, 3, 4, 4]);
    }

    #[test]
    fn inclusive_is_exclusive_shifted() {
        let xs = [4u32, 2, 9, 0, 1];
        let inc = inclusive_scan(&xs);
        let (exc, total) = exclusive_scan(&xs);
        for i in 0..xs.len() - 1 {
            assert_eq!(inc[i], exc[i + 1]);
        }
        assert_eq!(*inc.last().unwrap(), total);
    }
}

//! Stream compaction: gather the flagged subset of a sequence into a dense
//! output, preserving input order — exactly the worklist-assembly pattern
//! of Fig. 5 in the paper.

use rayon::prelude::*;

/// Returns the elements of `xs` whose flag is set, in input order.
pub fn compact_flagged<T: Copy + Send + Sync>(xs: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(xs.len(), flags.len(), "flags must match items");
    let reqs: Vec<u32> = flags.par_iter().map(|&f| f as u32).collect();
    let (offsets, total) = crate::par::par_exclusive_scan(&reqs);
    let mut out = vec![None; total as usize];
    // Scatter in parallel: offsets are unique for flagged items.
    let slots: Vec<(usize, T)> = xs
        .par_iter()
        .zip(flags.par_iter())
        .zip(offsets.par_iter())
        .filter_map(|((&x, &f), &o)| f.then_some((o as usize, x)))
        .collect();
    for (o, x) in slots {
        out[o] = Some(x);
    }
    out.into_iter()
        .map(|x| x.expect("scan produced dense offsets"))
        .collect()
}

/// Returns the *indices* whose flag is set, in increasing order — the
/// shape of "put conflicting vertices into the remaining worklist".
pub fn compact_indices(flags: &[bool]) -> Vec<u32> {
    let ids: Vec<u32> = (0..flags.len() as u32).collect();
    compact_flagged(&ids, flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_compaction_preserves_order() {
        let xs = [10, 20, 30, 40, 50];
        let flags = [true, false, true, true, false];
        assert_eq!(compact_flagged(&xs, &flags), vec![10, 30, 40]);
    }

    #[test]
    fn indices_variant() {
        assert_eq!(
            compact_indices(&[false, true, true, false, true]),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn all_and_none() {
        let xs = [1, 2, 3];
        assert_eq!(compact_flagged(&xs, &[true; 3]), vec![1, 2, 3]);
        assert!(compact_flagged(&xs, &[false; 3]).is_empty());
    }

    #[test]
    fn empty() {
        assert!(compact_flagged::<u32>(&[], &[]).is_empty());
        assert!(compact_indices(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "flags must match items")]
    fn mismatched_lengths_panic() {
        compact_flagged(&[1, 2], &[true]);
    }

    #[test]
    fn large_input_matches_filter() {
        let xs: Vec<u32> = (0..100_000).collect();
        let flags: Vec<bool> = xs.iter().map(|&x| x % 3 == 0).collect();
        let expect: Vec<u32> = xs.iter().copied().filter(|&x| x % 3 == 0).collect();
        assert_eq!(compact_flagged(&xs, &flags), expect);
    }
}

//! Chunked two-pass multicore scan.
//!
//! Pass 1 sums each chunk in parallel; a small sequential scan over the
//! chunk totals yields per-chunk base offsets; pass 2 rewrites each chunk
//! in parallel. This is the standard decomposition CUB's `DeviceScan` uses
//! across thread blocks, here across rayon tasks.

use rayon::prelude::*;

/// Minimum work per rayon task; below this a sequential scan wins.
const CHUNK: usize = 1 << 14;

/// Parallel exclusive prefix sum; returns `(offsets, total)`.
pub fn par_exclusive_scan(xs: &[u32]) -> (Vec<u32>, u32) {
    if xs.len() <= CHUNK {
        return crate::seq::exclusive_scan(xs);
    }
    let sums: Vec<u32> = xs.par_chunks(CHUNK).map(|c| c.iter().sum()).collect();
    let (bases, total) = crate::seq::exclusive_scan(&sums);
    let mut out = vec![0u32; xs.len()];
    out.par_chunks_mut(CHUNK)
        .zip(xs.par_chunks(CHUNK))
        .zip(bases.par_iter())
        .for_each(|((o, c), &base)| {
            let mut acc = base;
            for (oi, &ci) in o.iter_mut().zip(c) {
                *oi = acc;
                acc += ci;
            }
        });
    (out, total)
}

/// Parallel inclusive prefix sum.
pub fn par_inclusive_scan(xs: &[u32]) -> Vec<u32> {
    let (mut out, _) = par_exclusive_scan(xs);
    out.par_iter_mut()
        .zip(xs.par_iter())
        .for_each(|(o, &x)| *o += x);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{exclusive_scan, inclusive_scan};

    #[test]
    fn small_input_falls_through() {
        let xs = [1u32, 2, 3];
        assert_eq!(par_exclusive_scan(&xs), exclusive_scan(&xs));
    }

    #[test]
    fn large_input_matches_sequential() {
        let xs: Vec<u32> = (0..200_000u32).map(|i| i % 7).collect();
        assert_eq!(par_exclusive_scan(&xs), exclusive_scan(&xs));
        assert_eq!(par_inclusive_scan(&xs), inclusive_scan(&xs));
    }

    #[test]
    fn chunk_boundary_lengths() {
        for n in [CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            let xs: Vec<u32> = (0..n as u32).map(|i| (i * 31) % 11).collect();
            assert_eq!(par_exclusive_scan(&xs), exclusive_scan(&xs), "n = {n}");
        }
    }

    #[test]
    fn empty() {
        assert_eq!(par_exclusive_scan(&[]), (vec![], 0));
        assert_eq!(par_inclusive_scan(&[]), Vec::<u32>::new());
    }
}

//! Work-efficient exclusive scan (Blelloch 1989) — the algorithm GPU block
//! scans implement in shared memory, implemented here over a power-of-two
//! padded tree. This is the *reference semantics* implementation (single
//! threaded, mirroring the up-sweep/down-sweep structure exactly); the
//! multicore production path is [`crate::par`].

/// Exclusive scan via up-sweep (reduce) and down-sweep phases; returns the
/// total. O(n) work, O(log n) depth.
pub fn blelloch_exclusive_scan(xs: &mut Vec<u32>) -> u32 {
    let n = xs.len();
    if n == 0 {
        return 0;
    }
    let padded = n.next_power_of_two();
    xs.resize(padded, 0);

    // Up-sweep: xs[k + 2^(d+1) - 1] += xs[k + 2^d - 1].
    let mut stride = 1usize;
    while stride < padded {
        let step = stride * 2;
        for k in (0..padded).step_by(step) {
            xs[k + step - 1] += xs[k + stride - 1];
        }
        stride = step;
    }

    let total = xs[padded - 1];
    xs[padded - 1] = 0;

    // Down-sweep.
    let mut stride = padded / 2;
    while stride >= 1 {
        let step = stride * 2;
        for k in (0..padded).step_by(step) {
            let t = xs[k + stride - 1];
            xs[k + stride - 1] = xs[k + step - 1];
            xs[k + step - 1] += t;
        }
        if stride == 1 {
            break;
        }
        stride /= 2;
    }

    xs.truncate(n);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::exclusive_scan;

    #[test]
    fn matches_sequential_on_powers_of_two() {
        let xs: Vec<u32> = (0..64).map(|i| (i * 7 + 3) % 13).collect();
        let (expect, total) = exclusive_scan(&xs);
        let mut got = xs;
        assert_eq!(blelloch_exclusive_scan(&mut got), total);
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_sequential_on_ragged_lengths() {
        for n in [0usize, 1, 2, 3, 5, 31, 33, 100, 255, 257] {
            let xs: Vec<u32> = (0..n as u32).map(|i| i % 5).collect();
            let (expect, total) = exclusive_scan(&xs);
            let mut got = xs;
            assert_eq!(blelloch_exclusive_scan(&mut got), total, "n = {n}");
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn all_zeros() {
        let mut xs = vec![0u32; 17];
        assert_eq!(blelloch_exclusive_scan(&mut xs), 0);
        assert!(xs.iter().all(|&x| x == 0));
    }

    #[test]
    fn single_element() {
        let mut xs = vec![42u32];
        assert_eq!(blelloch_exclusive_scan(&mut xs), 42);
        assert_eq!(xs, vec![0]);
    }
}

//! Corpus-driven parser harness: every checked-in fixture under
//! `tests/corpus/` is pinned to an exact outcome.
//!
//! * `valid/` holds the same graph (Fig. 2 of the paper) in all four
//!   formats — they must all load, agree on shape, and hash to the same
//!   content fingerprint, which is what lets the serving cache treat a
//!   graph identically however it arrived.
//! * `malformed/` holds one fixture per typed error variant; each test
//!   asserts the exact variant AND the 1-based line number, so an error
//!   message regression (or an off-by-one in line accounting) fails
//!   loudly instead of degrading into "something went wrong".
//!
//! A guard test cross-checks the directory listing against the pinned
//! set, so a fixture can never be added without a matching assertion.

use gcol_graph::io::{
    read_dimacs, read_edge_list, read_matrix_market, read_metis, DimacsError, EdgeListError,
    GraphFormat, GraphSource, IngestLimits, MetisError, MtxError,
};
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

fn corpus_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(rel)
}

fn open(rel: &str) -> BufReader<File> {
    BufReader::new(File::open(corpus_path(rel)).unwrap_or_else(|e| panic!("{rel}: {e}")))
}

// ---------------------------------------------------------------- valid

#[test]
fn valid_fixtures_agree_across_all_formats() {
    let fixtures = [
        ("valid/fig2.mtx", GraphFormat::MatrixMarket),
        ("valid/fig2.col", GraphFormat::Dimacs),
        ("valid/fig2.graph", GraphFormat::Metis),
        ("valid/fig2.edges", GraphFormat::EdgeList),
    ];
    let mut fingerprints = Vec::new();
    for (rel, expect_fmt) in fixtures {
        let (fmt, g) = GraphSource::open(corpus_path(rel), IngestLimits::NONE)
            .unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert_eq!(fmt, expect_fmt, "{rel}: extension resolution");
        assert_eq!(g.num_vertices(), 5, "{rel}");
        assert_eq!(g.num_edges(), 14, "{rel}");
        assert!(g.is_symmetric(), "{rel}");
        fingerprints.push((rel, g.content_fingerprint()));
    }
    let (_, first) = fingerprints[0];
    for (rel, fp) in &fingerprints {
        assert_eq!(
            *fp, first,
            "{rel}: fingerprint diverges from {}",
            fingerprints[0].0
        );
    }
}

#[test]
fn valid_fixtures_load_through_direct_readers_too() {
    let via_mtx = read_matrix_market(open("valid/fig2.mtx")).unwrap();
    let via_col = read_dimacs(open("valid/fig2.col")).unwrap();
    let via_metis = read_metis(open("valid/fig2.graph")).unwrap();
    let via_edges = read_edge_list(open("valid/fig2.edges"), None).unwrap();
    assert_eq!(via_mtx, via_col);
    assert_eq!(via_mtx, via_metis);
    assert_eq!(via_mtx, via_edges);
}

// ------------------------------------------------------------ malformed
//
// One test per fixture; each pins the exact variant and line number.

#[test]
fn mtx_bad_banner() {
    let err = read_matrix_market(open("malformed/mtx_bad_banner.mtx")).unwrap_err();
    assert!(
        matches!(err, MtxError::BadHeader { line: 1, .. }),
        "{err:?}"
    );
}

#[test]
fn mtx_not_square() {
    let err = read_matrix_market(open("malformed/mtx_not_square.mtx")).unwrap_err();
    assert!(
        matches!(
            err,
            MtxError::NotSquare {
                line: 2,
                rows: 2,
                cols: 3
            }
        ),
        "{err:?}"
    );
}

#[test]
fn mtx_index_out_of_range() {
    let err = read_matrix_market(open("malformed/mtx_index_out_of_range.mtx")).unwrap_err();
    assert!(
        matches!(
            err,
            MtxError::IndexOutOfRange {
                line: 3,
                index: 9,
                n: 2
            }
        ),
        "{err:?}"
    );
}

#[test]
fn mtx_truncated() {
    let err = read_matrix_market(open("malformed/mtx_truncated.mtx")).unwrap_err();
    assert!(
        matches!(
            err,
            MtxError::TruncatedData {
                line: 3,
                expected: 2,
                got: 1
            }
        ),
        "{err:?}"
    );
}

#[test]
fn mtx_header_overflow() {
    let err = read_matrix_market(open("malformed/mtx_header_overflow.mtx")).unwrap_err();
    assert!(
        matches!(err, MtxError::HeaderOverflow { line: 2, .. }),
        "{err:?}"
    );
}

#[test]
fn mtx_junk_mid_stream() {
    let err = read_matrix_market(open("malformed/mtx_junk_mid_stream.mtx")).unwrap_err();
    assert!(matches!(err, MtxError::BadEntry { line: 4, .. }), "{err:?}");
}

#[test]
fn mtx_excess_entries() {
    let err = read_matrix_market(open("malformed/mtx_excess_entries.mtx")).unwrap_err();
    assert!(matches!(err, MtxError::BadEntry { line: 4, .. }), "{err:?}");
}

#[test]
fn dimacs_missing_problem() {
    let err = read_dimacs(open("malformed/dimacs_missing_problem.col")).unwrap_err();
    assert!(
        matches!(err, DimacsError::MissingProblemLine { line: 2 }),
        "{err:?}"
    );
}

#[test]
fn dimacs_duplicate_problem() {
    let err = read_dimacs(open("malformed/dimacs_duplicate_problem.col")).unwrap_err();
    assert!(
        matches!(err, DimacsError::DuplicateProblemLine { line: 2 }),
        "{err:?}"
    );
}

#[test]
fn dimacs_vertex_out_of_range() {
    let err = read_dimacs(open("malformed/dimacs_vertex_out_of_range.col")).unwrap_err();
    assert!(
        matches!(
            err,
            DimacsError::VertexOutOfRange {
                line: 2,
                id: 9,
                n: 3
            }
        ),
        "{err:?}"
    );
}

#[test]
fn dimacs_bad_line() {
    let err = read_dimacs(open("malformed/dimacs_bad_line.col")).unwrap_err();
    assert!(
        matches!(err, DimacsError::BadLine { line: 2, .. }),
        "{err:?}"
    );
}

#[test]
fn dimacs_header_overflow() {
    let err = read_dimacs(open("malformed/dimacs_header_overflow.col")).unwrap_err();
    assert!(
        matches!(err, DimacsError::HeaderOverflow { line: 2, .. }),
        "{err:?}"
    );
}

#[test]
fn metis_missing_header() {
    let err = read_metis(open("malformed/metis_missing_header.graph")).unwrap_err();
    assert!(
        matches!(err, MetisError::MissingHeader { line: 2 }),
        "{err:?}"
    );
}

#[test]
fn metis_bad_header() {
    let err = read_metis(open("malformed/metis_bad_header.graph")).unwrap_err();
    assert!(
        matches!(err, MetisError::BadHeader { line: 1, .. }),
        "{err:?}"
    );
}

#[test]
fn metis_header_overflow() {
    let err = read_metis(open("malformed/metis_header_overflow.graph")).unwrap_err();
    assert!(
        matches!(err, MetisError::HeaderOverflow { line: 2, .. }),
        "{err:?}"
    );
}

#[test]
fn metis_bad_fmt() {
    let err = read_metis(open("malformed/metis_bad_fmt.graph")).unwrap_err();
    assert!(
        matches!(err, MetisError::BadFormatFlag { line: 1, .. }),
        "{err:?}"
    );
}

#[test]
fn metis_out_of_range() {
    let err = read_metis(open("malformed/metis_out_of_range.graph")).unwrap_err();
    assert!(
        matches!(
            err,
            MetisError::VertexOutOfRange {
                line: 3,
                id: 9,
                n: 3
            }
        ),
        "{err:?}"
    );
}

#[test]
fn metis_truncated() {
    let err = read_metis(open("malformed/metis_truncated.graph")).unwrap_err();
    assert!(
        matches!(
            err,
            MetisError::TruncatedData {
                line: 4,
                expected: 4,
                got: 3
            }
        ),
        "{err:?}"
    );
}

#[test]
fn metis_junk_mid_stream() {
    let err = read_metis(open("malformed/metis_junk_mid_stream.graph")).unwrap_err();
    assert!(
        matches!(err, MetisError::BadEntry { line: 3, .. }),
        "{err:?}"
    );
}

#[test]
fn edgelist_bad_line() {
    let err = read_edge_list(open("malformed/edgelist_bad_line.edges"), None).unwrap_err();
    assert!(
        matches!(err, EdgeListError::BadLine { line: 3, .. }),
        "{err:?}"
    );
}

#[test]
fn edgelist_id_overflow() {
    let err = read_edge_list(open("malformed/edgelist_id_overflow.edges"), None).unwrap_err();
    assert!(
        matches!(err, EdgeListError::IdOverflow { line: 1, .. }),
        "{err:?}"
    );
}

// --------------------------------------------------------------- guards

/// The pinned malformed set, kept in lockstep with the tests above: a
/// fixture on disk without an entry here (or vice versa) fails the guard,
/// so the corpus can't silently drift from its assertions.
const PINNED_MALFORMED: &[&str] = &[
    "dimacs_bad_line.col",
    "dimacs_duplicate_problem.col",
    "dimacs_header_overflow.col",
    "dimacs_missing_problem.col",
    "dimacs_vertex_out_of_range.col",
    "edgelist_bad_line.edges",
    "edgelist_id_overflow.edges",
    "metis_bad_fmt.graph",
    "metis_bad_header.graph",
    "metis_header_overflow.graph",
    "metis_junk_mid_stream.graph",
    "metis_missing_header.graph",
    "metis_out_of_range.graph",
    "metis_truncated.graph",
    "mtx_bad_banner.mtx",
    "mtx_excess_entries.mtx",
    "mtx_header_overflow.mtx",
    "mtx_index_out_of_range.mtx",
    "mtx_junk_mid_stream.mtx",
    "mtx_not_square.mtx",
    "mtx_truncated.mtx",
];

#[test]
fn every_malformed_fixture_is_pinned() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_path("malformed"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, PINNED_MALFORMED, "corpus drifted from its pins");
}

#[test]
fn every_malformed_fixture_reports_a_line_number() {
    // The unified error type must anchor each corpus failure to a line —
    // that is the contract front ends rely on when relaying parse errors.
    for rel in PINNED_MALFORMED {
        let path = corpus_path("malformed").join(rel);
        let err = GraphSource::open(&path, IngestLimits::NONE)
            .err()
            .unwrap_or_else(|| panic!("{rel}: unexpectedly parsed"));
        assert!(
            err.line().is_some_and(|l| l >= 1),
            "{rel}: error {err} carries no line number"
        );
    }
}

//! Property-based tests for the graph substrate: CSR construction, IO
//! round-trips and ordering invariants over arbitrary edge lists.

use gcol_graph::builder::{from_undirected_edges, CsrBuilder};
use gcol_graph::check::{count_conflicts, verify_coloring};
use gcol_graph::ordering::{degeneracy, order_vertices, Ordering};
use gcol_graph::partition::Partitioning;
use gcol_graph::{Csr, VertexId};
use proptest::prelude::*;

/// Strategy: a vertex count and a list of edges over it.
fn arb_graph_inputs() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        (Just(n), proptest::collection::vec(edge, 0..200))
    })
}

proptest! {
    #[test]
    fn builder_output_is_always_valid_csr((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.is_symmetric());
        prop_assert!(g.has_no_self_loops());
        prop_assert!(g.has_sorted_unique_neighbors());
    }

    #[test]
    fn symmetrize_doubles_membership((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges.clone());
        for (u, v) in edges {
            if u != v {
                prop_assert!(g.has_edge_sorted(u, v));
                prop_assert!(g.has_edge_sorted(v, u));
            }
        }
    }

    #[test]
    fn transpose_is_involution((n, edges) in arb_graph_inputs()) {
        // Directed build (no symmetrize) — transpose twice must be identity.
        let mut b = CsrBuilder::new(n);
        b.add_edges(edges);
        let g = b.build();
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn transpose_preserves_edge_count((n, edges) in arb_graph_inputs()) {
        let mut b = CsrBuilder::new(n);
        b.add_edges(edges);
        let g = b.build();
        prop_assert_eq!(g.transpose().num_edges(), g.num_edges());
    }

    #[test]
    fn mtx_roundtrip((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges);
        let mut buf = Vec::new();
        gcol_graph::io::write_matrix_market(&g, &mut buf).unwrap();
        let g2 = gcol_graph::io::read_matrix_market(
            std::io::BufReader::new(buf.as_slice())).unwrap();
        // Round-trip may drop trailing isolated vertices if n differs; the
        // writer records n in the size line, so it must match exactly.
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn edgelist_roundtrip((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges);
        let mut buf = Vec::new();
        gcol_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = gcol_graph::io::read_edge_list(
            std::io::BufReader::new(buf.as_slice()), Some(n)).unwrap();
        prop_assert_eq!(g.content_fingerprint(), g2.content_fingerprint());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn mtx_symmetric_roundtrip((n, edges) in arb_graph_inputs()) {
        // The compact one-triangle `pattern symmetric` form the real
        // collections ship must mirror back to the identical graph.
        let g = from_undirected_edges(n, edges);
        let mut buf = Vec::new();
        gcol_graph::io::write_matrix_market_symmetric(&g, &mut buf).unwrap();
        let g2 = gcol_graph::io::read_matrix_market(
            std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(g.content_fingerprint(), g2.content_fingerprint());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_roundtrip((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges);
        let mut buf = Vec::new();
        gcol_graph::io::write_dimacs(&g, &mut buf).unwrap();
        let g2 = gcol_graph::io::read_dimacs(
            std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(g.content_fingerprint(), g2.content_fingerprint());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn metis_roundtrip((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges);
        let mut buf = Vec::new();
        gcol_graph::io::write_metis(&g, &mut buf).unwrap();
        let g2 = gcol_graph::io::read_metis(
            std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(g.content_fingerprint(), g2.content_fingerprint());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn symmetric_mtx_mirror_entries_dedup((n, edges) in arb_graph_inputs()) {
        // A `symmetric` matrix that redundantly lists BOTH (i,j) and
        // (j,i) — which strict writers never do but real files sometimes
        // contain — must load identically to the one-triangle form: the
        // reader's mirror step plus builder dedup absorbs the duplicates.
        let g = from_undirected_edges(n, edges);
        let mut text = String::from(
            "%%MatrixMarket matrix coordinate pattern symmetric\n");
        text.push_str(&format!("{n} {n} {}\n", g.num_edges()));
        for (u, v) in g.edges() {
            text.push_str(&format!("{} {}\n", u + 1, v + 1));
        }
        let g2 = gcol_graph::io::read_matrix_market(
            std::io::BufReader::new(text.as_bytes())).unwrap();
        prop_assert_eq!(g.content_fingerprint(), g2.content_fingerprint());
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn all_orderings_are_permutations((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges);
        for ord in [Ordering::Natural, Ordering::LargestDegreeFirst,
                    Ordering::SmallestDegreeLast, Ordering::Random(1)] {
            let mut p = order_vertices(&g, ord);
            p.sort_unstable();
            prop_assert_eq!(p, (0..n as VertexId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn degeneracy_bounds((n, edges) in arb_graph_inputs()) {
        let g = from_undirected_edges(n, edges);
        let d = degeneracy(&g);
        prop_assert!(d <= g.max_degree());
        // A graph with m undirected edges has a vertex of degree ≤ 2m/n,
        // and degeneracy ≤ max over subgraphs of that bound; the crude
        // check d ≤ max_degree suffices plus: d == 0 iff no edges.
        prop_assert_eq!(d == 0, g.num_edges() == 0);
    }

    #[test]
    fn partition_covers_and_flags((n, edges) in arb_graph_inputs(),
                                   k in 1usize..8) {
        let g = from_undirected_edges(n, edges);
        let p = Partitioning::contiguous(&g, k);
        // Every vertex belongs to the range its part claims.
        for v in 0..n {
            let (lo, hi) = p.ranges[p.part_of[v] as usize];
            prop_assert!((lo as usize..hi as usize).contains(&v));
        }
        // Boundary flags agree with a direct recomputation.
        for v in 0..n as VertexId {
            let expect = g.neighbors(v).iter()
                .any(|&w| p.part_of[w as usize] != p.part_of[v as usize]);
            prop_assert_eq!(p.boundary[v as usize], expect);
        }
    }

    #[test]
    fn shards_are_an_edge_cover((n, edges) in arb_graph_inputs(),
                                k in 1usize..8) {
        let g = from_undirected_edges(n, edges);
        let p = Partitioning::contiguous(&g, k);
        let shards = p.extract_shards(&g);
        // No vertex lost: the owned ranges partition the vertex set, and
        // local↔global id maps round-trip for owned and ghost vertices.
        prop_assert_eq!(shards.iter().map(|s| s.num_owned).sum::<usize>(), n);
        for s in &shards {
            prop_assert!(s.graph.validate().is_ok());
            prop_assert!(s.graph.is_symmetric());
            for l in 0..s.num_local() as VertexId {
                prop_assert_eq!(s.local_of(s.global_of(l)), Some(l));
            }
        }
        // Every edge is interior to exactly one shard, or a cut edge
        // present in both endpoints' halos (and in no third shard).
        for (u, w) in g.edges() {
            let (pu, pw) = (p.part_of[u as usize], p.part_of[w as usize]);
            for (q, s) in shards.iter().enumerate() {
                let present = match (s.local_of(u), s.local_of(w)) {
                    (Some(lu), Some(lw)) => s.graph.has_edge_sorted(lu, lw),
                    _ => false,
                };
                let expect = q == pu as usize || q == pw as usize;
                prop_assert_eq!(present, expect,
                    "edge ({}, {}) in shard {}: present {} expected {}",
                    u, w, q, present, expect);
            }
            if pu != pw {
                prop_assert!(shards[pu as usize].ghost_gids.binary_search(&w).is_ok());
                prop_assert!(shards[pw as usize].ghost_gids.binary_search(&u).is_ok());
            }
        }
    }

    #[test]
    fn conflict_count_zero_iff_proper((n, edges) in arb_graph_inputs(),
                                      seed in 0u64..1000) {
        let g = from_undirected_edges(n, edges);
        // Random (possibly improper) coloring with colors 1..=3.
        let mut rng = gcol_graph::rng::Xoshiro256::seed_from_u64(seed);
        let colors: Vec<u32> = (0..n).map(|_| 1 + rng.next_u32() % 3).collect();
        let conflicts = count_conflicts(&g, &colors);
        let proper = verify_coloring(&g, &colors).is_ok();
        prop_assert_eq!(conflicts == 0, proper);
    }
}

#[test]
fn generators_produce_colorable_structures() {
    // Smoke check that every generator output passes validation.
    use gcol_graph::gen;
    let graphs: Vec<Csr> = vec![
        gen::rmat(gen::RmatParams::erdos_renyi(8, 4), 1),
        gen::rmat(gen::RmatParams::skewed(8, 4), 1),
        gen::grid2d(9, 7, gen::StencilKind::FivePoint),
        gen::grid2d(9, 7, gen::StencilKind::NinePoint),
        gen::grid3d(5, 4, 3),
        gen::mesh2d(12, 12, 0.1, 2),
        gen::circuit_graph(300, 3, 0.9, 3),
        gen::path(17),
        gen::cycle(9),
        gen::complete(9),
        gen::star(33),
        gen::erdos_renyi(100, 300, 4),
        gen::random_regular(60, 6, 5),
        gen::random_bipartite(20, 30, 90, 6),
    ];
    for g in &graphs {
        g.validate().unwrap();
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
    }
}

#[test]
fn barabasi_albert_has_power_law_hubs() {
    use gcol_graph::gen::simple::barabasi_albert;
    use gcol_graph::stats::DegreeStats;
    let g = barabasi_albert(4000, 4, 11);
    g.validate().unwrap();
    assert!(g.is_symmetric());
    assert!(g.has_no_self_loops());
    let s = DegreeStats::compute(&g);
    // Preferential attachment: average ≈ 2m, max a large multiple of it.
    assert!((s.avg_degree - 8.0).abs() < 1.0, "avg {}", s.avg_degree);
    assert!(
        s.max_degree > 10 * s.avg_degree as usize,
        "no hub emerged: max {} avg {}",
        s.max_degree,
        s.avg_degree
    );
    // Deterministic per seed.
    assert_eq!(g, barabasi_albert(4000, 4, 11));
}

proptest! {
    #[test]
    fn fingerprint_stable_under_identity_relabel((n, edges) in arb_graph_inputs()) {
        // relabel() with the identity permutation rebuilds the CSR arrays
        // through an entirely different code path (counting sort + per-list
        // re-sort); the bytes — and hence the fingerprint — must match.
        let g = from_undirected_edges(n, edges);
        let identity: Vec<VertexId> = (0..n as VertexId).collect();
        let relabeled = gcol_graph::relabel::relabel(&g, &identity);
        prop_assert_eq!(g.clone(), relabeled.clone());
        prop_assert_eq!(g.content_fingerprint(), relabeled.content_fingerprint());
    }

    #[test]
    fn fingerprint_changes_on_single_edge_flip((n, edges) in arb_graph_inputs(),
                                               sel in 0u64..1_000_000) {
        // Toggle the membership of one undirected pair (u, v): the two
        // graphs differ in exactly one edge, and a content hash worth its
        // name separates them.
        let g = from_undirected_edges(n, edges.clone());
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for a in 0..n as VertexId {
            for b in (a + 1)..n as VertexId {
                pairs.push((a, b));
            }
        }
        let (u, v) = pairs[(sel % pairs.len() as u64) as usize];
        let mut undirected: Vec<(VertexId, VertexId)> =
            g.edges().filter(|&(a, b)| a < b).collect();
        if let Some(i) = undirected.iter().position(|&e| e == (u, v)) {
            undirected.swap_remove(i); // flip off
        } else {
            undirected.push((u, v)); // flip on
        }
        let flipped = from_undirected_edges(n, undirected);
        prop_assert_ne!(g.content_fingerprint(), flipped.content_fingerprint());
    }
}

/// A vertex count, an undirected edge list, and a raw edit batch
/// (`true` = insert) — the inputs the `apply_edits` properties draw.
type EditInputs = (
    usize,
    Vec<(VertexId, VertexId)>,
    Vec<(bool, VertexId, VertexId)>,
);

/// Strategy: a graph plus a batch of random edits over it (inserts and
/// deletes of arbitrary pairs, self-loops excluded by construction).
fn arb_edit_inputs() -> impl Strategy<Value = EditInputs> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        let edit = (any::<bool>(), 0..n as VertexId, 0..n as VertexId);
        (
            Just(n),
            proptest::collection::vec(edge, 0..120),
            proptest::collection::vec(edit, 0..40),
        )
    })
}

proptest! {
    #[test]
    fn apply_edits_is_fingerprint_stable((n, edges, raw_edits) in arb_edit_inputs()) {
        use gcol_graph::edit::EdgeEdit;
        let g = from_undirected_edges(n, edges);
        let edits: Vec<EdgeEdit> = raw_edits.iter()
            .filter(|&&(_, u, v)| u != v)
            .map(|&(ins, u, v)| if ins { EdgeEdit::Insert(u, v) } else { EdgeEdit::Delete(u, v) })
            .collect();
        let (edited, touched) = g.with_edits(&edits).unwrap();
        // Structural invariants survive any batch.
        prop_assert!(edited.validate().is_ok());
        prop_assert!(edited.is_symmetric());
        prop_assert!(edited.has_no_self_loops());
        prop_assert!(edited.has_sorted_unique_neighbors());
        // Path independence: a fresh build of the post-edit edge set is
        // byte-identical, so the content fingerprint (the service cache
        // key) cannot tell edited and rebuilt graphs apart.
        let rebuilt = from_undirected_edges(n, edited.edges().filter(|(u, v)| u < v));
        prop_assert_eq!(&edited, &rebuilt);
        prop_assert_eq!(edited.content_fingerprint(), rebuilt.content_fingerprint());
        // Touched = exactly the vertices whose adjacency changed.
        for v in 0..n as VertexId {
            let changed = g.neighbors(v) != edited.neighbors(v);
            prop_assert_eq!(touched.binary_search(&v).is_ok(), changed,
                "vertex {} touched-report disagrees with adjacency diff", v);
        }
        // Touched list is sorted and duplicate-free.
        prop_assert!(touched.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn apply_edits_inverse_batch_round_trips((n, edges, raw_edits) in arb_edit_inputs()) {
        use gcol_graph::edit::EdgeEdit;
        // Applying a batch and then its inverse (w.r.t. what actually
        // changed) restores the original graph bit-for-bit.
        let g = from_undirected_edges(n, edges);
        let edits: Vec<EdgeEdit> = raw_edits.iter()
            .filter(|&&(_, u, v)| u != v)
            .map(|&(ins, u, v)| if ins { EdgeEdit::Insert(u, v) } else { EdgeEdit::Delete(u, v) })
            .collect();
        let (edited, _) = g.with_edits(&edits).unwrap();
        let mut inverse: Vec<EdgeEdit> = Vec::new();
        for (u, v) in g.edges().filter(|(u, v)| u < v) {
            if !edited.has_edge_sorted(u, v) {
                inverse.push(EdgeEdit::Insert(u, v));
            }
        }
        for (u, v) in edited.edges().filter(|(u, v)| u < v) {
            if !g.has_edge_sorted(u, v) {
                inverse.push(EdgeEdit::Delete(u, v));
            }
        }
        let (restored, _) = edited.with_edits(&inverse).unwrap();
        prop_assert_eq!(&restored, &g);
        prop_assert_eq!(restored.content_fingerprint(), g.content_fingerprint());
    }
}

//! Verifies the bounded-memory claim of the ingest layer: parsing streams
//! through one reusable line buffer, so the heap traffic of a read is a
//! function of the *graph* (builder arrays, CSR output), not of how many
//! input lines carried it. A parser that allocates per line — the old
//! `reader.lines()` shape, one `String` per iteration — fails this by
//! tens of thousands of allocations.
//!
//! This file holds a single test: the counting global allocator is
//! process-wide state, and a second concurrently-running test would
//! perturb the count (same discipline as `alloc_free_replay.rs` in
//! gcol-simt).

use gcol_graph::io::read_matrix_market;
use gcol_graph::Csr;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::BufReader;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocations.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of one parse, minimized over a few runs to smooth
/// out rayon's adaptive splitting in the builder's sort/dedup pass.
fn min_allocs_of(text: &str) -> (u64, Csr) {
    let mut best = u64::MAX;
    let mut graph = None;
    for _ in 0..3 {
        let before = ALLOCS.load(Ordering::Relaxed);
        let g = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        let spent = ALLOCS.load(Ordering::Relaxed) - before;
        best = best.min(spent);
        graph = Some(g);
    }
    (best, graph.unwrap())
}

#[test]
fn ingest_allocations_do_not_scale_with_input_lines() {
    const FILLER_LINES: usize = 30_000;

    // The same graph twice: once compact, once bloated with 30k comment
    // lines. Build both strings BEFORE counting starts.
    let g = gcol_graph::gen::simple::erdos_renyi(200, 800, 3);
    let mut plain = Vec::new();
    gcol_graph::io::write_matrix_market(&g, &mut plain).unwrap();
    let plain = String::from_utf8(plain).unwrap();
    let (banner, rest) = plain.split_once('\n').unwrap();
    let mut bloated = String::with_capacity(plain.len() + FILLER_LINES * 48);
    bloated.push_str(banner);
    bloated.push('\n');
    for i in 0..FILLER_LINES {
        bloated.push_str("% filler comment, nothing to see on line ");
        bloated.push_str(&i.to_string());
        bloated.push('\n');
    }
    bloated.push_str(rest);

    // Warm-up: pays rayon pool init and any other one-time cost.
    let _ = read_matrix_market(BufReader::new(plain.as_bytes())).unwrap();

    let (allocs_plain, g_plain) = min_allocs_of(&plain);
    let (allocs_bloated, g_bloated) = min_allocs_of(&bloated);

    // Same bytes modulo comments — must be the same graph.
    assert_eq!(g_plain, g_bloated);
    assert_eq!(g_plain.content_fingerprint(), g.content_fingerprint());

    // A per-line-allocating parser pays ≥ 1 allocation per filler line
    // (30k+). The streaming cursor pays only occasional line-buffer
    // growth; the generous slack below absorbs rayon jitter while
    // staying two orders of magnitude under the failure mode.
    let delta = allocs_bloated.saturating_sub(allocs_plain);
    assert!(
        delta < (FILLER_LINES / 10) as u64,
        "parsing {FILLER_LINES} extra comment lines cost {delta} extra allocations \
         ({allocs_plain} plain vs {allocs_bloated} bloated): the reader is \
         allocating per line again"
    );
}

//! Pins the planner-profile hot-path claim: [`GraphProfile::extract`] is
//! one serial pass over the CSR row offsets with **zero** heap
//! allocations, no matter the graph size. A profiler that materializes a
//! degree vector (the old `DegreeStats` shape) fails this immediately.
//!
//! This file holds a single test: the counting global allocator is
//! process-wide state, and a second concurrently-running test would
//! perturb the count (same discipline as `ingest_alloc.rs`).

use gcol_graph::GraphProfile;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocations.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn profile_extraction_allocates_nothing() {
    // Build the graphs BEFORE counting starts.
    let small = gcol_graph::gen::simple::erdos_renyi(500, 2_000, 7);
    let large = gcol_graph::gen::simple::erdos_renyi(20_000, 120_000, 11);

    for g in [&small, &large] {
        let before = ALLOCS.load(Ordering::Relaxed);
        let p = GraphProfile::extract(g);
        let spent = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            spent, 0,
            "GraphProfile::extract allocated {spent} times on a {}-vertex graph",
            p.num_vertices
        );
        assert_eq!(p.num_vertices, g.num_vertices());
        assert!(p.avg_degree > 0.0);
    }
}

//! Vertex relabeling: permuting a graph's vertex ids, plus the reverse
//! Cuthill–McKee (RCM) bandwidth-reducing ordering.
//!
//! The paper deliberately stores graphs "in the order they are defined"
//! and performs *no* preprocessing to improve locality (§III-C). RCM is
//! exactly the preprocessing it declines: a BFS-based reordering that
//! clusters each vertex's neighbors into nearby ids, turning scattered
//! CSR accesses into cache-friendly ones. The `relabel` experiment in
//! `gcol-bench` quantifies what that choice left on the table.

use crate::csr::{Csr, VertexId};

/// Applies the permutation `perm` (new id of each old vertex) to `g`,
/// producing the relabeled graph.
///
/// `perm` must be a permutation of `0..n`.
pub fn relabel(g: &Csr, perm: &[VertexId]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    debug_assert!(is_permutation(perm));
    // New degree array → offsets.
    let mut offsets = vec![0u32; n + 1];
    for v in 0..n as VertexId {
        offsets[perm[v as usize] as usize + 1] = g.degree(v) as u32;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cols = vec![0 as VertexId; g.num_edges()];
    for v in 0..n as VertexId {
        let nv = perm[v as usize] as usize;
        let base = offsets[nv] as usize;
        for (k, &w) in g.neighbors(v).iter().enumerate() {
            cols[base + k] = perm[w as usize];
        }
        cols[base..base + g.degree(v)].sort_unstable();
    }
    Csr::new(offsets, cols)
}

fn is_permutation(perm: &[VertexId]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if (p as usize) >= perm.len() || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

/// Reverse Cuthill–McKee ordering: returns the permutation (new id per
/// old vertex) that relabels the graph in reversed BFS order with
/// degree-sorted tie-breaking, shrinking the CSR bandwidth. Components
/// are processed from pseudo-peripheral low-degree seeds.
pub fn rcm_permutation(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    // Seed choice: unvisited vertex of minimum degree (classic heuristic).
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.sort_by_key(|&v| g.degree(v));
    let mut neighbor_buf: Vec<VertexId> = Vec::new();
    for &seed in &by_degree {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        let mut frontier = vec![seed];
        order.push(seed);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                neighbor_buf.clear();
                neighbor_buf.extend(
                    g.neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&w| !visited[w as usize]),
                );
                // Cuthill–McKee visits neighbors in increasing degree.
                neighbor_buf.sort_by_key(|&w| g.degree(w));
                for &w in &neighbor_buf {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        next.push(w);
                        order.push(w);
                    }
                }
            }
            frontier = next;
        }
    }
    // Reverse (the "R" in RCM), then invert into new-id-per-old-vertex.
    order.reverse();
    let mut perm = vec![0 as VertexId; n];
    for (new_id, &old) in order.iter().enumerate() {
        perm[old as usize] = new_id as VertexId;
    }
    perm
}

/// CSR bandwidth: max |v - w| over all edges — the locality figure RCM
/// minimizes.
pub fn bandwidth(g: &Csr) -> usize {
    g.edges()
        .map(|(u, v)| (u as i64 - v as i64).unsigned_abs() as usize)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_undirected_edges;
    use crate::gen::simple::{complete, erdos_renyi, path, star};
    use crate::gen::{grid2d, StencilKind};
    use crate::stats::DegreeStats;

    #[test]
    fn relabel_identity_is_noop() {
        let g = erdos_renyi(100, 400, 1);
        let id: Vec<u32> = (0..100).collect();
        assert_eq!(relabel(&g, &id), g);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = erdos_renyi(200, 900, 2);
        let perm = rcm_permutation(&g);
        let h = relabel(&g, &perm);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        let sg = DegreeStats::compute(&g);
        let sh = DegreeStats::compute(&h);
        assert_eq!(sg.min_degree, sh.min_degree);
        assert_eq!(sg.max_degree, sh.max_degree);
        assert!(h.is_symmetric());
        // Edges map exactly: (u, v) ∈ g ⇔ (perm[u], perm[v]) ∈ h.
        for (u, v) in g.edges() {
            assert!(h.has_edge_sorted(perm[u as usize], perm[v as usize]));
        }
    }

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth() {
        // A scrambled path: bandwidth n-ish before, 1 after RCM.
        let n = 64u32;
        let scramble = |v: u32| (v * 37) % n; // 37 coprime with 64
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (scramble(i), scramble(i + 1))).collect();
        let g = from_undirected_edges(n as usize, edges);
        let before = bandwidth(&g);
        let perm = rcm_permutation(&g);
        let h = relabel(&g, &perm);
        let after = bandwidth(&h);
        assert!(
            after < before,
            "RCM should shrink bandwidth: {after} vs {before}"
        );
        assert_eq!(after, 1, "a path has optimal bandwidth 1");
    }

    #[test]
    fn rcm_on_grid_beats_natural_raster_order_or_ties() {
        let g = grid2d(32, 32, StencilKind::FivePoint);
        let perm = rcm_permutation(&g);
        let h = relabel(&g, &perm);
        // Raster order bandwidth is nx (=32); RCM must not be worse than
        // ~2x that (it typically matches or beats it on grids).
        assert!(bandwidth(&h) <= 2 * 32, "rcm bandwidth {}", bandwidth(&h));
    }

    #[test]
    fn rcm_handles_disconnected_and_degenerate_graphs() {
        for g in [Csr::empty(7), star(20), complete(6), path(1)] {
            let perm = rcm_permutation(&g);
            assert!(is_permutation(&perm));
            let h = relabel(&g, &perm);
            assert_eq!(h.num_edges(), g.num_edges());
        }
    }

    #[test]
    #[should_panic(expected = "permutation length")]
    fn relabel_rejects_wrong_length() {
        let g = path(5);
        relabel(&g, &[0, 1, 2]);
    }
}

//! Compressed sparse row (CSR) graph storage.
//!
//! This is the exact representation of §III-C / Fig. 2 of the paper: the
//! column-indices array `C` is the concatenation of all adjacency lists, and
//! the row-offsets array `R` has `n + 1` entries with `R[v]` the index in `C`
//! where `v`'s adjacency list begins. Graphs are stored in the order they are
//! defined — like the paper, we perform no locality- or balance-improving
//! preprocessing.

use std::fmt;

/// Vertex identifier. The paper's graphs have ~1.6M vertices; `u32` matches
/// the CUDA kernels' `int` indices and halves memory traffic vs `usize`.
pub type VertexId = u32;

/// An immutable graph in CSR form.
///
/// ```
/// use gcol_graph::Csr;
/// // The 5-vertex example of the paper's Fig. 2.
/// let g = Csr::new(
///     vec![0, 2, 6, 9, 11, 14],
///     vec![1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3],
/// );
/// assert_eq!(g.neighbors(1), &[0, 2, 3, 4]);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.is_symmetric());
/// ```
///
/// Invariants (upheld by [`crate::builder::CsrBuilder`] and checked by
/// [`Csr::validate`]):
///
/// * `row_offsets.len() == num_vertices + 1`
/// * `row_offsets[0] == 0`, `row_offsets` is non-decreasing,
///   `row_offsets[n] == col_indices.len()`
/// * every entry of `col_indices` is `< num_vertices`
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    row_offsets: Vec<u32>,
    col_indices: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR graph from raw arrays, validating the invariants.
    ///
    /// # Panics
    /// Panics if the arrays do not form a valid CSR structure; use
    /// [`Csr::try_new`] for a fallible variant.
    pub fn new(row_offsets: Vec<u32>, col_indices: Vec<VertexId>) -> Self {
        Self::try_new(row_offsets, col_indices).expect("invalid CSR arrays")
    }

    /// Fallible constructor; returns a description of the violated invariant.
    pub fn try_new(row_offsets: Vec<u32>, col_indices: Vec<VertexId>) -> Result<Self, CsrError> {
        if row_offsets.is_empty() {
            return Err(CsrError::EmptyOffsets);
        }
        if row_offsets[0] != 0 {
            return Err(CsrError::FirstOffsetNonZero(row_offsets[0]));
        }
        if *row_offsets.last().unwrap() as usize != col_indices.len() {
            return Err(CsrError::LastOffsetMismatch {
                last: *row_offsets.last().unwrap(),
                edges: col_indices.len(),
            });
        }
        if let Some(i) = row_offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(CsrError::DecreasingOffsets(i));
        }
        let n = (row_offsets.len() - 1) as u32;
        if let Some(&w) = col_indices.iter().find(|&&w| w >= n) {
            return Err(CsrError::NeighborOutOfRange { neighbor: w, n });
        }
        Ok(Self {
            row_offsets,
            col_indices,
        })
    }

    /// The empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            row_offsets: vec![0; n + 1],
            col_indices: Vec::new(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of stored directed edges `m` (for a symmetric graph this is
    /// twice the undirected edge count; it equals the "non-zero elements"
    /// column of Table I).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_indices.len()
    }

    /// The row-offsets array `R` (length `n + 1`).
    #[inline]
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The column-indices array `C` (length `m`).
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col_indices
    }

    /// Adjacency list of vertex `v` (the paper's `adj(v)`).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.col_indices[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]) as usize
    }

    /// Maximum degree Δ over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Whether the edge `(u, v)` is present (binary search; adjacency lists
    /// produced by [`crate::builder::CsrBuilder`] are sorted).
    pub fn has_edge_sorted(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// True if for every stored edge `(u, v)` the reverse `(v, u)` is also
    /// stored — the structural-symmetry notion used throughout the paper
    /// (undirected graphs stored as symmetric sparsity patterns).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge_sorted(v, u))
    }

    /// True if no vertex lists itself as a neighbor.
    pub fn has_no_self_loops(&self) -> bool {
        self.edges().all(|(u, v)| u != v)
    }

    /// True if every adjacency list is strictly increasing (sorted, no
    /// duplicates).
    pub fn has_sorted_unique_neighbors(&self) -> bool {
        self.vertices()
            .all(|v| self.neighbors(v).windows(2).all(|w| w[0] < w[1]))
    }

    /// Re-checks all structural invariants; useful after IO.
    pub fn validate(&self) -> Result<(), CsrError> {
        Self::try_new(self.row_offsets.clone(), self.col_indices.clone()).map(|_| ())
    }

    /// Returns the transpose graph (reverse of every edge). For symmetric
    /// graphs this is an expensive identity, used in tests as an oracle.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0u32; n + 1];
        for &v in &self.col_indices {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cols = vec![0 as VertexId; self.num_edges()];
        let mut cursor = counts;
        for (u, v) in self.edges() {
            let slot = cursor[v as usize] as usize;
            cols[slot] = u;
            cursor[v as usize] += 1;
        }
        // Transposing preserves sortedness of lists only per-source order;
        // re-sort each list to restore the sorted-unique invariant.
        let mut out = Csr {
            row_offsets: offsets,
            col_indices: cols,
        };
        out.sort_neighbor_lists();
        out
    }

    /// Sorts every adjacency list in place.
    pub fn sort_neighbor_lists(&mut self) {
        for v in 0..self.num_vertices() {
            let lo = self.row_offsets[v] as usize;
            let hi = self.row_offsets[v + 1] as usize;
            self.col_indices[lo..hi].sort_unstable();
        }
    }

    /// Memory footprint in bytes of the two CSR arrays (what the kernels
    /// stream from DRAM).
    pub fn footprint_bytes(&self) -> usize {
        self.row_offsets.len() * 4 + self.col_indices.len() * 4
    }

    /// A stable 64-bit content fingerprint of the graph: a hash over
    /// `n`, `m` and every word of the `R` and `C` arrays, in order.
    ///
    /// Two graphs fingerprint equal iff their CSR arrays are
    /// byte-identical (up to 64-bit hash collisions), which is exactly
    /// the notion of identity a result cache needs: every coloring
    /// scheme is a pure function of the CSR bytes plus its options, so
    /// equal fingerprints plus equal options mean an identical result.
    /// Relabeling a graph with a non-identity permutation — even an
    /// automorphism — changes the bytes and therefore the fingerprint;
    /// that is deliberate (colorings are not relabel-equivariant
    /// caches).
    ///
    /// The hash is implemented in-house (multiply-xorshift chaining with
    /// a splitmix64 finalizer, like the rest of the crate's RNG) so the
    /// value is bit-stable across platforms and dependency versions; the
    /// unit test pins it for the Fig. 2 example graph.
    pub fn content_fingerprint(&self) -> u64 {
        #[inline]
        fn mix(h: u64, w: u64) -> u64 {
            let x = (h ^ w).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^ (x >> 32)
        }
        // Domain-separate the four sections (n, m, R, C) so that moving a
        // word across an array boundary cannot cancel out.
        let mut h = 0x6763_6F6C_2D63_7372u64; // "gcol-csr"
        h = mix(h, self.num_vertices() as u64);
        h = mix(h, self.num_edges() as u64);
        h = mix(h, 0x52); // 'R'
        let fold = |h0: u64, words: &[u32]| {
            let mut h = h0;
            let mut it = words.chunks_exact(2);
            for pair in &mut it {
                h = mix(h, (pair[0] as u64) << 32 | pair[1] as u64);
            }
            if let [last] = it.remainder() {
                h = mix(h, 1u64 << 33 | *last as u64);
            }
            h
        };
        h = fold(h, &self.row_offsets);
        h = mix(h, 0x43); // 'C'
        h = fold(h, &self.col_indices);
        // splitmix64 finalizer for full avalanche of the last words.
        crate::rng::splitmix64(&mut h)
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csr {{ n: {}, m: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

/// Structural errors a raw CSR pair can exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// The offsets array was empty (must have at least one entry).
    EmptyOffsets,
    /// `row_offsets[0]` was not zero.
    FirstOffsetNonZero(u32),
    /// `row_offsets[n]` disagreed with `col_indices.len()`.
    LastOffsetMismatch {
        /// The final offset entry.
        last: u32,
        /// The actual number of column indices.
        edges: usize,
    },
    /// Offsets decreased at the given window index.
    DecreasingOffsets(usize),
    /// A neighbor index was `>= n`.
    NeighborOutOfRange {
        /// The offending neighbor id.
        neighbor: VertexId,
        /// The vertex count.
        n: u32,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::EmptyOffsets => write!(f, "row_offsets is empty"),
            CsrError::FirstOffsetNonZero(x) => {
                write!(f, "row_offsets[0] = {x}, expected 0")
            }
            CsrError::LastOffsetMismatch { last, edges } => write!(
                f,
                "row_offsets ends at {last} but there are {edges} column indices"
            ),
            CsrError::DecreasingOffsets(i) => {
                write!(f, "row_offsets decreases at index {i}")
            }
            CsrError::NeighborOutOfRange { neighbor, n } => {
                write!(f, "neighbor {neighbor} out of range (n = {n})")
            }
        }
    }
}

impl std::error::Error for CsrError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example graph from Fig. 2 of the paper: 5 vertices,
    /// R = [0, 2, 6, 9, 11, 14], C as concatenated adjacency lists.
    fn fig2_graph() -> Csr {
        Csr::new(
            vec![0, 2, 6, 9, 11, 14],
            vec![1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3],
        )
    }

    #[test]
    fn fig2_shape() {
        let g = fig2_graph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2, 3, 4]);
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
        assert!(g.has_sorted_unique_neighbors());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.neighbors(3).is_empty());
        g.validate().unwrap();
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Csr::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn rejects_bad_offsets() {
        assert_eq!(
            Csr::try_new(vec![], vec![]).unwrap_err(),
            CsrError::EmptyOffsets
        );
        assert_eq!(
            Csr::try_new(vec![1, 1], vec![0]).unwrap_err(),
            CsrError::FirstOffsetNonZero(1)
        );
        assert!(matches!(
            Csr::try_new(vec![0, 2], vec![0]).unwrap_err(),
            CsrError::LastOffsetMismatch { .. }
        ));
        assert_eq!(
            Csr::try_new(vec![0, 2, 1, 3], vec![0, 0, 0]).unwrap_err(),
            CsrError::DecreasingOffsets(1)
        );
        assert!(matches!(
            Csr::try_new(vec![0, 1], vec![5]).unwrap_err(),
            CsrError::NeighborOutOfRange { neighbor: 5, n: 1 }
        ));
    }

    #[test]
    fn edges_iterator_matches_neighbors() {
        let g = fig2_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        assert_eq!(edges[0], (0, 1));
        assert_eq!(edges[2], (1, 0));
        assert_eq!(*edges.last().unwrap(), (4, 3));
    }

    #[test]
    fn transpose_of_symmetric_graph_is_identity() {
        let g = fig2_graph();
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn transpose_reverses_edges() {
        // Directed path 0 -> 1 -> 2.
        let g = Csr::new(vec![0, 1, 2, 2], vec![1, 2]);
        let t = g.transpose();
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[1]);
    }

    #[test]
    fn has_edge_sorted_works() {
        let g = fig2_graph();
        assert!(g.has_edge_sorted(0, 1));
        assert!(!g.has_edge_sorted(0, 3));
        assert!(g.has_edge_sorted(4, 3));
    }

    #[test]
    fn footprint_counts_both_arrays() {
        let g = fig2_graph();
        assert_eq!(g.footprint_bytes(), 6 * 4 + 14 * 4);
    }

    #[test]
    fn content_fingerprint_is_pinned() {
        // The fingerprint is part of the service-cache contract: it must
        // be bit-stable across platforms, compilers and releases. If this
        // value ever changes, every persisted cache key changes with it —
        // treat that as a breaking change, not a test to update casually.
        let g = fig2_graph();
        assert_eq!(g.content_fingerprint(), 0x5e47_041d_72bb_63bb);
    }

    #[test]
    fn content_fingerprint_separates_structure() {
        let g = fig2_graph();
        // Same arrays -> same hash.
        assert_eq!(g.content_fingerprint(), g.clone().content_fingerprint());
        // Dropping one directed edge changes it.
        let h = Csr::new(
            vec![0, 2, 6, 9, 11, 13],
            vec![1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2],
        );
        assert_ne!(g.content_fingerprint(), h.content_fingerprint());
        // Isolated-vertex padding (same C, longer R) changes it.
        let mut r = g.row_offsets().to_vec();
        r.push(*r.last().unwrap());
        let padded = Csr::new(r, g.col_indices().to_vec());
        assert_ne!(g.content_fingerprint(), padded.content_fingerprint());
        // The empty graph and a single isolated vertex differ too.
        assert_ne!(
            Csr::empty(0).content_fingerprint(),
            Csr::empty(1).content_fingerprint()
        );
    }
}

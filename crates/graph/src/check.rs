//! Coloring validity checks shared by every algorithm and every test.

use crate::csr::{Csr, VertexId};
use rayon::prelude::*;
use std::fmt;

/// Color type: `0` means "uncolored", valid colors start at `1`, exactly as
/// in Algorithm 1 of the paper (the `colorMask` scan starts at index
/// `i > 0`).
pub type Color = u32;

/// Why a candidate coloring is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColoringViolation {
    /// The color array length differs from the vertex count.
    WrongLength {
        /// Provided length.
        got: usize,
        /// Expected length (n).
        expected: usize,
    },
    /// Some vertex is still uncolored (color 0).
    Uncolored(VertexId),
    /// Two adjacent vertices share a color.
    Conflict(VertexId, VertexId),
}

impl fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringViolation::WrongLength { got, expected } => {
                write!(f, "color array has length {got}, expected {expected}")
            }
            ColoringViolation::Uncolored(v) => {
                write!(f, "vertex {v} is uncolored")
            }
            ColoringViolation::Conflict(u, v) => {
                write!(f, "adjacent vertices {u} and {v} share a color")
            }
        }
    }
}

impl std::error::Error for ColoringViolation {}

/// Verifies that `colors` is a proper coloring of `g`: every vertex has a
/// positive color and no edge is monochromatic. Runs in parallel over
/// vertices; returns the first (lowest-vertex) violation found.
pub fn verify_coloring(g: &Csr, colors: &[Color]) -> Result<(), ColoringViolation> {
    let n = g.num_vertices();
    if colors.len() != n {
        return Err(ColoringViolation::WrongLength {
            got: colors.len(),
            expected: n,
        });
    }
    let bad = (0..n as VertexId)
        .into_par_iter()
        .filter_map(|v| {
            if colors[v as usize] == 0 {
                return Some(ColoringViolation::Uncolored(v));
            }
            g.neighbors(v)
                .iter()
                .find(|&&w| w != v && colors[w as usize] == colors[v as usize])
                .map(|&w| ColoringViolation::Conflict(v, w))
        })
        .min_by_key(|viol| match *viol {
            ColoringViolation::Uncolored(v) => v,
            ColoringViolation::Conflict(v, _) => v,
            ColoringViolation::WrongLength { .. } => 0,
        });
    match bad {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Number of distinct colors used (ignores uncolored vertices). For the
/// first-fit family the colors form the contiguous range `1..=max`, so this
/// equals the maximum color; we count distinct values to also handle
/// non-contiguous assignments (csrcolor's `2i`/`2i+1` scheme compacted).
pub fn count_colors(colors: &[Color]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &c in colors {
        if c != 0 {
            seen.insert(c);
        }
    }
    seen.len()
}

/// Maximum color value used (0 if nothing is colored).
pub fn max_color(colors: &[Color]) -> Color {
    colors.iter().copied().max().unwrap_or(0)
}

/// Counts monochromatic edges `(u, v)` with `u < v` — the conflict measure
/// used when reasoning about speculative rounds.
pub fn count_conflicts(g: &Csr, colors: &[Color]) -> usize {
    (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .map(|v| {
            g.neighbors(v)
                .iter()
                .filter(|&&w| {
                    v < w && colors[v as usize] != 0 && colors[v as usize] == colors[w as usize]
                })
                .count()
        })
        .sum()
}

/// Remaps an arbitrary positive color assignment to the dense range
/// `1..=k`, preserving the relative order of first appearance. Used to
/// report csrcolor's color count on the same scale as the greedy schemes.
pub fn compact_colors(colors: &mut [Color]) -> usize {
    let mut map = std::collections::HashMap::new();
    let mut next = 1 as Color;
    for c in colors.iter_mut() {
        if *c == 0 {
            continue;
        }
        let dense = *map.entry(*c).or_insert_with(|| {
            let d = next;
            next += 1;
            d
        });
        *c = dense;
    }
    (next - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_undirected_edges;

    fn triangle() -> Csr {
        from_undirected_edges(3, [(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn accepts_proper_coloring() {
        let g = triangle();
        verify_coloring(&g, &[1, 2, 3]).unwrap();
    }

    #[test]
    fn rejects_conflict() {
        let g = triangle();
        assert_eq!(
            verify_coloring(&g, &[1, 1, 2]).unwrap_err(),
            ColoringViolation::Conflict(0, 1)
        );
    }

    #[test]
    fn rejects_uncolored() {
        let g = triangle();
        assert_eq!(
            verify_coloring(&g, &[1, 0, 2]).unwrap_err(),
            ColoringViolation::Uncolored(1)
        );
    }

    #[test]
    fn rejects_wrong_length() {
        let g = triangle();
        assert!(matches!(
            verify_coloring(&g, &[1, 2]).unwrap_err(),
            ColoringViolation::WrongLength {
                got: 2,
                expected: 3
            }
        ));
    }

    #[test]
    fn count_colors_ignores_zero_and_gaps() {
        assert_eq!(count_colors(&[0, 5, 5, 9]), 2);
        assert_eq!(count_colors(&[]), 0);
        assert_eq!(max_color(&[0, 5, 9]), 9);
        assert_eq!(max_color(&[]), 0);
    }

    #[test]
    fn conflict_count_counts_each_edge_once() {
        let g = triangle();
        assert_eq!(count_conflicts(&g, &[1, 1, 1]), 3);
        assert_eq!(count_conflicts(&g, &[1, 1, 2]), 1);
        assert_eq!(count_conflicts(&g, &[1, 2, 3]), 0);
        // Uncolored vertices never conflict.
        assert_eq!(count_conflicts(&g, &[0, 0, 0]), 0);
    }

    #[test]
    fn compact_colors_densifies() {
        let mut c = [0, 10, 4, 10, 7];
        let k = compact_colors(&mut c);
        assert_eq!(k, 3);
        assert_eq!(c, [0, 1, 2, 1, 3]);
    }

    #[test]
    fn self_loop_does_not_flag_conflict() {
        let mut b = crate::builder::CsrBuilder::new(1);
        b.add_edge(0, 0);
        let g = b.keep_self_loops().build();
        verify_coloring(&g, &[1]).unwrap();
    }
}

//! Vertex ordering heuristics.
//!
//! §II of the paper discusses the classical trade-off between First Fit
//! (natural order, fastest) and degree-based orderings (fewer colors,
//! slower). The sequential and CPU-parallel algorithms accept any of these
//! orders; the GPU kernels implicitly use natural order (thread id = vertex
//! id), which is what the paper evaluates.

use crate::csr::{Csr, VertexId};
use crate::rng::Xoshiro256;

/// A vertex visitation order for greedy coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Natural order `0..n` — the paper's First Fit (FF).
    Natural,
    /// Largest degree first (Welsh–Powell / the paper's LF).
    LargestDegreeFirst,
    /// Smallest degree last (Matula–Beck): repeatedly remove a minimum-
    /// degree vertex; color in reverse removal order. Uses colors ≤
    /// degeneracy + 1.
    SmallestDegreeLast,
    /// Uniformly random permutation (seeded).
    Random(u64),
}

/// Computes the permutation of vertices induced by `ord`.
pub fn order_vertices(g: &Csr, ord: Ordering) -> Vec<VertexId> {
    let n = g.num_vertices();
    match ord {
        Ordering::Natural => (0..n as VertexId).collect(),
        Ordering::LargestDegreeFirst => {
            let mut vs: Vec<VertexId> = (0..n as VertexId).collect();
            // Stable sort keeps natural order within equal degrees, so the
            // result is deterministic.
            vs.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            vs
        }
        Ordering::SmallestDegreeLast => smallest_degree_last(g),
        Ordering::Random(seed) => {
            let mut vs: Vec<VertexId> = (0..n as VertexId).collect();
            let mut rng = Xoshiro256::seed_from_u64(seed);
            rng.shuffle(&mut vs);
            vs
        }
    }
}

/// Matula–Beck smallest-degree-last ordering via bucketed degeneracy
/// peeling; O(n + m).
fn smallest_degree_last(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let max_deg = g.max_degree();
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    // Bucket queue keyed by current degree.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as VertexId {
        buckets[degree[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut removal_order = Vec::with_capacity(n);
    let mut cursor = 0usize;
    while removal_order.len() < n {
        // Find the lowest non-empty bucket; cursor can move back by at most
        // one per removal, so total work is O(n + m).
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = loop {
            let Some(v) = buckets[cursor].pop() else {
                cursor += 1;
                continue;
            };
            // Lazily skip entries whose degree has since changed.
            if !removed[v as usize] && degree[v as usize] == cursor {
                break v;
            }
        };
        removed[v as usize] = true;
        removal_order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                let d = degree[w as usize];
                degree[w as usize] = d - 1;
                buckets[d - 1].push(w);
                if d - 1 < cursor {
                    cursor = d - 1;
                }
            }
        }
    }
    removal_order.reverse();
    removal_order
}

/// Core number of every vertex (k-core decomposition): the largest `k`
/// such that the vertex survives in the subgraph where every vertex has
/// degree ≥ `k`. Computed with the same O(n + m) bucket peeling as the
/// smallest-degree-last order; the maximum core number is the degeneracy.
/// Used by the JP-SL parallel ordering heuristic (Hasenplaugh et al.),
/// whose priority levels are exactly these.
pub fn core_numbers(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let max_deg = g.max_degree();
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as VertexId {
        buckets[degree[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut core = vec![0u32; n];
    let mut current_core = 0usize;
    let mut cursor = 0usize;
    let mut processed = 0usize;
    while processed < n {
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = loop {
            let Some(v) = buckets[cursor].pop() else {
                cursor += 1;
                continue;
            };
            if !removed[v as usize] && degree[v as usize] == cursor {
                break v;
            }
        };
        current_core = current_core.max(cursor);
        core[v as usize] = current_core as u32;
        removed[v as usize] = true;
        processed += 1;
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                let d = degree[w as usize];
                if d > cursor {
                    degree[w as usize] = d - 1;
                    buckets[d - 1].push(w);
                    if d - 1 < cursor {
                        cursor = d - 1;
                    }
                }
            }
        }
    }
    core
}

/// The degeneracy of `g` (max over the peeling of the min degree at removal
/// time); greedy coloring in smallest-degree-last order uses at most
/// `degeneracy + 1` colors.
pub fn degeneracy(g: &Csr) -> usize {
    let order = smallest_degree_last(g);
    let n = g.num_vertices();
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    // Degeneracy = max back-degree in the SDL order (neighbors earlier in
    // the order).
    (0..n)
        .map(|i| {
            let v = order[i];
            g.neighbors(v)
                .iter()
                .filter(|&&w| pos[w as usize] < i)
                .count()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::simple::{complete, cycle, path, star};

    #[test]
    fn natural_is_identity() {
        let g = path(5);
        assert_eq!(order_vertices(&g, Ordering::Natural), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ldf_puts_hub_first() {
        let g = star(10);
        let ord = order_vertices(&g, Ordering::LargestDegreeFirst);
        assert_eq!(ord[0], 0);
    }

    #[test]
    fn orders_are_permutations() {
        let g = crate::gen::simple::erdos_renyi(200, 600, 1);
        for ord in [
            Ordering::Natural,
            Ordering::LargestDegreeFirst,
            Ordering::SmallestDegreeLast,
            Ordering::Random(42),
        ] {
            let mut p = order_vertices(&g, ord);
            p.sort_unstable();
            assert_eq!(p, (0..200).collect::<Vec<_>>(), "order {ord:?}");
        }
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let g = path(50);
        assert_eq!(
            order_vertices(&g, Ordering::Random(7)),
            order_vertices(&g, Ordering::Random(7))
        );
        assert_ne!(
            order_vertices(&g, Ordering::Random(7)),
            order_vertices(&g, Ordering::Random(8))
        );
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy(&path(10)), 1);
        assert_eq!(degeneracy(&cycle(10)), 2);
        assert_eq!(degeneracy(&complete(6)), 5);
        assert_eq!(degeneracy(&star(20)), 1);
    }

    #[test]
    fn sdl_of_star_colors_hub_early() {
        // SDL peels leaves; the hub is removed only once its degree drops
        // to 1, i.e. it is one of the last two removals, so it appears in
        // the first two positions of the reversed (coloring) order.
        let g = star(8);
        let ord = order_vertices(&g, Ordering::SmallestDegreeLast);
        let hub_pos = ord.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos <= 1, "hub at position {hub_pos}");
    }

    #[test]
    fn degeneracy_of_empty_graph() {
        let g = crate::csr::Csr::empty(5);
        assert_eq!(degeneracy(&g), 0);
        assert_eq!(order_vertices(&g, Ordering::SmallestDegreeLast).len(), 5);
    }

    #[test]
    fn core_numbers_of_known_graphs() {
        // Path: every vertex is 1-core.
        assert!(core_numbers(&path(6)).iter().all(|&c| c == 1));
        // Cycle: 2-core everywhere.
        assert!(core_numbers(&cycle(7)).iter().all(|&c| c == 2));
        // K5: 4-core everywhere.
        assert!(core_numbers(&complete(5)).iter().all(|&c| c == 4));
        // Star: hub and leaves are all 1-core.
        assert!(core_numbers(&star(9)).iter().all(|&c| c == 1));
        // Empty graph: no cores.
        assert!(core_numbers(&crate::csr::Csr::empty(0)).is_empty());
        assert!(core_numbers(&crate::csr::Csr::empty(4))
            .iter()
            .all(|&c| c == 0));
    }

    #[test]
    fn max_core_equals_degeneracy() {
        let g = crate::gen::simple::erdos_renyi(300, 1500, 5);
        let cores = core_numbers(&g);
        let max_core = cores.iter().copied().max().unwrap() as usize;
        assert_eq!(max_core, degeneracy(&g));
    }

    #[test]
    fn triangle_with_tail_has_two_core_levels() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let g = crate::builder::from_undirected_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)]);
        let cores = core_numbers(&g);
        assert_eq!(cores, vec![2, 2, 2, 1]);
    }
}

//! Deterministic pseudo-random number generation for graph synthesis.
//!
//! Graph generators must be bit-stable across platforms and dependency
//! versions so the benchmark suite (Table I) is reproducible. We therefore
//! implement two small, well-known PRNGs in-house instead of relying on
//! `rand`'s version-dependent `StdRng`:
//!
//! * [`splitmix64`] — used for seeding (Steele, Lea & Flood, OOPSLA'14).
//! * [`Xoshiro256`] — xoshiro256** 1.0 (Blackman & Vigna, 2018), the
//!   general-purpose generator used by all graph generators.

/// One step of the splitmix64 generator: updates `state` and returns the
/// next 64-bit output. Used to expand a single `u64` seed into the four
/// words of xoshiro state.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** 1.0 — a fast, high-quality 64-bit PRNG with 256 bits of
/// state. Not cryptographic; exactly what a workload generator needs.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a single word seed via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state would be a fixed point; splitmix64 of any seed
        // cannot produce four zero words, but guard anyway.
        if s == [0; 4] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits (upper half of the 64-bit output, which has the
    /// better statistical quality for xoshiro**).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection
    /// method (unbiased).
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Splits off an independently-seeded child generator; used to give each
    /// rayon task its own deterministic stream.
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the public-domain C source.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_range_handles_bound_one() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(1), 0);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "should actually move");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Xoshiro256::seed_from_u64(13);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let equal = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}

//! # gcol-graph — graph substrate
//!
//! Compressed-sparse-row (CSR) graph storage plus everything the paper's
//! evaluation needs around it:
//!
//! * [`Csr`] / [`CsrBuilder`] — the `R` (row offsets) and `C` (column
//!   indices) arrays of §III-C, Fig. 2 of the paper.
//! * [`edit`] — fingerprint-stable edge-batch mutation
//!   ([`Csr::apply_edits`]) with touched-vertex reporting, feeding the
//!   incremental-recoloring path.
//! * [`gen`] — deterministic generators: R-MAT (§IV), plus structural
//!   stand-ins for the four University-of-Florida matrices of Table I.
//! * [`io`] — streaming, bounded-memory ingest of MatrixMarket, DIMACS
//!   `.col`, METIS and plain edge lists (plus matching writers), with
//!   typed line-accurate errors, so real SuiteSparse/DIMACS files can be
//!   dropped in.
//! * [`stats`] — the degree statistics reported in Table I, plus the
//!   single-pass [`GraphProfile`] feature vector the `gcol-plan`
//!   planner conditions on.
//! * [`ordering`] — vertex ordering heuristics (first-fit order, largest
//!   degree first, smallest degree last, random).
//! * [`partition`] — the block partitioning + boundary-vertex detection used
//!   by the 3-step GM baseline (Grosset et al.).
//! * [`check`] — coloring validity checks shared by every algorithm.
//! * [`traverse`] — BFS, connected components and bipartiteness (the
//!   structural oracles the test suites verify colorings against).
//!
//! The crate is dependency-light and fully deterministic: generators are
//! seeded with an in-house [`rng`] (splitmix64 / xoshiro256**) so the
//! benchmark suite is bit-stable across platforms and crate versions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod check;
pub mod csr;
pub mod edit;
pub mod gen;
pub mod io;
pub mod ordering;
pub mod partition;
pub mod relabel;
pub mod rng;
pub mod stats;
pub mod traverse;

pub use builder::CsrBuilder;
pub use check::{verify_coloring, Color, ColoringViolation};
pub use csr::{Csr, VertexId};
pub use edit::{EdgeEdit, EditError};
pub use stats::{DegreeStats, GraphProfile};

//! Breadth-first traversal utilities: connected components, BFS layers
//! and bipartiteness. These serve as *oracles* in the test suites — a
//! bipartite graph must 2-color, per-component color counts are
//! independent, BFS layering bounds the diameter-related behavior of the
//! iterative schemes — and as diagnostics for the benchmark suite.

use crate::csr::{Csr, VertexId};

/// Connected-component labeling.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per vertex (ids are dense, 0-based, in order of
    /// first-vertex discovery).
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

/// Labels connected components with an iterative BFS (no recursion, safe
/// for million-vertex graphs).
pub fn connected_components(g: &Csr) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut queue: Vec<VertexId> = Vec::new();
    let mut count = 0u32;
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = count;
                    queue.push(w);
                }
            }
        }
        count += 1;
    }
    Components {
        label,
        count: count as usize,
    }
}

/// BFS distances from `source` (`u32::MAX` for unreachable vertices).
pub fn bfs_distances(g: &Csr, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        for &v in &frontier {
            for &w in g.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d;
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// If `g` is bipartite, returns a proper 2-coloring (colors 1/2, isolated
/// vertices colored 1); otherwise `None` (an odd cycle exists).
pub fn bipartition(g: &Csr) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    let mut side = vec![0u32; n]; // 0 = unvisited, else 1/2
    let mut queue: Vec<VertexId> = Vec::new();
    for start in 0..n as VertexId {
        if side[start as usize] != 0 {
            continue;
        }
        side[start as usize] = 1;
        queue.push(start);
        while let Some(v) = queue.pop() {
            let opposite = 3 - side[v as usize];
            for &w in g.neighbors(v) {
                match side[w as usize] {
                    0 => {
                        side[w as usize] = opposite;
                        queue.push(w);
                    }
                    s if s == side[v as usize] && w != v => return None,
                    _ => {}
                }
            }
        }
    }
    Some(side)
}

/// Eccentricity of `source` (longest BFS distance within its component).
pub fn eccentricity(g: &Csr, source: VertexId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_undirected_edges;
    use crate::check::verify_coloring;
    use crate::gen::simple::{complete, cycle, path, star};
    use crate::gen::{grid2d, grid3d, StencilKind};

    #[test]
    fn single_component_path() {
        let g = path(10);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!(c.label.iter().all(|&l| l == 0));
    }

    #[test]
    fn disjoint_pieces_are_separate_components() {
        // Two triangles + an isolated vertex.
        let g = from_undirected_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.label[0], c.label[1]);
        assert_ne!(c.label[0], c.label[3]);
        assert_ne!(c.label[3], c.label[6]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(6);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(bfs_distances(&g, 3), vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = from_undirected_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn bipartition_of_bipartite_graphs() {
        for g in [
            path(17),
            cycle(20),
            star(30),
            grid2d(9, 7, StencilKind::FivePoint),
            grid3d(4, 5, 6),
        ] {
            let side = bipartition(&g).expect("bipartite");
            verify_coloring(&g, &side).unwrap();
        }
    }

    #[test]
    fn odd_structures_are_not_bipartite() {
        assert!(bipartition(&cycle(9)).is_none());
        assert!(bipartition(&complete(3)).is_none());
        // 9-point stencil contains triangles.
        assert!(bipartition(&grid2d(4, 4, StencilKind::NinePoint)).is_none());
    }

    #[test]
    fn eccentricity_of_known_shapes() {
        assert_eq!(eccentricity(&path(10), 0), 9);
        assert_eq!(eccentricity(&path(10), 5), 5);
        assert_eq!(eccentricity(&star(50), 0), 1);
        assert_eq!(eccentricity(&star(50), 1), 2);
        assert_eq!(eccentricity(&complete(8), 3), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Csr::empty(3);
        assert_eq!(connected_components(&g).count, 3);
        assert!(bipartition(&g).is_some());
    }
}

//! MatrixMarket coordinate-format reader/writer.
//!
//! Supports the subset the SuiteSparse graphs need: `matrix coordinate
//! {pattern|real|integer|complex} {general|symmetric|skew-symmetric}`.
//! Numeric values are parsed and discarded (coloring only needs the
//! sparsity pattern); diagonal entries become self-loops and are dropped by
//! the builder, matching how graph-coloring treats matrices.

use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors while parsing a MatrixMarket stream.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The `%%MatrixMarket` banner was missing or malformed.
    BadHeader(String),
    /// The matrix is not square (graphs need n == m).
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// A data line did not parse.
    BadEntry {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An index was outside `1..=n`.
    IndexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending index.
        index: usize,
        /// Matrix dimension.
        n: usize,
    },
    /// Fewer data lines than the header promised.
    TruncatedData {
        /// Entries promised by the size line.
        expected: usize,
        /// Entries actually present.
        got: usize,
    },
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "io error: {e}"),
            MtxError::BadHeader(h) => write!(f, "bad MatrixMarket header: {h}"),
            MtxError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            MtxError::BadEntry { line, text } => {
                write!(f, "unparsable entry at line {line}: {text:?}")
            }
            MtxError::IndexOutOfRange { line, index, n } => {
                write!(f, "index {index} out of range 1..={n} at line {line}")
            }
            MtxError::TruncatedData { expected, got } => {
                write!(f, "expected {expected} entries, found {got}")
            }
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

/// Parses a MatrixMarket coordinate stream into a symmetric CSR graph.
///
/// `general` matrices are symmetrized (the paper colors the graph of
/// `A + Aᵀ`, the standard treatment for nonsymmetric patterns);
/// `symmetric`/`skew-symmetric` ones store one triangle which we mirror.
/// Self-loops (diagonal entries) are dropped.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Csr, MtxError> {
    let mut lines = reader.lines().enumerate();

    // Banner.
    let (_, banner) = lines
        .next()
        .ok_or_else(|| MtxError::BadHeader("empty input".into()))?;
    let banner = banner?;
    let lower = banner.to_ascii_lowercase();
    let fields: Vec<&str> = lower.split_whitespace().collect();
    if fields.len() < 5
        || fields[0] != "%%matrixmarket"
        || fields[1] != "matrix"
        || fields[2] != "coordinate"
    {
        return Err(MtxError::BadHeader(banner));
    }
    let value_kind = fields[3];
    if !matches!(value_kind, "pattern" | "real" | "integer" | "complex") {
        return Err(MtxError::BadHeader(banner));
    }
    let symmetry = fields[4];
    if !matches!(
        symmetry,
        "general" | "symmetric" | "skew-symmetric" | "hermitian"
    ) {
        return Err(MtxError::BadHeader(banner));
    }

    // Size line (first non-comment line).
    let mut size: Option<(usize, usize, usize)> = None;
    let mut builder: Option<CsrBuilder> = None;
    let mut entries_read = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('%') {
            continue;
        }
        let mut it = text.split_whitespace();
        if size.is_none() {
            let parse = |s: Option<&str>| -> Option<usize> { s.and_then(|x| x.parse().ok()) };
            let (rows, cols, nnz) = match (parse(it.next()), parse(it.next()), parse(it.next())) {
                (Some(r), Some(c), Some(z)) => (r, c, z),
                _ => {
                    return Err(MtxError::BadEntry {
                        line: idx + 1,
                        text: text.into(),
                    })
                }
            };
            if rows != cols {
                return Err(MtxError::NotSquare { rows, cols });
            }
            size = Some((rows, cols, nnz));
            builder = Some(CsrBuilder::with_capacity(rows, nnz * 2));
            continue;
        }
        let (n, _, nnz) = size.unwrap();
        let parse_idx = |s: Option<&str>| -> Result<usize, MtxError> {
            s.and_then(|x| x.parse().ok()).ok_or(MtxError::BadEntry {
                line: idx + 1,
                text: text.into(),
            })
        };
        let i = parse_idx(it.next())?;
        let j = parse_idx(it.next())?;
        for (label, v) in [("row", i), ("col", j)] {
            let _ = label;
            if v == 0 || v > n {
                return Err(MtxError::IndexOutOfRange {
                    line: idx + 1,
                    index: v,
                    n,
                });
            }
        }
        entries_read += 1;
        if entries_read > nnz {
            // Extra entries: treat like the reference readers — error out.
            return Err(MtxError::BadEntry {
                line: idx + 1,
                text: format!("entry #{entries_read} exceeds nnz {nnz}"),
            });
        }
        let b = builder.as_mut().unwrap();
        b.add_edge((i - 1) as VertexId, (j - 1) as VertexId);
    }

    let (_, _, nnz) = size.ok_or_else(|| MtxError::BadHeader("missing size line".into()))?;
    if entries_read != nnz {
        return Err(MtxError::TruncatedData {
            expected: nnz,
            got: entries_read,
        });
    }
    // Both general and symmetric inputs go through symmetrize(): general
    // patterns become A + Aᵀ, one-triangle symmetric storage is mirrored.
    Ok(builder.unwrap().symmetrize().build())
}

/// Writes `g` in `pattern general` coordinate format (one directed entry
/// per stored edge).
pub fn write_matrix_market<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% written by gcol-graph")?;
    writeln!(
        w,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Csr, MtxError> {
        read_matrix_market(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_symmetric_pattern() {
        let g = parse(
            "%%MatrixMarket matrix coordinate pattern symmetric\n\
             % a comment\n\
             3 3 3\n\
             2 1\n\
             3 1\n\
             3 2\n",
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // mirrored triangle
        assert!(g.is_symmetric());
    }

    #[test]
    fn parses_general_real_and_symmetrizes() {
        let g = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             2 2 3\n\
             1 2 0.5\n\
             2 1 -1.0\n\
             1 1 3.25\n",
        )
        .unwrap();
        // Self-loop (1,1) dropped; (1,2)+(2,1) dedup to one undirected edge.
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n"),
            Err(MtxError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(matches!(
            parse("%%MatrixMarket matrix array real general\n"),
            Err(MtxError::BadHeader(_))
        ));
        assert!(matches!(parse(""), Err(MtxError::BadHeader(_))));
    }

    #[test]
    fn rejects_out_of_range_index() {
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n"),
            Err(MtxError::IndexOutOfRange { index: 9, .. })
        ));
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n"),
            Err(MtxError::IndexOutOfRange { index: 0, .. })
        ));
    }

    #[test]
    fn rejects_truncated_data() {
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n"),
            Err(MtxError::TruncatedData {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn rejects_excess_data() {
        assert!(matches!(
            parse(
                "%%MatrixMarket matrix coordinate pattern general\n\
                 2 2 1\n1 2\n2 1\n"
            ),
            Err(MtxError::BadEntry { .. })
        ));
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = crate::gen::simple::erdos_renyi(40, 100, 5);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn case_insensitive_banner() {
        let g = parse("%%MatrixMarket MATRIX Coordinate Pattern General\n1 1 0\n").unwrap();
        assert_eq!(g.num_vertices(), 1);
    }
}

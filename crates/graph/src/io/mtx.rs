//! MatrixMarket coordinate-format reader/writer.
//!
//! Supports the subset the SuiteSparse graphs need: `matrix coordinate
//! {pattern|real|integer|complex} {general|symmetric|skew-symmetric}`.
//! Numeric values are parsed and discarded (coloring only needs the
//! sparsity pattern); diagonal entries become self-loops and are dropped by
//! the builder, matching how graph-coloring treats matrices.
//!
//! The reader streams entries straight into the [`CsrBuilder`] through a
//! reusable line buffer — memory is bounded by the edges themselves, not
//! the input text — and a header that declares an absurd size is rejected
//! (or capped for pre-reservation) before any allocation trusts it.

use super::{
    is_overflowing_count, IngestLimits, LimitExceeded, LineCursor, MAX_DECLARED_VERTICES,
    RESERVE_CAP,
};
use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors while parsing a MatrixMarket stream.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The `%%MatrixMarket` banner was missing or malformed.
    BadHeader {
        /// 1-based line number (1 unless the input was empty).
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The matrix is not square (graphs need n == m).
    NotSquare {
        /// 1-based line number of the size line.
        line: usize,
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// A size-line count overflows what this machine (or u32 vertex ids)
    /// can represent — the header is lying or the file is not for us.
    HeaderOverflow {
        /// 1-based line number of the size line.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A data line did not parse.
    BadEntry {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An index was outside `1..=n`.
    IndexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending index.
        index: usize,
        /// Matrix dimension.
        n: usize,
    },
    /// Fewer data lines than the header promised.
    TruncatedData {
        /// 1-based number of the last line read (0 for empty bodies).
        line: usize,
        /// Entries promised by the size line.
        expected: usize,
        /// Entries actually present.
        got: usize,
    },
    /// The input exceeds the caller's [`IngestLimits`].
    TooLarge(LimitExceeded),
}

impl MtxError {
    /// The 1-based input line the error is anchored to, if any.
    pub fn line(&self) -> Option<usize> {
        match self {
            MtxError::Io(_) => None,
            MtxError::BadHeader { line, .. }
            | MtxError::NotSquare { line, .. }
            | MtxError::HeaderOverflow { line, .. }
            | MtxError::BadEntry { line, .. }
            | MtxError::IndexOutOfRange { line, .. }
            | MtxError::TruncatedData { line, .. } => Some(*line),
            MtxError::TooLarge(l) => Some(l.line),
        }
    }
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "io error: {e}"),
            MtxError::BadHeader { line, text } => {
                write!(f, "bad MatrixMarket header at line {line}: {text:?}")
            }
            MtxError::NotSquare { line, rows, cols } => {
                write!(f, "matrix is {rows}x{cols} at line {line}, expected square")
            }
            MtxError::HeaderOverflow { line, text } => {
                write!(f, "size line overflows at line {line}: {text:?}")
            }
            MtxError::BadEntry { line, text } => {
                write!(f, "unparsable entry at line {line}: {text:?}")
            }
            MtxError::IndexOutOfRange { line, index, n } => {
                write!(f, "index {index} out of range 1..={n} at line {line}")
            }
            MtxError::TruncatedData {
                line,
                expected,
                got,
            } => {
                write!(f, "expected {expected} entries, found {got} by line {line}")
            }
            MtxError::TooLarge(l) => write!(f, "{l}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

/// Parses a MatrixMarket coordinate stream into a symmetric CSR graph.
///
/// `general` matrices are symmetrized (the paper colors the graph of
/// `A + Aᵀ`, the standard treatment for nonsymmetric patterns);
/// `symmetric`/`skew-symmetric` ones store one triangle which we mirror.
/// Self-loops (diagonal entries) are dropped.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Csr, MtxError> {
    read_matrix_market_bounded(reader, &IngestLimits::NONE)
}

/// [`read_matrix_market`] with parse-time admission bounds.
pub fn read_matrix_market_bounded<R: BufRead>(
    reader: R,
    limits: &IngestLimits,
) -> Result<Csr, MtxError> {
    let mut cursor = LineCursor::new(reader);

    // Banner.
    let (banner_line, banner) = cursor.next_line()?.ok_or_else(|| MtxError::BadHeader {
        line: 1,
        text: "empty input".into(),
    })?;
    let lower = banner.to_ascii_lowercase();
    let fields: Vec<&str> = lower.split_whitespace().collect();
    let banner_ok = fields.len() >= 5
        && fields[0] == "%%matrixmarket"
        && fields[1] == "matrix"
        && fields[2] == "coordinate"
        && matches!(fields[3], "pattern" | "real" | "integer" | "complex")
        && matches!(
            fields[4],
            "general" | "symmetric" | "skew-symmetric" | "hermitian"
        );
    if !banner_ok {
        return Err(MtxError::BadHeader {
            line: banner_line,
            text: banner.into(),
        });
    }

    let mut size: Option<(usize, usize)> = None; // (n, nnz)
    let mut builder: Option<CsrBuilder> = None;
    let mut entries_read = 0usize;
    let mut last_line = banner_line;
    while let Some((line, text)) = cursor.next_line()? {
        last_line = line;
        if text.is_empty() || text.starts_with('%') {
            continue;
        }
        let mut it = text.split_whitespace();
        let Some((n, nnz)) = size else {
            // Size line (first non-comment line after the banner).
            let overflow = |t: &str| MtxError::HeaderOverflow {
                line,
                text: t.into(),
            };
            let count = |tok: Option<&str>| -> Result<usize, MtxError> {
                let tok = tok.ok_or_else(|| MtxError::BadEntry {
                    line,
                    text: text.into(),
                })?;
                if is_overflowing_count(tok) {
                    return Err(overflow(text));
                }
                tok.parse().map_err(|_| MtxError::BadEntry {
                    line,
                    text: text.into(),
                })
            };
            let (rows, cols, nnz) = (count(it.next())?, count(it.next())?, count(it.next())?);
            if rows != cols {
                return Err(MtxError::NotSquare { line, rows, cols });
            }
            if rows > MAX_DECLARED_VERTICES {
                return Err(overflow(text));
            }
            limits
                .check_vertices(line, rows)
                .map_err(MtxError::TooLarge)?;
            limits
                .check_edges(line, nnz.saturating_mul(2))
                .map_err(MtxError::TooLarge)?;
            size = Some((rows, nnz));
            builder = Some(CsrBuilder::with_capacity(
                rows,
                nnz.saturating_mul(2).min(RESERVE_CAP),
            ));
            continue;
        };
        // Data line: stream the entry straight into the builder.
        let parse_idx = |s: Option<&str>| -> Result<usize, MtxError> {
            s.and_then(|x| x.parse().ok()).ok_or(MtxError::BadEntry {
                line,
                text: text.into(),
            })
        };
        let i = parse_idx(it.next())?;
        let j = parse_idx(it.next())?;
        for v in [i, j] {
            if v == 0 || v > n {
                return Err(MtxError::IndexOutOfRange { line, index: v, n });
            }
        }
        entries_read += 1;
        if entries_read > nnz {
            // Extra entries: treat like the reference readers — error out.
            return Err(MtxError::BadEntry {
                line,
                text: format!("entry #{entries_read} exceeds nnz {nnz}"),
            });
        }
        builder
            .as_mut()
            .unwrap()
            .add_edge((i - 1) as VertexId, (j - 1) as VertexId);
    }

    let (_, nnz) = size.ok_or_else(|| MtxError::BadHeader {
        line: last_line.max(1),
        text: "missing size line".into(),
    })?;
    if entries_read != nnz {
        return Err(MtxError::TruncatedData {
            line: last_line,
            expected: nnz,
            got: entries_read,
        });
    }
    // Both general and symmetric inputs go through symmetrize(): general
    // patterns become A + Aᵀ, one-triangle symmetric storage is mirrored.
    Ok(builder.unwrap().symmetrize().build())
}

/// Writes `g` in `pattern general` coordinate format (one directed entry
/// per stored edge).
pub fn write_matrix_market<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% written by gcol-graph")?;
    writeln!(
        w,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    Ok(())
}

/// Writes `g` in `pattern symmetric` coordinate format: one triangle
/// only (row ≥ col, SuiteSparse's lower-triangular convention), which the
/// reader mirrors back. This is the compact form real collections ship.
pub fn write_matrix_market_symmetric<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(w, "% written by gcol-graph")?;
    let nnz = g.edges().filter(|(u, v)| u > v).count();
    writeln!(w, "{} {} {}", g.num_vertices(), g.num_vertices(), nnz)?;
    for (u, v) in g.edges() {
        if u > v {
            writeln!(w, "{} {}", u + 1, v + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Csr, MtxError> {
        read_matrix_market(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_symmetric_pattern() {
        let g = parse(
            "%%MatrixMarket matrix coordinate pattern symmetric\n\
             % a comment\n\
             3 3 3\n\
             2 1\n\
             3 1\n\
             3 2\n",
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // mirrored triangle
        assert!(g.is_symmetric());
    }

    #[test]
    fn parses_general_real_and_symmetrizes() {
        let g = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             2 2 3\n\
             1 2 0.5\n\
             2 1 -1.0\n\
             1 1 3.25\n",
        )
        .unwrap();
        // Self-loop (1,1) dropped; (1,2)+(2,1) dedup to one undirected edge.
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n"),
            Err(MtxError::NotSquare {
                line: 2,
                rows: 2,
                cols: 3
            })
        ));
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(matches!(
            parse("%%MatrixMarket matrix array real general\n"),
            Err(MtxError::BadHeader { line: 1, .. })
        ));
        assert!(matches!(parse(""), Err(MtxError::BadHeader { .. })));
    }

    #[test]
    fn rejects_out_of_range_index() {
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n"),
            Err(MtxError::IndexOutOfRange {
                line: 3,
                index: 9,
                ..
            })
        ));
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n"),
            Err(MtxError::IndexOutOfRange { index: 0, .. })
        ));
    }

    #[test]
    fn rejects_truncated_data() {
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n"),
            Err(MtxError::TruncatedData {
                line: 3,
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn rejects_excess_data() {
        assert!(matches!(
            parse(
                "%%MatrixMarket matrix coordinate pattern general\n\
                 2 2 1\n1 2\n2 1\n"
            ),
            Err(MtxError::BadEntry { line: 4, .. })
        ));
    }

    #[test]
    fn rejects_overflow_sized_header_without_allocating() {
        // More vertices than u32 ids can address.
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate pattern general\n9999999999 9999999999 1\n"),
            Err(MtxError::HeaderOverflow { line: 2, .. })
        ));
        // A count that overflows usize entirely.
        assert!(matches!(
            parse(
                "%%MatrixMarket matrix coordinate pattern general\n\
                 99999999999999999999999999 99999999999999999999999999 1\n"
            ),
            Err(MtxError::HeaderOverflow { line: 2, .. })
        ));
    }

    #[test]
    fn enforces_limits_at_the_size_line() {
        let limits = IngestLimits {
            max_vertices: Some(2),
            max_edges: None,
        };
        let err = read_matrix_market_bounded(
            BufReader::new("%%MatrixMarket matrix coordinate pattern general\n5 5 0\n".as_bytes()),
            &limits,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MtxError::TooLarge(LimitExceeded {
                line: 2,
                vertices: 5,
                ..
            })
        ));
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = crate::gen::simple::erdos_renyi(40, 100, 5);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_through_symmetric_writer() {
        let g = crate::gen::simple::erdos_renyi(40, 100, 7);
        let mut buf = Vec::new();
        write_matrix_market_symmetric(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("pattern symmetric"));
        let g2 = read_matrix_market(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g.content_fingerprint(), g2.content_fingerprint());
    }

    #[test]
    fn case_insensitive_banner() {
        let g = parse("%%MatrixMarket MATRIX Coordinate Pattern General\n1 1 0\n").unwrap();
        assert_eq!(g.num_vertices(), 1);
    }
}

//! Plain whitespace-separated edge lists (`u v` per line, `#` comments).

use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use std::io::{BufRead, Write};

/// Reads an edge list with 0-based vertex ids; the graph is symmetrized.
/// `n` is inferred as `max id + 1` unless `num_vertices` is given.
pub fn read_edge_list<R: BufRead>(reader: R, num_vertices: Option<usize>) -> std::io::Result<Csr> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id = 0 as VertexId;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') || text.starts_with('%') {
            continue;
        }
        let mut it = text.split_whitespace();
        let parse = |s: Option<&str>| -> std::io::Result<VertexId> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad edge at line {}: {text:?}", idx + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = num_vertices.unwrap_or_else(|| {
        if edges.is_empty() {
            0
        } else {
            max_id as usize + 1
        }
    });
    if let Some((u, v)) = edges
        .iter()
        .find(|&&(u, v)| u as usize >= n || v as usize >= n)
    {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("edge ({u}, {v}) out of range for {n} vertices"),
        ));
    }
    let mut b = CsrBuilder::with_capacity(n, edges.len() * 2);
    b.add_edges(edges);
    Ok(b.symmetrize().build())
}

/// Writes each stored edge `(u, v)` with `u < v` once, 0-based.
pub fn write_edge_list<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# gcol edge list: {} vertices", g.num_vertices())?;
    for (u, v) in g.edges() {
        if u < v {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn reads_simple_list() {
        let g = read_edge_list(BufReader::new("# comment\n0 1\n1 2\n\n".as_bytes()), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn explicit_vertex_count_allows_isolated_tail() {
        let g = read_edge_list(BufReader::new("0 1\n".as_bytes()), Some(5)).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn rejects_out_of_range_for_explicit_count() {
        assert!(read_edge_list(BufReader::new("0 9\n".as_bytes()), Some(3)).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edge_list(BufReader::new("zero one\n".as_bytes()), None).is_err());
        assert!(read_edge_list(BufReader::new("0\n".as_bytes()), None).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list(BufReader::new("".as_bytes()), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::simple::erdos_renyi(30, 80, 2);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(buf.as_slice()), Some(g.num_vertices())).unwrap();
        assert_eq!(g, g2);
    }
}

//! Plain whitespace-separated edge lists (`u v` per line, `#` or `%`
//! comments, 0-based ids) — the SNAP-style format scraped graphs arrive
//! in.
//!
//! The reader streams each edge straight into the [`CsrBuilder`],
//! growing the vertex count as larger ids appear ([`CsrBuilder::grow_to`])
//! instead of buffering the whole list to find the maximum first.

use super::{IngestLimits, LimitExceeded, LineCursor, MAX_DECLARED_VERTICES};
use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors while parsing an edge-list stream.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// An unparsable line (junk tokens, missing endpoint).
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A numeric id too large for u32 vertex ids.
    IdOverflow {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An id at or beyond the caller-declared vertex count.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending 0-based id.
        id: usize,
        /// The declared vertex count.
        n: usize,
    },
    /// The input exceeds the caller's [`IngestLimits`].
    TooLarge(LimitExceeded),
}

impl EdgeListError {
    /// The 1-based input line the error is anchored to, if any.
    pub fn line(&self) -> Option<usize> {
        match self {
            EdgeListError::Io(_) => None,
            EdgeListError::BadLine { line, .. }
            | EdgeListError::IdOverflow { line, .. }
            | EdgeListError::VertexOutOfRange { line, .. } => Some(*line),
            EdgeListError::TooLarge(l) => Some(l.line),
        }
    }
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "io error: {e}"),
            EdgeListError::BadLine { line, text } => {
                write!(f, "bad edge at line {line}: {text:?}")
            }
            EdgeListError::IdOverflow { line, text } => {
                write!(f, "vertex id overflows u32 at line {line}: {text:?}")
            }
            EdgeListError::VertexOutOfRange { line, id, n } => {
                write!(f, "vertex {id} out of range 0..{n} at line {line}")
            }
            EdgeListError::TooLarge(l) => write!(f, "{l}"),
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Reads an edge list with 0-based vertex ids; the graph is symmetrized.
/// `n` is inferred as `max id + 1` unless `num_vertices` is given.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    num_vertices: Option<usize>,
) -> Result<Csr, EdgeListError> {
    read_edge_list_bounded(reader, num_vertices, &IngestLimits::NONE)
}

/// [`read_edge_list`] with parse-time admission bounds.
pub fn read_edge_list_bounded<R: BufRead>(
    reader: R,
    num_vertices: Option<usize>,
    limits: &IngestLimits,
) -> Result<Csr, EdgeListError> {
    if let Some(n) = num_vertices {
        limits
            .check_vertices(0, n)
            .map_err(EdgeListError::TooLarge)?;
    }
    let mut cursor = LineCursor::new(reader);
    let mut b = CsrBuilder::new(num_vertices.unwrap_or(0));
    while let Some((line, text)) = cursor.next_line()? {
        if text.is_empty() || text.starts_with('#') || text.starts_with('%') {
            continue;
        }
        let mut it = text.split_whitespace();
        let parse = |s: Option<&str>| -> Result<usize, EdgeListError> {
            let tok = s.ok_or_else(|| EdgeListError::BadLine {
                line,
                text: text.into(),
            })?;
            let id: usize = tok.parse().map_err(|_| {
                if super::is_overflowing_count(tok) {
                    EdgeListError::IdOverflow {
                        line,
                        text: text.into(),
                    }
                } else {
                    EdgeListError::BadLine {
                        line,
                        text: text.into(),
                    }
                }
            })?;
            if id >= MAX_DECLARED_VERTICES {
                return Err(EdgeListError::IdOverflow {
                    line,
                    text: text.into(),
                });
            }
            Ok(id)
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        match num_vertices {
            Some(n) => {
                for id in [u, v] {
                    if id >= n {
                        return Err(EdgeListError::VertexOutOfRange { line, id, n });
                    }
                }
            }
            None => {
                let need = u.max(v) + 1;
                if need > b.num_vertices() {
                    limits
                        .check_vertices(line, need)
                        .map_err(EdgeListError::TooLarge)?;
                    b.grow_to(need);
                }
            }
        }
        b.add_edge(u as VertexId, v as VertexId);
        limits
            .check_edges(line, b.raw_edge_count().saturating_mul(2))
            .map_err(EdgeListError::TooLarge)?;
    }
    Ok(b.symmetrize().build())
}

/// Writes each stored edge `(u, v)` with `u < v` once, 0-based.
pub fn write_edge_list<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# gcol edge list: {} vertices", g.num_vertices())?;
    for (u, v) in g.edges() {
        if u < v {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn reads_simple_list() {
        let g = read_edge_list(BufReader::new("# comment\n0 1\n1 2\n\n".as_bytes()), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn explicit_vertex_count_allows_isolated_tail() {
        let g = read_edge_list(BufReader::new("0 1\n".as_bytes()), Some(5)).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn rejects_out_of_range_for_explicit_count() {
        assert!(matches!(
            read_edge_list(BufReader::new("0 9\n".as_bytes()), Some(3)),
            Err(EdgeListError::VertexOutOfRange {
                line: 1,
                id: 9,
                n: 3
            })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_edge_list(BufReader::new("zero one\n".as_bytes()), None),
            Err(EdgeListError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list(BufReader::new("0 1\n0\n".as_bytes()), None),
            Err(EdgeListError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_overflowing_ids() {
        assert!(matches!(
            read_edge_list(
                BufReader::new("0 99999999999999999999999999\n".as_bytes()),
                None
            ),
            Err(EdgeListError::IdOverflow { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list(BufReader::new("0 4294967295\n".as_bytes()), None),
            Err(EdgeListError::IdOverflow { line: 1, .. })
        ));
    }

    #[test]
    fn enforces_limits_while_streaming() {
        let limits = IngestLimits {
            max_vertices: Some(3),
            max_edges: None,
        };
        let err = read_edge_list_bounded(BufReader::new("0 1\n1 5\n".as_bytes()), None, &limits)
            .unwrap_err();
        assert!(matches!(
            err,
            EdgeListError::TooLarge(LimitExceeded {
                line: 2,
                vertices: 6,
                ..
            })
        ));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list(BufReader::new("".as_bytes()), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::simple::erdos_renyi(30, 80, 2);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(buf.as_slice()), Some(g.num_vertices())).unwrap();
        assert_eq!(g, g2);
    }
}

//! METIS graph format (`.graph`): the adjacency-list format of the METIS
//! partitioner family, used by much of the partitioning/ordering
//! literature's test data.
//!
//! Layout: `%` comment lines anywhere, a header `n m [fmt [ncon]]`, then
//! exactly `n` adjacency lines — line *i* lists vertex *i*'s 1-based
//! neighbors. `fmt` is up to three digits `[s][w][e]`: vertex sizes,
//! vertex weights (`ncon` of them, default 1), edge weights; all weights
//! are parsed and discarded (coloring only needs the structure). Mirror
//! entries are conventionally present in both endpoint lists, but the
//! reader symmetrizes regardless, so one-sided files still load.
//!
//! An *empty* line after the header is a vertex with no neighbors — only
//! before the header (and for comments) are blank lines skipped.

use super::{
    is_overflowing_count, IngestLimits, LimitExceeded, LineCursor, MAX_DECLARED_VERTICES,
    RESERVE_CAP,
};
use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors while parsing a METIS graph stream.
#[derive(Debug)]
pub enum MetisError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The stream ended (or held only comments) before a header line.
    MissingHeader {
        /// 1-based number of the last line read (0 for empty input).
        line: usize,
    },
    /// The header line did not parse.
    BadHeader {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A header count overflows what this machine (or u32 vertex ids)
    /// can represent.
    HeaderOverflow {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The `fmt` field was not a 1–3 digit string of 0s and 1s.
    BadFormatFlag {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An adjacency line did not parse (junk token, odd token count with
    /// edge weights, junk after the last adjacency line).
    BadEntry {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A neighbor id outside `1..=n`.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: usize,
        /// The declared vertex count.
        n: usize,
    },
    /// Fewer adjacency lines than the header's vertex count.
    TruncatedData {
        /// 1-based number of the last line read.
        line: usize,
        /// Adjacency lines promised (the header's `n`).
        expected: usize,
        /// Adjacency lines present.
        got: usize,
    },
    /// The input exceeds the caller's [`IngestLimits`].
    TooLarge(LimitExceeded),
}

impl MetisError {
    /// The 1-based input line the error is anchored to, if any.
    pub fn line(&self) -> Option<usize> {
        match self {
            MetisError::Io(_) => None,
            MetisError::MissingHeader { line }
            | MetisError::BadHeader { line, .. }
            | MetisError::HeaderOverflow { line, .. }
            | MetisError::BadFormatFlag { line, .. }
            | MetisError::BadEntry { line, .. }
            | MetisError::VertexOutOfRange { line, .. }
            | MetisError::TruncatedData { line, .. } => Some(*line),
            MetisError::TooLarge(l) => Some(l.line),
        }
    }
}

impl fmt::Display for MetisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetisError::Io(e) => write!(f, "io error: {e}"),
            MetisError::MissingHeader { line } => {
                write!(
                    f,
                    "missing METIS header `n m [fmt [ncon]]` (after line {line})"
                )
            }
            MetisError::BadHeader { line, text } => {
                write!(f, "bad METIS header at line {line}: {text:?}")
            }
            MetisError::HeaderOverflow { line, text } => {
                write!(f, "header overflows at line {line}: {text:?}")
            }
            MetisError::BadFormatFlag { line, text } => {
                write!(f, "bad METIS fmt flag at line {line}: {text:?}")
            }
            MetisError::BadEntry { line, text } => {
                write!(f, "unparsable adjacency at line {line}: {text:?}")
            }
            MetisError::VertexOutOfRange { line, id, n } => {
                write!(f, "neighbor {id} out of range 1..={n} at line {line}")
            }
            MetisError::TruncatedData {
                line,
                expected,
                got,
            } => {
                write!(
                    f,
                    "expected {expected} adjacency lines, found {got} by line {line}"
                )
            }
            MetisError::TooLarge(l) => write!(f, "{l}"),
        }
    }
}

impl std::error::Error for MetisError {}

impl From<std::io::Error> for MetisError {
    fn from(e: std::io::Error) -> Self {
        MetisError::Io(e)
    }
}

/// Parses a METIS graph stream into a symmetric CSR graph.
pub fn read_metis<R: BufRead>(reader: R) -> Result<Csr, MetisError> {
    read_metis_bounded(reader, &IngestLimits::NONE)
}

/// [`read_metis`] with parse-time admission bounds.
pub fn read_metis_bounded<R: BufRead>(reader: R, limits: &IngestLimits) -> Result<Csr, MetisError> {
    let mut cursor = LineCursor::new(reader);

    // Header: the first non-comment, non-blank line.
    let mut header: Option<(usize, usize, bool, bool, bool, usize)> = None;
    let mut last_line = 0usize;
    while let Some((line, text)) = cursor.next_line()? {
        last_line = line;
        if text.is_empty() || text.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        if toks.len() < 2 || toks.len() > 4 {
            return Err(MetisError::BadHeader {
                line,
                text: text.into(),
            });
        }
        let count = |tok: &str| -> Result<usize, MetisError> {
            if is_overflowing_count(tok) {
                return Err(MetisError::HeaderOverflow {
                    line,
                    text: text.into(),
                });
            }
            tok.parse().map_err(|_| MetisError::BadHeader {
                line,
                text: text.into(),
            })
        };
        let n = count(toks[0])?;
        let m = count(toks[1])?;
        if n > MAX_DECLARED_VERTICES {
            return Err(MetisError::HeaderOverflow {
                line,
                text: text.into(),
            });
        }
        // fmt: up to three digits [vertex-size][vertex-weights][edge-weights],
        // left-zero-padded ("1" means edge weights only).
        let (has_sizes, has_vweights, has_eweights) = match toks.get(2) {
            None => (false, false, false),
            Some(f) => {
                if f.is_empty() || f.len() > 3 || !f.bytes().all(|b| b == b'0' || b == b'1') {
                    return Err(MetisError::BadFormatFlag {
                        line,
                        text: text.into(),
                    });
                }
                let padded = format!("{f:0>3}");
                let bit = |i: usize| padded.as_bytes()[i] == b'1';
                (bit(0), bit(1), bit(2))
            }
        };
        let ncon = match toks.get(3) {
            None => {
                if has_vweights {
                    1
                } else {
                    0
                }
            }
            Some(t) => count(t)?,
        };
        limits
            .check_vertices(line, n)
            .map_err(MetisError::TooLarge)?;
        // METIS files store each undirected edge in both lists, so the
        // stored directed count is 2m already.
        limits
            .check_edges(line, m.saturating_mul(2))
            .map_err(MetisError::TooLarge)?;
        header = Some((n, m, has_sizes, has_vweights, has_eweights, ncon));
        break;
    }
    let Some((n, m, has_sizes, has_vweights, has_eweights, ncon)) = header else {
        return Err(MetisError::MissingHeader { line: last_line });
    };

    let mut b = CsrBuilder::with_capacity(n, m.saturating_mul(2).min(RESERVE_CAP));
    let mut vertex = 0usize;
    while let Some((line, text)) = cursor.next_line()? {
        last_line = line;
        if text.starts_with('%') {
            continue;
        }
        if vertex >= n {
            // n adjacency lines already consumed: only blank trailers pass.
            if text.is_empty() {
                continue;
            }
            return Err(MetisError::BadEntry {
                line,
                text: format!("junk after {n} adjacency lines: {text:?}"),
            });
        }
        let u = vertex as VertexId;
        vertex += 1;
        let toks: Vec<&str> = text.split_whitespace().collect();
        let skip = usize::from(has_sizes) + if has_vweights { ncon.max(1) } else { 0 };
        if toks.len() < skip {
            return Err(MetisError::BadEntry {
                line,
                text: text.into(),
            });
        }
        let adj = &toks[skip..];
        if has_eweights && !adj.len().is_multiple_of(2) {
            return Err(MetisError::BadEntry {
                line,
                text: text.into(),
            });
        }
        let step = if has_eweights { 2 } else { 1 };
        for pair in adj.chunks(step) {
            let id: usize = pair[0].parse().map_err(|_| MetisError::BadEntry {
                line,
                text: text.into(),
            })?;
            if id == 0 || id > n {
                return Err(MetisError::VertexOutOfRange { line, id, n });
            }
            if has_eweights {
                // Weight token must at least be numeric.
                let _: i64 = pair[1].parse().map_err(|_| MetisError::BadEntry {
                    line,
                    text: text.into(),
                })?;
            }
            b.add_edge(u, (id - 1) as VertexId);
            limits
                .check_edges(line, b.raw_edge_count())
                .map_err(MetisError::TooLarge)?;
        }
    }
    if vertex < n {
        return Err(MetisError::TruncatedData {
            line: last_line,
            expected: n,
            got: vertex,
        });
    }
    // Symmetrize: conforming files mirror every entry (dedup absorbs the
    // duplicates), one-sided files still come out undirected.
    Ok(b.symmetrize().build())
}

/// Writes `g` in plain METIS format (no weights, mirror entries in both
/// lists, 1-based).
pub fn write_metis<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "% written by gcol-graph")?;
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges() / 2)?;
    for v in 0..g.num_vertices() {
        let mut first = true;
        for &u in g.neighbors(v as VertexId) {
            if first {
                write!(w, "{}", u + 1)?;
                first = false;
            } else {
                write!(w, " {}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Csr, MetisError> {
        read_metis(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_the_manual_example_shape() {
        // A path 1-2-3 plus an isolated vertex 4 (empty adjacency line).
        let g = parse("% tiny\n4 2\n2\n1 3\n2\n\n").unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(3), 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn parses_weighted_variants() {
        // fmt=011: one vertex weight (ncon default 1) + edge weights.
        let g = parse("3 2 011\n7 2 10 3 20\n5 1 10\n9 1 20\n").unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        // fmt=1 (edge weights only, left-padded semantics).
        let g = parse("2 1 1\n2 42\n1 42\n").unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        // fmt=100 with vertex sizes.
        let g = parse("2 1 100\n3 2\n3 1\n").unwrap();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn symmetrizes_one_sided_files() {
        let g = parse("3 2\n2 3\n\n\n").unwrap();
        assert!(g.is_symmetric());
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(parse(""), Err(MetisError::MissingHeader { .. })));
        assert!(matches!(
            parse("% only comments\n% here\n"),
            Err(MetisError::MissingHeader { line: 2 })
        ));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse("3\n"),
            Err(MetisError::BadHeader { line: 1, .. })
        ));
        assert!(matches!(
            parse("three two\n"),
            Err(MetisError::BadHeader { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_overflow_header() {
        assert!(matches!(
            parse("99999999999999999999999999 1\n"),
            Err(MetisError::HeaderOverflow { line: 1, .. })
        ));
        assert!(matches!(
            parse("9999999999 1\n"),
            Err(MetisError::HeaderOverflow { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_bad_format_flag() {
        assert!(matches!(
            parse("2 1 017\n2\n1\n"),
            Err(MetisError::BadFormatFlag { line: 1, .. })
        ));
        assert!(matches!(
            parse("2 1 0011\n2\n1\n"),
            Err(MetisError::BadFormatFlag { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        assert!(matches!(
            parse("2 1\n2\n9\n"),
            Err(MetisError::VertexOutOfRange {
                line: 3,
                id: 9,
                n: 2
            })
        ));
        assert!(matches!(
            parse("2 1\n0\n\n"),
            Err(MetisError::VertexOutOfRange { line: 2, id: 0, .. })
        ));
    }

    #[test]
    fn rejects_truncated_data() {
        assert!(matches!(
            parse("3 2\n2\n1 3\n"),
            Err(MetisError::TruncatedData {
                line: 3,
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn rejects_junk_mid_stream() {
        assert!(matches!(
            parse("2 1\n2\nxyzzy\n"),
            Err(MetisError::BadEntry { line: 3, .. })
        ));
        assert!(matches!(
            parse("2 1\n2\n1\n1 2\n"),
            Err(MetisError::BadEntry { line: 4, .. })
        ));
        // Odd token count with edge weights.
        assert!(matches!(
            parse("2 1 1\n2 42\n1\n"),
            Err(MetisError::BadEntry { line: 3, .. })
        ));
    }

    #[test]
    fn enforces_limits() {
        let limits = IngestLimits {
            max_vertices: Some(2),
            max_edges: None,
        };
        let err =
            read_metis_bounded(BufReader::new("3 2\n2\n1 3\n2\n".as_bytes()), &limits).unwrap_err();
        assert!(matches!(
            err,
            MetisError::TooLarge(LimitExceeded {
                line: 1,
                vertices: 3,
                ..
            })
        ));
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::simple::erdos_renyi(30, 90, 4);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g.content_fingerprint(), g2.content_fingerprint());
    }
}

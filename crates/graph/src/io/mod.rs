//! Graph IO: MatrixMarket (the format the University of Florida collection
//! ships), DIMACS `.col` (the coloring community's benchmark format) and
//! plain edge lists. Having the real loaders means the benchmark
//! suite can run on the paper's actual matrices when they are available,
//! falling back to structural stand-ins otherwise.

pub mod dimacs;
pub mod edgelist;
pub mod mtx;

pub use dimacs::{read_dimacs, write_dimacs, DimacsError};
pub use edgelist::{read_edge_list, write_edge_list};
pub use mtx::{read_matrix_market, write_matrix_market, MtxError};

//! Graph ingest: a streaming, bounded-memory loader for the formats real
//! graphs arrive in — MatrixMarket (the format the SuiteSparse/University
//! of Florida collection ships), DIMACS `.col` (the coloring community's
//! benchmark format), METIS `.graph` adjacency files and plain edge
//! lists.
//!
//! Every reader parses from any [`BufRead`] in a single forward pass
//! through a reusable line buffer — memory is `O(edges buffered in the
//! builder)`, never `O(input bytes)` and never per-line allocations — and
//! reports failures as typed, line-accurate errors ([`MtxError`],
//! [`DimacsError`], [`MetisError`], [`EdgeListError`]) so callers can
//! distinguish a truncated download from an overflow-sized header from
//! junk mid-stream. [`IngestLimits`] bounds are enforced *during* the
//! parse (on the declared header sizes and on the running edge count), so
//! an oversized or adversarial input is rejected before its memory is
//! ever committed.
//!
//! [`GraphSource`] is the unified entry point: pick (or sniff) a
//! [`GraphFormat`], optionally attach limits, and read into a
//! fingerprint-stable [`Csr`] — relabeling is deterministic (1-based
//! input ids map to 0-based dense ids in declaration order), so the same
//! bytes always produce the same [`Csr::content_fingerprint`], which is
//! what lets the serving layer's result cache key uploaded graphs exactly
//! like generated ones.

pub mod dimacs;
pub mod edgelist;
pub mod metis;
pub mod mtx;

pub use dimacs::{read_dimacs, write_dimacs, DimacsError};
pub use edgelist::{read_edge_list, write_edge_list, EdgeListError};
pub use metis::{read_metis, write_metis, MetisError};
pub use mtx::{read_matrix_market, write_matrix_market, write_matrix_market_symmetric, MtxError};

use crate::csr::Csr;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// The graph file formats the ingest layer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphFormat {
    /// MatrixMarket coordinate format (`.mtx`).
    MatrixMarket,
    /// DIMACS graph-coloring format (`.col`).
    Dimacs,
    /// METIS adjacency format (`.graph` / `.metis`).
    Metis,
    /// Plain whitespace-separated edge list, 0-based ids.
    EdgeList,
}

impl GraphFormat {
    /// All formats, in sniffing order.
    pub const ALL: [GraphFormat; 4] = [
        GraphFormat::MatrixMarket,
        GraphFormat::Dimacs,
        GraphFormat::Metis,
        GraphFormat::EdgeList,
    ];

    /// The canonical wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphFormat::MatrixMarket => "mtx",
            GraphFormat::Dimacs => "dimacs",
            GraphFormat::Metis => "metis",
            GraphFormat::EdgeList => "edgelist",
        }
    }

    /// Parses a format name (the wire names plus common aliases and
    /// file extensions).
    pub fn parse(name: &str) -> Option<GraphFormat> {
        match name.to_ascii_lowercase().as_str() {
            "mtx" | "matrixmarket" | "matrix-market" => Some(GraphFormat::MatrixMarket),
            "dimacs" | "col" => Some(GraphFormat::Dimacs),
            "metis" | "graph" => Some(GraphFormat::Metis),
            "edgelist" | "edges" | "el" | "txt" => Some(GraphFormat::EdgeList),
            _ => None,
        }
    }

    /// Guesses the format from a file path's extension.
    pub fn from_path(path: &Path) -> Option<GraphFormat> {
        path.extension()
            .and_then(|e| e.to_str())
            .and_then(GraphFormat::parse)
    }

    /// Sniffs the format from the first non-blank line of the content.
    ///
    /// `%%MatrixMarket` banners, DIMACS `c`/`p` directives and `#`
    /// edge-list comments are unambiguous. A bare numeric line could open
    /// either a METIS file or a 0-based edge list — that case returns
    /// `None` and the caller must say which it meant (file loading
    /// resolves it by extension first).
    pub fn sniff(content: &str) -> Option<GraphFormat> {
        let first = content.lines().map(str::trim).find(|l| !l.is_empty())?;
        if first.to_ascii_lowercase().starts_with("%%matrixmarket") {
            return Some(GraphFormat::MatrixMarket);
        }
        if first.starts_with("c ") || first == "c" || first.starts_with("p ") {
            return Some(GraphFormat::Dimacs);
        }
        if first.starts_with('#') {
            return Some(GraphFormat::EdgeList);
        }
        // '%' comments open both MatrixMarket bodies (never without the
        // banner) and METIS files; treat them as METIS.
        if first.starts_with('%') {
            return Some(GraphFormat::Metis);
        }
        None
    }
}

impl fmt::Display for GraphFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for GraphFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GraphFormat::parse(s).ok_or_else(|| {
            format!("unknown graph format {s:?} (known: mtx, dimacs, metis, edgelist)")
        })
    }
}

/// Admission bounds enforced *while* parsing: the declared header sizes
/// and the running streamed edge count are checked against these, so an
/// oversized input fails fast with a typed `TooLarge` error instead of
/// committing memory first. The edge bound counts *stored directed*
/// edges, conservatively estimated as twice the raw undirected count
/// (the symmetrized pre-dedup upper bound).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestLimits {
    /// Maximum vertex count, if bounded.
    pub max_vertices: Option<usize>,
    /// Maximum stored directed edge count, if bounded.
    pub max_edges: Option<usize>,
}

impl IngestLimits {
    /// No bounds: parse anything.
    pub const NONE: IngestLimits = IngestLimits {
        max_vertices: None,
        max_edges: None,
    };

    /// Checks a vertex count; `Err` carries the violated bound.
    pub(crate) fn check_vertices(&self, line: usize, n: usize) -> Result<(), LimitExceeded> {
        match self.max_vertices {
            Some(b) if n > b => Err(LimitExceeded {
                line,
                vertices: n,
                edges: 0,
                max_vertices: Some(b),
                max_edges: None,
            }),
            _ => Ok(()),
        }
    }

    /// Checks a (directed) edge count; `Err` carries the violated bound.
    pub(crate) fn check_edges(&self, line: usize, m: usize) -> Result<(), LimitExceeded> {
        match self.max_edges {
            Some(b) if m > b => Err(LimitExceeded {
                line,
                vertices: 0,
                edges: m,
                max_vertices: None,
                max_edges: Some(b),
            }),
            _ => Ok(()),
        }
    }
}

/// A parse aborted because the input exceeded its [`IngestLimits`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitExceeded {
    /// 1-based line at which the bound tripped.
    pub line: usize,
    /// The offending vertex count (0 if the edge bound tripped).
    pub vertices: usize,
    /// The offending directed edge count (0 if the vertex bound tripped).
    pub edges: usize,
    /// The violated vertex bound, if that is what tripped.
    pub max_vertices: Option<usize>,
    /// The violated edge bound, if that is what tripped.
    pub max_edges: Option<usize>,
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.max_vertices, self.max_edges) {
            (Some(b), _) => write!(
                f,
                "graph too large at line {}: {} vertices exceeds the bound {}",
                self.line, self.vertices, b
            ),
            (_, Some(b)) => write!(
                f,
                "graph too large at line {}: {} directed edges exceeds the bound {}",
                self.line, self.edges, b
            ),
            _ => write!(f, "graph too large at line {}", self.line),
        }
    }
}

/// Any ingest failure, across formats: the unified error the
/// [`GraphSource`] entry points return.
#[derive(Debug)]
pub enum IoError {
    /// MatrixMarket parse failure.
    Mtx(MtxError),
    /// DIMACS parse failure.
    Dimacs(DimacsError),
    /// METIS parse failure.
    Metis(MetisError),
    /// Edge-list parse failure.
    EdgeList(EdgeListError),
    /// The format could not be determined (no extension, ambiguous
    /// content).
    // gcol-lint: allow(io-error-line) — sniffing fails before any line is read
    UnknownFormat {
        /// What was inspected (a path, or a content description).
        hint: String,
    },
    /// Underlying IO failure while opening/sniffing.
    Io(std::io::Error),
}

impl IoError {
    /// The limit violation, if this error is a bound rejection —
    /// the serving layer maps exactly these to admission rejections.
    pub fn limit_exceeded(&self) -> Option<&LimitExceeded> {
        match self {
            IoError::Mtx(MtxError::TooLarge(l))
            | IoError::Dimacs(DimacsError::TooLarge(l))
            | IoError::Metis(MetisError::TooLarge(l))
            | IoError::EdgeList(EdgeListError::TooLarge(l)) => Some(l),
            _ => None,
        }
    }

    /// The 1-based input line the failure is anchored to, when the
    /// error variant carries one.
    pub fn line(&self) -> Option<usize> {
        match self {
            IoError::Mtx(e) => e.line(),
            IoError::Dimacs(e) => e.line(),
            IoError::Metis(e) => e.line(),
            IoError::EdgeList(e) => e.line(),
            _ => None,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Mtx(e) => write!(f, "mtx: {e}"),
            IoError::Dimacs(e) => write!(f, "dimacs: {e}"),
            IoError::Metis(e) => write!(f, "metis: {e}"),
            IoError::EdgeList(e) => write!(f, "edgelist: {e}"),
            IoError::UnknownFormat { hint } => {
                write!(f, "cannot determine graph format of {hint}")
            }
            IoError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<MtxError> for IoError {
    fn from(e: MtxError) -> Self {
        IoError::Mtx(e)
    }
}
impl From<DimacsError> for IoError {
    fn from(e: DimacsError) -> Self {
        IoError::Dimacs(e)
    }
}
impl From<MetisError> for IoError {
    fn from(e: MetisError) -> Self {
        IoError::Metis(e)
    }
}
impl From<EdgeListError> for IoError {
    fn from(e: EdgeListError) -> Self {
        IoError::EdgeList(e)
    }
}

/// A format + limits pair: the unified, bounded-memory graph reader.
///
/// ```
/// use gcol_graph::io::{GraphFormat, GraphSource, IngestLimits};
/// let text = "p edge 3 2\ne 1 2\ne 2 3\n";
/// let g = GraphSource::new(GraphFormat::Dimacs)
///     .with_limits(IngestLimits { max_vertices: Some(100), max_edges: Some(100) })
///     .read(text.as_bytes())
///     .unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GraphSource {
    format: GraphFormat,
    limits: IngestLimits,
}

impl GraphSource {
    /// A source for `format` with no size bounds.
    pub fn new(format: GraphFormat) -> Self {
        Self {
            format,
            limits: IngestLimits::NONE,
        }
    }

    /// Attaches parse-time admission bounds.
    pub fn with_limits(mut self, limits: IngestLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The source's format.
    pub fn format(&self) -> GraphFormat {
        self.format
    }

    /// Streams `reader` into a CSR graph, enforcing the limits during
    /// the parse.
    pub fn read<R: BufRead>(&self, reader: R) -> Result<Csr, IoError> {
        match self.format {
            GraphFormat::MatrixMarket => Ok(mtx::read_matrix_market_bounded(reader, &self.limits)?),
            GraphFormat::Dimacs => Ok(dimacs::read_dimacs_bounded(reader, &self.limits)?),
            GraphFormat::Metis => Ok(metis::read_metis_bounded(reader, &self.limits)?),
            GraphFormat::EdgeList => Ok(edgelist::read_edge_list_bounded(
                reader,
                None,
                &self.limits,
            )?),
        }
    }

    /// Opens a file, resolving the format from its extension or — when
    /// the extension says nothing — by sniffing the first line.
    pub fn open(
        path: impl AsRef<Path>,
        limits: IngestLimits,
    ) -> Result<(GraphFormat, Csr), IoError> {
        let path = path.as_ref();
        let format = match GraphFormat::from_path(path) {
            Some(f) => f,
            None => {
                let head = read_head(path).map_err(IoError::Io)?;
                GraphFormat::sniff(&head).ok_or_else(|| IoError::UnknownFormat {
                    hint: path.display().to_string(),
                })?
            }
        };
        let file = std::fs::File::open(path).map_err(IoError::Io)?;
        let g = GraphSource::new(format)
            .with_limits(limits)
            .read(std::io::BufReader::new(file))?;
        Ok((format, g))
    }
}

/// Reads up to the first 4 KiB of a file for format sniffing.
fn read_head(path: &Path) -> std::io::Result<String> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let mut buf = [0u8; 4096];
    let n = f.read(&mut buf)?;
    Ok(String::from_utf8_lossy(&buf[..n]).into_owned())
}

/// Streams lines out of a reader through one reusable buffer: the
/// shared scaffolding that keeps every parser allocation-free per line.
/// Yields `(1-based line number, trimmed text)`.
pub(crate) struct LineCursor<R> {
    reader: R,
    buf: String,
    line: usize,
}

impl<R: BufRead> LineCursor<R> {
    pub(crate) fn new(reader: R) -> Self {
        Self {
            reader,
            buf: String::new(),
            line: 0,
        }
    }

    /// The next line, or `None` at EOF. The returned text borrows the
    /// internal buffer, so it lives until the next call.
    pub(crate) fn next_line(&mut self) -> std::io::Result<Option<(usize, &str)>> {
        self.buf.clear();
        if self.reader.read_line(&mut self.buf)? == 0 {
            return Ok(None);
        }
        self.line += 1;
        Ok(Some((self.line, self.buf.trim())))
    }
}

/// Distinguishes an all-digit token that merely overflows `usize`/`u32`
/// from outright junk — the former gets the typed `HeaderOverflow`
/// treatment, the latter a bad-entry error.
pub(crate) fn is_overflowing_count(tok: &str) -> bool {
    !tok.is_empty() && tok.bytes().all(|b| b.is_ascii_digit()) && tok.parse::<usize>().is_err()
}

/// Vertex counts must leave headroom for u32 vertex ids (the CSR
/// substrate's id type); a header that claims more is treated as an
/// overflow, not an allocation request.
pub(crate) const MAX_DECLARED_VERTICES: usize = (u32::MAX - 1) as usize;

/// Cap on builder pre-reservation from header-declared sizes: a lying
/// header must not be able to commit memory the actual entries never
/// justify. Real entries still grow the builder past this amortized.
pub(crate) const RESERVE_CAP: usize = 1 << 22;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_round_trip() {
        for f in GraphFormat::ALL {
            assert_eq!(GraphFormat::parse(f.name()), Some(f));
            assert_eq!(f.name().parse::<GraphFormat>().unwrap(), f);
        }
        assert!(GraphFormat::parse("nope").is_none());
        assert!("nope".parse::<GraphFormat>().is_err());
    }

    #[test]
    fn extension_resolution() {
        let f = |p: &str| GraphFormat::from_path(Path::new(p));
        assert_eq!(f("a/b/thermal2.mtx"), Some(GraphFormat::MatrixMarket));
        assert_eq!(f("myciel3.col"), Some(GraphFormat::Dimacs));
        assert_eq!(f("mesh.graph"), Some(GraphFormat::Metis));
        assert_eq!(f("mesh.metis"), Some(GraphFormat::Metis));
        assert_eq!(f("web.edges"), Some(GraphFormat::EdgeList));
        assert_eq!(f("noext"), None);
    }

    #[test]
    fn content_sniffing() {
        assert_eq!(
            GraphFormat::sniff("%%MatrixMarket matrix coordinate pattern general\n1 1 0\n"),
            Some(GraphFormat::MatrixMarket)
        );
        assert_eq!(
            GraphFormat::sniff("c a comment\np edge 2 1\ne 1 2\n"),
            Some(GraphFormat::Dimacs)
        );
        assert_eq!(
            GraphFormat::sniff("\n  p edge 2 1\ne 1 2\n"),
            Some(GraphFormat::Dimacs)
        );
        assert_eq!(
            GraphFormat::sniff("# snap-style comment\n0 1\n"),
            Some(GraphFormat::EdgeList)
        );
        assert_eq!(
            GraphFormat::sniff("% metis comment\n3 2\n2\n1 3\n2\n"),
            Some(GraphFormat::Metis)
        );
        // Bare numbers are ambiguous (METIS header vs 0-based edge).
        assert_eq!(GraphFormat::sniff("3 2\n"), None);
        assert_eq!(GraphFormat::sniff(""), None);
    }

    #[test]
    fn source_reads_every_format() {
        // The same triangle in all four formats.
        let cases: [(GraphFormat, &str); 4] = [
            (
                GraphFormat::MatrixMarket,
                "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n2 1\n3 1\n3 2\n",
            ),
            (GraphFormat::Dimacs, "p edge 3 3\ne 1 2\ne 2 3\ne 3 1\n"),
            (GraphFormat::Metis, "3 3\n2 3\n1 3\n1 2\n"),
            (GraphFormat::EdgeList, "0 1\n1 2\n2 0\n"),
        ];
        let mut fps = Vec::new();
        for (fmt, text) in cases {
            let g = GraphSource::new(fmt).read(text.as_bytes()).unwrap();
            assert_eq!(g.num_vertices(), 3, "{fmt}");
            assert_eq!(g.num_edges(), 6, "{fmt}");
            fps.push(g.content_fingerprint());
        }
        assert!(
            fps.windows(2).all(|w| w[0] == w[1]),
            "identical graphs must fingerprint identically across formats"
        );
    }

    #[test]
    fn limits_are_enforced_per_format() {
        let tight = IngestLimits {
            max_vertices: Some(2),
            max_edges: Some(2),
        };
        let cases: [(GraphFormat, &str); 4] = [
            (
                GraphFormat::MatrixMarket,
                "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n2 1\n3 1\n3 2\n",
            ),
            (GraphFormat::Dimacs, "p edge 3 3\ne 1 2\ne 2 3\ne 3 1\n"),
            (GraphFormat::Metis, "3 3\n2 3\n1 3\n1 2\n"),
            (GraphFormat::EdgeList, "0 1\n1 2\n2 0\n"),
        ];
        for (fmt, text) in cases {
            let err = GraphSource::new(fmt)
                .with_limits(tight)
                .read(text.as_bytes())
                .unwrap_err();
            assert!(
                err.limit_exceeded().is_some(),
                "{fmt}: expected a limit rejection, got {err}"
            );
        }
    }

    #[test]
    fn overflow_detection() {
        assert!(is_overflowing_count("99999999999999999999999999"));
        assert!(!is_overflowing_count("17"));
        assert!(!is_overflowing_count("12x"));
        assert!(!is_overflowing_count(""));
    }
}

//! DIMACS graph-coloring format (`.col`): the standard interchange format
//! of the coloring-benchmark community (the DIMACS implementation
//! challenges). Lines are `c` comments, one `p edge <n> <m>` problem line,
//! and `e <u> <v>` edges with 1-based vertex ids.
//!
//! The reader streams edges straight into the [`CsrBuilder`]. Because
//! real `.col` files routinely under-declare `m`, the declared count is
//! not enforced — but an [`super::IngestLimits`] edge bound *is*, against
//! the running streamed count, so a lying header cannot smuggle an
//! oversized graph past admission.

use super::{
    is_overflowing_count, IngestLimits, LimitExceeded, LineCursor, MAX_DECLARED_VERTICES,
    RESERVE_CAP,
};
use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors while parsing a DIMACS `.col` stream.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// No `p edge <n> <m>` problem line before the first edge (or at all).
    MissingProblemLine {
        /// 1-based line of the first `e` line, or the last line read when
        /// the stream ended without any problem line.
        line: usize,
    },
    /// Two problem lines.
    DuplicateProblemLine {
        /// 1-based line number of the duplicate.
        line: usize,
    },
    /// A problem-line count overflows what this machine (or u32 vertex
    /// ids) can represent.
    HeaderOverflow {
        /// 1-based line number of the problem line.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unparsable line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A vertex id outside `1..=n`.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: usize,
        /// The declared vertex count.
        n: usize,
    },
    /// The input exceeds the caller's [`IngestLimits`].
    TooLarge(LimitExceeded),
}

impl DimacsError {
    /// The 1-based input line the error is anchored to, if any.
    pub fn line(&self) -> Option<usize> {
        match self {
            DimacsError::Io(_) => None,
            DimacsError::MissingProblemLine { line }
            | DimacsError::DuplicateProblemLine { line }
            | DimacsError::HeaderOverflow { line, .. }
            | DimacsError::BadLine { line, .. }
            | DimacsError::VertexOutOfRange { line, .. } => Some(*line),
            DimacsError::TooLarge(l) => Some(l.line),
        }
    }
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "io error: {e}"),
            DimacsError::MissingProblemLine { line } => {
                write!(f, "missing `p edge <n> <m>` problem line (at line {line})")
            }
            DimacsError::DuplicateProblemLine { line } => {
                write!(f, "duplicate problem line at line {line}")
            }
            DimacsError::HeaderOverflow { line, text } => {
                write!(f, "problem line overflows at line {line}: {text:?}")
            }
            DimacsError::BadLine { line, text } => {
                write!(f, "unparsable line {line}: {text:?}")
            }
            DimacsError::VertexOutOfRange { line, id, n } => {
                write!(f, "vertex {id} out of range 1..={n} at line {line}")
            }
            DimacsError::TooLarge(l) => write!(f, "{l}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<std::io::Error> for DimacsError {
    fn from(e: std::io::Error) -> Self {
        DimacsError::Io(e)
    }
}

/// Parses a DIMACS `.col` stream into a symmetric CSR graph (self loops
/// dropped, duplicate edges merged).
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<Csr, DimacsError> {
    read_dimacs_bounded(reader, &IngestLimits::NONE)
}

/// [`read_dimacs`] with parse-time admission bounds.
pub fn read_dimacs_bounded<R: BufRead>(
    reader: R,
    limits: &IngestLimits,
) -> Result<Csr, DimacsError> {
    let mut cursor = LineCursor::new(reader);
    let mut builder: Option<CsrBuilder> = None;
    let mut n = 0usize;
    let mut last_line = 0usize;
    while let Some((line, text)) = cursor.next_line()? {
        last_line = line;
        if text.is_empty() || text.starts_with('c') {
            continue;
        }
        let mut it = text.split_whitespace();
        match it.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(DimacsError::DuplicateProblemLine { line });
                }
                // Format name is typically "edge" (sometimes "col").
                let _format = it.next();
                let count = |tok: Option<&str>| -> Result<usize, DimacsError> {
                    let tok = tok.ok_or_else(|| DimacsError::BadLine {
                        line,
                        text: text.into(),
                    })?;
                    if is_overflowing_count(tok) {
                        return Err(DimacsError::HeaderOverflow {
                            line,
                            text: text.into(),
                        });
                    }
                    tok.parse().map_err(|_| DimacsError::BadLine {
                        line,
                        text: text.into(),
                    })
                };
                let (nn, mm) = (count(it.next())?, count(it.next())?);
                if nn > MAX_DECLARED_VERTICES {
                    return Err(DimacsError::HeaderOverflow {
                        line,
                        text: text.into(),
                    });
                }
                limits
                    .check_vertices(line, nn)
                    .map_err(DimacsError::TooLarge)?;
                limits
                    .check_edges(line, mm.saturating_mul(2))
                    .map_err(DimacsError::TooLarge)?;
                n = nn;
                builder = Some(CsrBuilder::with_capacity(
                    n,
                    mm.saturating_mul(2).min(RESERVE_CAP),
                ));
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or(DimacsError::MissingProblemLine { line })?;
                let parse = |s: Option<&str>| -> Result<usize, DimacsError> {
                    s.and_then(|x| x.parse().ok()).ok_or(DimacsError::BadLine {
                        line,
                        text: text.into(),
                    })
                };
                let u = parse(it.next())?;
                let v = parse(it.next())?;
                for id in [u, v] {
                    if id == 0 || id > n {
                        return Err(DimacsError::VertexOutOfRange { line, id, n });
                    }
                }
                b.add_edge((u - 1) as VertexId, (v - 1) as VertexId);
                // The declared m is advisory in the wild; the admission
                // bound is enforced against what actually streams in.
                limits
                    .check_edges(line, b.raw_edge_count().saturating_mul(2))
                    .map_err(DimacsError::TooLarge)?;
            }
            // Unknown directives (n = node lines with weights, x, d, …) are
            // tolerated, like most DIMACS readers.
            Some(_) => continue,
            None => continue,
        }
    }
    match builder {
        Some(mut b) => Ok(b.symmetrize().build()),
        None => Err(DimacsError::MissingProblemLine {
            line: last_line.max(1),
        }),
    }
}

/// Writes `g` as a DIMACS `.col` file (each undirected edge once).
pub fn write_dimacs<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "c written by gcol-graph")?;
    writeln!(w, "p edge {} {}", g.num_vertices(), g.num_edges() / 2)?;
    for (u, v) in g.edges() {
        if u < v {
            writeln!(w, "e {} {}", u + 1, v + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Csr, DimacsError> {
        read_dimacs(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_the_classic_example() {
        // myciel3-style header + a triangle.
        let g = parse(
            "c the odd cycle C3\n\
             p edge 3 3\n\
             e 1 2\n\
             e 2 3\n\
             e 3 1\n",
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
    }

    #[test]
    fn tolerates_unknown_directives_and_blank_lines() {
        let g = parse(
            "p edge 2 1\n\
             n 1 5\n\
             \n\
             e 1 2\n",
        )
        .unwrap();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn rejects_edge_before_problem_line() {
        assert!(matches!(
            parse("e 1 2\n"),
            Err(DimacsError::MissingProblemLine { line: 1 })
        ));
        assert!(matches!(
            parse(""),
            Err(DimacsError::MissingProblemLine { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_problem_line() {
        assert!(matches!(
            parse("p edge 2 0\np edge 3 0\n"),
            Err(DimacsError::DuplicateProblemLine { line: 2 })
        ));
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        assert!(matches!(
            parse("p edge 2 1\ne 1 5\n"),
            Err(DimacsError::VertexOutOfRange { line: 2, id: 5, .. })
        ));
        assert!(matches!(
            parse("p edge 2 1\ne 0 1\n"),
            Err(DimacsError::VertexOutOfRange { id: 0, .. })
        ));
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(matches!(
            parse("p edge x y\n"),
            Err(DimacsError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse("p edge 2 1\ne one two\n"),
            Err(DimacsError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_overflow_sized_header() {
        assert!(matches!(
            parse("p edge 99999999999999999999999999 1\n"),
            Err(DimacsError::HeaderOverflow { line: 1, .. })
        ));
        assert!(matches!(
            parse("p edge 9999999999 1\n"),
            Err(DimacsError::HeaderOverflow { line: 1, .. })
        ));
    }

    #[test]
    fn enforces_edge_limit_against_streamed_count_not_header() {
        // Header claims 1 edge but the body streams 3: the bound must
        // trip on what actually arrives.
        let limits = IngestLimits {
            max_vertices: None,
            max_edges: Some(4),
        };
        let err = read_dimacs_bounded(
            BufReader::new("p edge 4 1\ne 1 2\ne 2 3\ne 3 4\n".as_bytes()),
            &limits,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DimacsError::TooLarge(LimitExceeded {
                line: 4,
                edges: 6,
                ..
            })
        ));
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::simple::erdos_renyi(60, 200, 9);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn self_loops_dropped_duplicates_merged() {
        let g = parse(
            "p edge 3 4\n\
             e 1 1\n\
             e 1 2\n\
             e 2 1\n\
             e 2 3\n",
        )
        .unwrap();
        assert!(g.has_no_self_loops());
        assert_eq!(g.num_edges(), 4);
    }
}

//! DIMACS graph-coloring format (`.col`): the standard interchange format
//! of the coloring-benchmark community (the DIMACS implementation
//! challenges). Lines are `c` comments, one `p edge <n> <m>` problem line,
//! and `e <u> <v>` edges with 1-based vertex ids.

use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors while parsing a DIMACS `.col` stream.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// No `p edge` problem line before the first edge.
    MissingProblemLine,
    /// Two problem lines.
    DuplicateProblemLine {
        /// 1-based line number of the duplicate.
        line: usize,
    },
    /// An unparsable line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A vertex id outside `1..=n`.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: usize,
        /// The declared vertex count.
        n: usize,
    },
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "io error: {e}"),
            DimacsError::MissingProblemLine => {
                write!(f, "missing `p edge <n> <m>` problem line")
            }
            DimacsError::DuplicateProblemLine { line } => {
                write!(f, "duplicate problem line at line {line}")
            }
            DimacsError::BadLine { line, text } => {
                write!(f, "unparsable line {line}: {text:?}")
            }
            DimacsError::VertexOutOfRange { line, id, n } => {
                write!(f, "vertex {id} out of range 1..={n} at line {line}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<std::io::Error> for DimacsError {
    fn from(e: std::io::Error) -> Self {
        DimacsError::Io(e)
    }
}

/// Parses a DIMACS `.col` stream into a symmetric CSR graph (self loops
/// dropped, duplicate edges merged).
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<Csr, DimacsError> {
    let mut builder: Option<CsrBuilder> = None;
    let mut n = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('c') {
            continue;
        }
        let mut it = text.split_whitespace();
        match it.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(DimacsError::DuplicateProblemLine { line: idx + 1 });
                }
                // Format name is typically "edge" (sometimes "col").
                let _format = it.next();
                let parse = |s: Option<&str>| -> Option<usize> { s.and_then(|x| x.parse().ok()) };
                let (nn, mm) = match (parse(it.next()), parse(it.next())) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(DimacsError::BadLine {
                            line: idx + 1,
                            text: text.into(),
                        })
                    }
                };
                n = nn;
                builder = Some(CsrBuilder::with_capacity(n, mm * 2));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or(DimacsError::MissingProblemLine)?;
                let parse = |s: Option<&str>| -> Result<usize, DimacsError> {
                    s.and_then(|x| x.parse().ok()).ok_or(DimacsError::BadLine {
                        line: idx + 1,
                        text: text.into(),
                    })
                };
                let u = parse(it.next())?;
                let v = parse(it.next())?;
                for id in [u, v] {
                    if id == 0 || id > n {
                        return Err(DimacsError::VertexOutOfRange {
                            line: idx + 1,
                            id,
                            n,
                        });
                    }
                }
                b.add_edge((u - 1) as VertexId, (v - 1) as VertexId);
            }
            // Unknown directives (n = node lines with weights, x, d, …) are
            // tolerated, like most DIMACS readers.
            Some(_) => continue,
            None => continue,
        }
    }
    match builder {
        Some(mut b) => Ok(b.symmetrize().build()),
        None => Err(DimacsError::MissingProblemLine),
    }
}

/// Writes `g` as a DIMACS `.col` file (each undirected edge once).
pub fn write_dimacs<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "c written by gcol-graph")?;
    writeln!(w, "p edge {} {}", g.num_vertices(), g.num_edges() / 2)?;
    for (u, v) in g.edges() {
        if u < v {
            writeln!(w, "e {} {}", u + 1, v + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Csr, DimacsError> {
        read_dimacs(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_the_classic_example() {
        // myciel3-style header + a triangle.
        let g = parse(
            "c the odd cycle C3\n\
             p edge 3 3\n\
             e 1 2\n\
             e 2 3\n\
             e 3 1\n",
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
    }

    #[test]
    fn tolerates_unknown_directives_and_blank_lines() {
        let g = parse(
            "p edge 2 1\n\
             n 1 5\n\
             \n\
             e 1 2\n",
        )
        .unwrap();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn rejects_edge_before_problem_line() {
        assert!(matches!(
            parse("e 1 2\n"),
            Err(DimacsError::MissingProblemLine)
        ));
        assert!(matches!(parse(""), Err(DimacsError::MissingProblemLine)));
    }

    #[test]
    fn rejects_duplicate_problem_line() {
        assert!(matches!(
            parse("p edge 2 0\np edge 3 0\n"),
            Err(DimacsError::DuplicateProblemLine { line: 2 })
        ));
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        assert!(matches!(
            parse("p edge 2 1\ne 1 5\n"),
            Err(DimacsError::VertexOutOfRange { id: 5, .. })
        ));
        assert!(matches!(
            parse("p edge 2 1\ne 0 1\n"),
            Err(DimacsError::VertexOutOfRange { id: 0, .. })
        ));
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(matches!(
            parse("p edge x y\n"),
            Err(DimacsError::BadLine { .. })
        ));
        assert!(matches!(
            parse("p edge 2 1\ne one two\n"),
            Err(DimacsError::BadLine { .. })
        ));
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::simple::erdos_renyi(60, 200, 9);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn self_loops_dropped_duplicates_merged() {
        let g = parse(
            "p edge 3 4\n\
             e 1 1\n\
             e 1 2\n\
             e 2 1\n\
             e 2 3\n",
        )
        .unwrap();
        assert!(g.has_no_self_loops());
        assert_eq!(g.num_edges(), 4);
    }
}

//! Edge-batch mutation of CSR graphs.
//!
//! The serving layer mutates graphs (edge inserts and deletes) and wants
//! to *repair* the existing coloring instead of recoloring from scratch,
//! so [`Csr::apply_edits`] applies a batch of undirected edits and
//! reports exactly the **touched vertices** — the endpoints whose
//! adjacency actually changed — which is the dirty set the repair engine
//! consumes.
//!
//! The mutation is **fingerprint-stable**: the rebuilt CSR is
//! byte-identical to building a fresh graph from the post-edit edge set
//! with [`crate::builder::CsrBuilder`] (sorted, duplicate-free,
//! symmetric adjacency, same `R`/`C` layout), so
//! [`Csr::content_fingerprint`] — the service cache key — agrees no
//! matter whether a graph arrived at its edge set by construction or by
//! edits. The proptests in `tests/proptests.rs` pin this equivalence.

use crate::csr::{Csr, CsrError, VertexId};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One undirected edge edit. Both directions of the edge are affected:
/// inserting `(u, v)` stores `v` in `u`'s adjacency *and* `u` in `v`'s,
/// preserving the symmetric-CSR invariant every scheme relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeEdit {
    /// Add the undirected edge `{u, v}`. Inserting an edge that already
    /// exists is a no-op (and touches neither endpoint).
    Insert(VertexId, VertexId),
    /// Remove the undirected edge `{u, v}`. Deleting a missing edge is a
    /// no-op (and touches neither endpoint).
    Delete(VertexId, VertexId),
}

impl EdgeEdit {
    /// The edit's endpoints, in the order given.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeEdit::Insert(u, v) | EdgeEdit::Delete(u, v) => (u, v),
        }
    }
}

/// Why an edit batch was rejected. Validation happens before any
/// mutation, so a rejected batch leaves the graph untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditError {
    /// An endpoint was `>= num_vertices` (edits cannot grow the vertex
    /// set; size the graph up front).
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        n: usize,
    },
    /// Both endpoints were the same vertex; the CSR invariants exclude
    /// self-loops.
    SelfLoop(VertexId),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::VertexOutOfRange { vertex, n } => {
                write!(f, "edit endpoint {vertex} out of range (n = {n})")
            }
            EditError::SelfLoop(v) => write!(f, "self-loop edit on vertex {v}"),
        }
    }
}

impl std::error::Error for EditError {}

impl Csr {
    /// Applies a batch of undirected edge edits in order and returns the
    /// **touched vertices** (ascending, duplicate-free): the endpoints
    /// whose adjacency actually changed. Redundant edits — inserting a
    /// present edge, deleting an absent one, or an insert/delete pair
    /// that cancels out within the batch — touch nothing.
    ///
    /// The whole batch is validated first; on [`EditError`] the graph is
    /// left untouched. The rebuilt CSR keeps every structural invariant
    /// (sorted unique symmetric adjacency) and is byte-identical to a
    /// fresh [`crate::builder::CsrBuilder`] build of the post-edit edge
    /// set, so content fingerprints are path-independent.
    pub fn apply_edits(&mut self, edits: &[EdgeEdit]) -> Result<Vec<VertexId>, EditError> {
        let n = self.num_vertices();
        for e in edits {
            let (u, v) = e.endpoints();
            for w in [u, v] {
                if w as usize >= n {
                    return Err(EditError::VertexOutOfRange { vertex: w, n });
                }
            }
            if u == v {
                return Err(EditError::SelfLoop(u));
            }
        }

        // Materialize a sorted-set view of each row an edit names, apply
        // the batch in order, then compare against the original row to
        // decide whether the vertex was genuinely touched.
        let mut rows: BTreeMap<VertexId, BTreeSet<VertexId>> = BTreeMap::new();
        let row = |g: &Csr, rows: &mut BTreeMap<VertexId, BTreeSet<VertexId>>, v: VertexId| {
            if let Entry::Vacant(slot) = rows.entry(v) {
                slot.insert(g.neighbors(v).iter().copied().collect());
            }
        };
        for e in edits {
            let (u, v) = e.endpoints();
            row(self, &mut rows, u);
            row(self, &mut rows, v);
            match *e {
                EdgeEdit::Insert(u, v) => {
                    rows.get_mut(&u).unwrap().insert(v);
                    rows.get_mut(&v).unwrap().insert(u);
                }
                EdgeEdit::Delete(u, v) => {
                    rows.get_mut(&u).unwrap().remove(&v);
                    rows.get_mut(&v).unwrap().remove(&u);
                }
            }
        }
        let touched: Vec<VertexId> = rows
            .iter()
            .filter(|(&v, set)| {
                set.len() != self.degree(v)
                    || !set.iter().copied().eq(self.neighbors(v).iter().copied())
            })
            .map(|(&v, _)| v)
            .collect();
        if touched.is_empty() {
            return Ok(touched);
        }

        // Rebuild R/C, splicing the edited rows in; untouched rows are
        // copied verbatim, so the result is exactly what a fresh build of
        // the post-edit edge set would produce.
        let mut new_r = Vec::with_capacity(n + 1);
        new_r.push(0u32);
        let mut new_c: Vec<VertexId> = Vec::with_capacity(self.num_edges());
        for v in 0..n as VertexId {
            match rows.get(&v) {
                Some(set) => new_c.extend(set.iter().copied()),
                None => new_c.extend_from_slice(self.neighbors(v)),
            }
            new_r.push(new_c.len() as u32);
        }
        *self = Csr::try_new(new_r, new_c)
            .unwrap_or_else(|e: CsrError| unreachable!("apply_edits produced an invalid CSR: {e}"));
        Ok(touched)
    }

    /// Non-mutating variant of [`Csr::apply_edits`]: returns the edited
    /// graph and its touched-vertex set, leaving `self` alone.
    pub fn with_edits(&self, edits: &[EdgeEdit]) -> Result<(Csr, Vec<VertexId>), EditError> {
        let mut g = self.clone();
        let touched = g.apply_edits(edits)?;
        Ok((g, touched))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-vertex example of the paper's Fig. 2.
    fn fig2_graph() -> Csr {
        Csr::new(
            vec![0, 2, 6, 9, 11, 14],
            vec![1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3],
        )
    }

    #[test]
    fn insert_adds_both_directions_and_reports_endpoints() {
        let mut g = fig2_graph();
        let touched = g.apply_edits(&[EdgeEdit::Insert(0, 3)]).unwrap();
        assert_eq!(touched, vec![0, 3]);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        assert_eq!(g.num_edges(), 16);
        g.validate().unwrap();
        assert!(g.is_symmetric());
        assert!(g.has_sorted_unique_neighbors());
    }

    #[test]
    fn delete_removes_both_directions() {
        let mut g = fig2_graph();
        let touched = g.apply_edits(&[EdgeEdit::Delete(1, 4)]).unwrap();
        assert_eq!(touched, vec![1, 4]);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(4), &[2, 3]);
        assert_eq!(g.num_edges(), 12);
        assert!(g.is_symmetric());
    }

    #[test]
    fn redundant_edits_touch_nothing() {
        let mut g = fig2_graph();
        let before = g.clone();
        // Present insert, absent delete, and an insert/delete pair that
        // cancels inside the batch.
        let touched = g
            .apply_edits(&[
                EdgeEdit::Insert(0, 1),
                EdgeEdit::Delete(0, 3),
                EdgeEdit::Insert(2, 3),
                EdgeEdit::Delete(2, 3),
            ])
            .unwrap();
        assert!(touched.is_empty());
        assert_eq!(g, before);
        assert_eq!(g.content_fingerprint(), before.content_fingerprint());
    }

    #[test]
    fn batch_order_matters_delete_then_insert_touches() {
        let mut g = fig2_graph();
        // Delete an existing edge then re-insert it: net no-op.
        let touched = g
            .apply_edits(&[EdgeEdit::Delete(0, 1), EdgeEdit::Insert(0, 1)])
            .unwrap();
        assert!(touched.is_empty());
        assert_eq!(g, fig2_graph());
    }

    #[test]
    fn rejected_batches_leave_the_graph_untouched() {
        let mut g = fig2_graph();
        let before = g.clone();
        assert_eq!(
            g.apply_edits(&[EdgeEdit::Insert(0, 2), EdgeEdit::Insert(1, 9)]),
            Err(EditError::VertexOutOfRange { vertex: 9, n: 5 })
        );
        assert_eq!(
            g.apply_edits(&[EdgeEdit::Delete(3, 3)]),
            Err(EditError::SelfLoop(3))
        );
        assert_eq!(g, before);
    }

    #[test]
    fn edits_match_a_fresh_build() {
        use crate::builder::from_undirected_edges;
        let mut g = fig2_graph();
        g.apply_edits(&[EdgeEdit::Insert(0, 4), EdgeEdit::Delete(1, 2)])
            .unwrap();
        let fresh = from_undirected_edges(5, g.edges().filter(|(u, v)| u < v));
        assert_eq!(g, fresh);
        assert_eq!(g.content_fingerprint(), fresh.content_fingerprint());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut g = fig2_graph();
        assert_eq!(g.apply_edits(&[]), Ok(vec![]));
        let (h, touched) = g.with_edits(&[]).unwrap();
        assert!(touched.is_empty());
        assert_eq!(h, g);
    }
}

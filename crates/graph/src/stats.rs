//! Degree statistics — the columns of Table I, and the planner's
//! single-pass graph profile.
//!
//! Both [`DegreeStats`] (the Table I report row) and [`GraphProfile`]
//! (the `gcol-plan` feature vector) are views over the same one-pass
//! moment accumulation (the private `DegreeMoments`), so the bench suite, the
//! `table1` experiment and the planner cannot drift apart.

use crate::csr::Csr;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Raw degree moments accumulated in a single serial O(n) pass over the
/// CSR row offsets. No allocation: degrees are read as offset differences,
/// never materialized.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DegreeMoments {
    n: usize,
    min: usize,
    max: usize,
    sum: f64,
    sum2: f64,
    sum3: f64,
}

impl DegreeMoments {
    fn accumulate(g: &Csr) -> Self {
        let n = g.num_vertices();
        let mut min = usize::MAX;
        let mut max = 0usize;
        let (mut sum, mut sum2, mut sum3) = (0.0f64, 0.0f64, 0.0f64);
        for v in 0..n as u32 {
            let d = g.degree(v);
            min = min.min(d);
            max = max.max(d);
            let df = d as f64;
            sum += df;
            sum2 += df * df;
            sum3 += df * df * df;
        }
        if n == 0 {
            min = 0;
        }
        Self {
            n,
            min,
            max,
            sum,
            sum2,
            sum3,
        }
    }

    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population variance from raw moments: E[d²] − mean². Clamped at
    /// zero — the subtraction can go fractionally negative in floating
    /// point for regular graphs.
    fn variance(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum2 / self.n as f64 - mean * mean).max(0.0)
    }

    /// Standardized skewness (third central moment over σ³), 0 for
    /// degenerate distributions.
    fn skewness(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let nf = self.n as f64;
        let mean = self.mean();
        let var = self.variance();
        if var <= 0.0 {
            return 0.0;
        }
        let m3 = self.sum3 / nf - 3.0 * mean * (self.sum2 / nf) + 2.0 * mean * mean * mean;
        m3 / var.powf(1.5)
    }
}

/// The per-graph summary the paper reports in Table I: vertex/edge counts,
/// min/max/average degree and the (population) variance of the degree
/// distribution, plus structural symmetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices (rows).
    pub num_vertices: usize,
    /// Number of stored directed edges (non-zero elements).
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Population variance of the degree distribution.
    pub variance: f64,
    /// Whether the sparsity pattern is structurally symmetric.
    pub symmetric: bool,
}

impl DegreeStats {
    /// Computes the statistics for `g`. The degree moments come from the
    /// same single pass as [`GraphProfile::extract`]; symmetry is checked
    /// in parallel with the sorted-adjacency membership test.
    pub fn compute(g: &Csr) -> Self {
        let m = DegreeMoments::accumulate(g);
        let symmetric = (0..m.n as u32)
            .into_par_iter()
            .all(|u| g.neighbors(u).iter().all(|&v| g.has_edge_sorted(v, u)));
        Self {
            num_vertices: m.n,
            num_edges: g.num_edges(),
            min_degree: m.min,
            max_degree: m.max,
            avg_degree: m.mean(),
            variance: m.variance(),
            symmetric,
        }
    }
}

/// The planner's cheap graph feature vector: everything `gcol-plan`
/// conditions on, extracted in one O(n) pass off the CSR with no
/// allocation. A superset of the Table I degree columns plus density and
/// skew.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphProfile {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of stored directed edges.
    pub num_edges: usize,
    /// Fraction of possible neighbors per vertex: avg_degree / (n−1);
    /// 0 for graphs with fewer than two vertices.
    pub density: f64,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Population variance of the degree distribution.
    pub variance: f64,
    /// Standardized skewness of the degree distribution (0 when the
    /// variance is 0).
    pub skew: f64,
}

impl GraphProfile {
    /// Extracts the profile from a CSR graph: one serial pass over the
    /// row offsets, no allocation.
    pub fn extract(g: &Csr) -> Self {
        let m = DegreeMoments::accumulate(g);
        Self::from_moments(m, g.num_edges())
    }

    fn from_moments(m: DegreeMoments, num_edges: usize) -> Self {
        let density = if m.n > 1 {
            m.mean() / (m.n - 1) as f64
        } else {
            0.0
        };
        Self {
            num_vertices: m.n,
            num_edges,
            density,
            min_degree: m.min,
            max_degree: m.max,
            avg_degree: m.mean(),
            variance: m.variance(),
            skew: m.skewness(),
        }
    }

    /// A header-only estimate for inputs too large to materialize (the
    /// `IngestLimits` path): only `n` and `m` are known, so every
    /// distribution statistic collapses to the uniform assumption. The
    /// planner treats this as a regular graph of the declared size.
    pub fn coarse(num_vertices: usize, num_edges: usize) -> Self {
        let avg = if num_vertices == 0 {
            0.0
        } else {
            num_edges as f64 / num_vertices as f64
        };
        let density = if num_vertices > 1 {
            avg / (num_vertices - 1) as f64
        } else {
            0.0
        };
        let d = avg.round().max(0.0) as usize;
        Self {
            num_vertices,
            num_edges,
            density,
            min_degree: d,
            max_degree: d,
            avg_degree: avg,
            variance: 0.0,
            skew: 0.0,
        }
    }

    /// Coefficient of variation of the degree distribution (σ / mean,
    /// 0 for degenerate distributions) — the planner's main shape signal.
    pub fn degree_cv(&self) -> f64 {
        if self.avg_degree > 0.0 {
            self.variance.max(0.0).sqrt() / self.avg_degree
        } else {
            0.0
        }
    }

    /// Max degree relative to the mean (1 for regular graphs; large for
    /// power-law tails). Guards against division by zero on empty rows.
    pub fn max_ratio(&self) -> f64 {
        if self.avg_degree > 0.0 {
            self.max_degree as f64 / self.avg_degree
        } else if self.max_degree > 0 {
            self.max_degree as f64
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_undirected_edges;

    #[test]
    fn stats_of_fig2_graph() {
        let g = from_undirected_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (3, 4)]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 14);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 2.8).abs() < 1e-12);
        assert!(s.symmetric);
        // degrees: [2, 4, 3, 2, 3]; mean 2.8; variance = (0.64+1.44+0.04+0.64+0.04)/5
        assert!((s.variance - 0.56).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = Csr::empty(0);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.variance, 0.0);
        assert!(s.symmetric);
    }

    #[test]
    fn stats_flags_asymmetric_graph() {
        let g = Csr::new(vec![0, 1, 1], vec![1]);
        let s = DegreeStats::compute(&g);
        assert!(!s.symmetric);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 1);
    }

    #[test]
    fn regular_graph_has_zero_variance() {
        // A 4-cycle: every degree is 2.
        let g = from_undirected_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn profile_agrees_with_degree_stats() {
        let g = from_undirected_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (3, 4)]);
        let s = DegreeStats::compute(&g);
        let p = GraphProfile::extract(&g);
        assert_eq!(p.num_vertices, s.num_vertices);
        assert_eq!(p.num_edges, s.num_edges);
        assert_eq!(p.min_degree, s.min_degree);
        assert_eq!(p.max_degree, s.max_degree);
        assert!((p.avg_degree - s.avg_degree).abs() < 1e-12);
        assert!((p.variance - s.variance).abs() < 1e-12);
        // density = 2.8 / 4
        assert!((p.density - 0.7).abs() < 1e-12);
        // degrees [2,4,3,2,3] lean right of the mean: skew is positive.
        assert!(p.skew > 0.0, "skew {}", p.skew);
    }

    #[test]
    fn profile_of_degenerate_graphs() {
        let empty = GraphProfile::extract(&Csr::empty(0));
        assert_eq!(empty.num_vertices, 0);
        assert_eq!(empty.density, 0.0);
        assert_eq!(empty.skew, 0.0);
        assert_eq!(empty.degree_cv(), 0.0);
        assert_eq!(empty.max_ratio(), 1.0);

        let lone = GraphProfile::extract(&Csr::empty(1));
        assert_eq!(lone.num_vertices, 1);
        assert_eq!(lone.density, 0.0);
        assert_eq!(lone.avg_degree, 0.0);

        // A star: one hub of degree n−1, leaves of degree 1 — max_ratio
        // far above 1 and strongly positive skew.
        let star = from_undirected_edges(9, (1..9).map(|v| (0, v)));
        let p = GraphProfile::extract(&star);
        assert_eq!(p.max_degree, 8);
        assert_eq!(p.min_degree, 1);
        assert!(p.skew > 1.0, "star skew {}", p.skew);
        assert!(p.max_ratio() > 4.0);

        // A clique is regular: zero variance, density 1.
        let k5 = from_undirected_edges(5, (0..5u32).flat_map(|u| (u + 1..5).map(move |v| (u, v))));
        let p = GraphProfile::extract(&k5);
        assert_eq!(p.variance, 0.0);
        assert_eq!(p.skew, 0.0);
        assert!((p.density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coarse_profile_is_uniform_and_finite() {
        let p = GraphProfile::coarse(1_000_000, 20_000_000);
        assert_eq!(p.min_degree, p.max_degree);
        assert_eq!(p.min_degree, 20);
        assert!((p.avg_degree - 20.0).abs() < 1e-12);
        assert_eq!(p.variance, 0.0);
        assert!(p.density.is_finite());

        // Near the u32 index ceiling (the IngestLimits regime) nothing
        // overflows or goes non-finite.
        let huge = GraphProfile::coarse(u32::MAX as usize, 4_000_000_000);
        assert!(huge.avg_degree.is_finite());
        assert!(huge.density.is_finite());
        assert_eq!(GraphProfile::coarse(0, 0).avg_degree, 0.0);
    }
}

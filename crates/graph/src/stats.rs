//! Degree statistics — the columns of Table I.

use crate::csr::Csr;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The per-graph summary the paper reports in Table I: vertex/edge counts,
/// min/max/average degree and the (population) variance of the degree
/// distribution, plus structural symmetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices (rows).
    pub num_vertices: usize,
    /// Number of stored directed edges (non-zero elements).
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Population variance of the degree distribution.
    pub variance: f64,
    /// Whether the sparsity pattern is structurally symmetric.
    pub symmetric: bool,
}

impl DegreeStats {
    /// Computes the statistics for `g`. Runs the per-vertex reductions in
    /// parallel; symmetry is checked with the sorted-adjacency membership
    /// test.
    pub fn compute(g: &Csr) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return Self {
                num_vertices: 0,
                num_edges: 0,
                min_degree: 0,
                max_degree: 0,
                avg_degree: 0.0,
                variance: 0.0,
                symmetric: true,
            };
        }
        let degrees: Vec<usize> = (0..n as u32).into_par_iter().map(|v| g.degree(v)).collect();
        let min_degree = degrees.par_iter().copied().min().unwrap();
        let max_degree = degrees.par_iter().copied().max().unwrap();
        let sum: usize = degrees.par_iter().sum();
        let avg = sum as f64 / n as f64;
        let var = degrees
            .par_iter()
            .map(|&d| {
                let diff = d as f64 - avg;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let symmetric = (0..n as u32)
            .into_par_iter()
            .all(|u| g.neighbors(u).iter().all(|&v| g.has_edge_sorted(v, u)));
        Self {
            num_vertices: n,
            num_edges: g.num_edges(),
            min_degree,
            max_degree,
            avg_degree: avg,
            variance: var,
            symmetric,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_undirected_edges;

    #[test]
    fn stats_of_fig2_graph() {
        let g = from_undirected_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (3, 4)]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 14);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 2.8).abs() < 1e-12);
        assert!(s.symmetric);
        // degrees: [2, 4, 3, 2, 3]; mean 2.8; variance = (0.64+1.44+0.04+0.64+0.04)/5
        assert!((s.variance - 0.56).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = Csr::empty(0);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.variance, 0.0);
        assert!(s.symmetric);
    }

    #[test]
    fn stats_flags_asymmetric_graph() {
        let g = Csr::new(vec![0, 1, 1], vec![1]);
        let s = DegreeStats::compute(&g);
        assert!(!s.symmetric);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 1);
    }

    #[test]
    fn regular_graph_has_zero_variance() {
        // A 4-cycle: every degree is 2.
        let g = from_undirected_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.variance, 0.0);
    }
}

//! Small classical graphs with known chromatic structure, used as test
//! oracles throughout the workspace (a path is 2-colorable, an odd cycle
//! needs 3 colors, `K_n` needs `n`, …).

use crate::builder::{from_undirected_edges, CsrBuilder};
use crate::csr::{Csr, VertexId};
use crate::rng::Xoshiro256;

/// Path graph `P_n`: 0 — 1 — … — (n-1). Chromatic number 2 for `n ≥ 2`.
pub fn path(n: usize) -> Csr {
    from_undirected_edges(
        n,
        (0..n.saturating_sub(1)).map(|i| (i as VertexId, i as VertexId + 1)),
    )
}

/// Cycle graph `C_n`. Chromatic number 2 if `n` even, 3 if odd (`n ≥ 3`).
pub fn cycle(n: usize) -> Csr {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    from_undirected_edges(
        n,
        (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)),
    )
}

/// Complete graph `K_n`. Chromatic number `n`.
pub fn complete(n: usize) -> Csr {
    let mut b = CsrBuilder::with_capacity(n, n * n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.symmetrize().build()
}

/// Star graph `S_n`: vertex 0 joined to vertices 1..n. Chromatic number 2.
/// The worst case for topology-driven load balance (one hub thread scans
/// `n - 1` neighbors while every leaf scans 1).
pub fn star(n: usize) -> Csr {
    assert!(n >= 2, "star needs at least 2 vertices");
    from_undirected_edges(n, (1..n).map(|i| (0, i as VertexId)))
}

/// Erdős–Rényi `G(n, m)`: `m` undirected edges sampled uniformly (with
/// replacement, then deduplicated).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2, "need at least 2 vertices");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = CsrBuilder::with_capacity(n, m * 2);
    for _ in 0..m {
        let u = rng.gen_index(n) as VertexId;
        let mut v = rng.gen_index(n) as VertexId;
        while v == u {
            v = rng.gen_index(n) as VertexId;
        }
        b.add_edge(u, v);
    }
    b.symmetrize().build()
}

/// Random `d`-regular-ish graph via the configuration model (pair random
/// stubs; self-loops and duplicates dropped, so degrees can fall slightly
/// below `d`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Csr {
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    assert!(d < n, "degree must be below n");
    let mut stubs: Vec<VertexId> = (0..n)
        .flat_map(|v| std::iter::repeat_n(v as VertexId, d))
        .collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    rng.shuffle(&mut stubs);
    let mut b = CsrBuilder::with_capacity(n, n * d);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]);
        }
    }
    b.symmetrize().build()
}

/// Random bipartite graph between parts `{0..n1}` and `{n1..n1+n2}` with
/// `m` sampled cross edges. Chromatic number ≤ 2.
pub fn random_bipartite(n1: usize, n2: usize, m: usize, seed: u64) -> Csr {
    assert!(n1 > 0 && n2 > 0);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = CsrBuilder::with_capacity(n1 + n2, m * 2);
    for _ in 0..m {
        let u = rng.gen_index(n1) as VertexId;
        let v = (n1 + rng.gen_index(n2)) as VertexId;
        b.add_edge(u, v);
    }
    b.symmetrize().build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices with probability proportional to their degree,
/// yielding the hub-dominated power-law structure that stresses the
/// load-balance behavior of vertex-parallel kernels (an alternative to
/// R-MAT's skew).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Csr {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xBA12_ABA5);
    let mut b = CsrBuilder::with_capacity(n, n * m * 2);
    // Stub list: each edge endpoint appears once, so sampling a uniform
    // stub is degree-proportional sampling.
    let mut stubs: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique on the first m + 1 vertices.
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u as VertexId, v as VertexId);
            stubs.push(u as VertexId);
            stubs.push(v as VertexId);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        // Rejection-sample m distinct degree-proportional targets.
        while chosen.len() < m {
            let t = stubs[rng.gen_index(stubs.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v as VertexId, t);
            stubs.push(v as VertexId);
            stubs.push(t);
        }
    }
    b.symmetrize().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::verify_coloring;
    use crate::stats::DegreeStats;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        // Parity 2-coloring is proper.
        let colors: Vec<u32> = (0..5).map(|i| (i % 2 + 1) as u32).collect();
        verify_coloring(&g, &colors).unwrap();
    }

    #[test]
    fn path_edge_cases() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 12);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn complete_graph_degrees() {
        let g = complete(7);
        assert!(g.vertices().all(|v| g.degree(v) == 6));
        assert_eq!(g.num_edges(), 42);
    }

    #[test]
    fn complete_trivial_sizes() {
        assert_eq!(complete(0).num_vertices(), 0);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn star_hub_and_leaves() {
        let g = star(100);
        assert_eq!(g.degree(0), 99);
        assert!((1..100).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn erdos_renyi_size() {
        let g = erdos_renyi(500, 2000, 3);
        assert_eq!(g.num_vertices(), 500);
        // Dedup can only shrink: at most 4000 directed edges.
        assert!(g.num_edges() <= 4000);
        assert!(g.num_edges() > 3000, "dedup removed too much");
        assert!(g.is_symmetric());
    }

    #[test]
    fn random_regular_close_to_regular() {
        let g = random_regular(1000, 8, 5);
        let s = DegreeStats::compute(&g);
        assert!(s.avg_degree > 7.5, "avg {}", s.avg_degree);
        assert!(s.max_degree <= 8);
    }

    #[test]
    fn bipartite_is_two_colorable() {
        let g = random_bipartite(50, 70, 400, 9);
        let colors: Vec<u32> = (0..120).map(|i| if i < 50 { 1 } else { 2 }).collect();
        verify_coloring(&g, &colors).unwrap();
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(erdos_renyi(100, 300, 1), erdos_renyi(100, 300, 1));
        assert_eq!(random_regular(100, 4, 2), random_regular(100, 4, 2));
        assert_eq!(
            random_bipartite(30, 30, 100, 3),
            random_bipartite(30, 30, 100, 3)
        );
    }
}

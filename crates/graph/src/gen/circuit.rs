//! Circuit-simulation-like graphs — the `Hamrle3` stand-in.
//!
//! `Hamrle3` (Table I) is a large circuit-simulation matrix: average degree
//! 7.62, degrees between 4 and 15, variance 7.21, nonsymmetric pattern.
//! Circuit matrices combine a strong banded component (elements connect to
//! physically adjacent nodes) with sparse longer-range nets. We model that
//! as: every vertex connects to `band` of its nearest neighbors by index,
//! plus a geometrically distributed number of random long-range links whose
//! span follows a heavy-ish tail. The result matches the published degree
//! spread (moderate variance, bounded max degree).

use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use crate::rng::Xoshiro256;

/// Banded-plus-long-range circuit graph.
///
/// * `n` — vertices.
/// * `band` — each vertex links to `band` forward neighbors at *spread*
///   offsets (1, ~√n-scale, …): circuit matrices couple each element to a
///   chain neighbor plus nodes that are far away in the row ordering, so
///   the banded component alone yields degree ≈ `2 * band` without packing
///   a vertex's whole neighborhood into consecutive ids.
/// * `extra_mean` — mean number of extra long-range nets per vertex.
pub fn circuit_graph(n: usize, band: usize, extra_mean: f64, seed: u64) -> Csr {
    assert!(n > band, "n must exceed the band width");
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xC1C0_17C1_C017);
    let mut b = CsrBuilder::with_capacity(n, n * (band + extra_mean.ceil() as usize + 1));
    // Offsets grow geometrically from 1 toward ~n/16, mimicking the
    // multi-scale coupling of circuit netlists (chain + module + global).
    let offsets: Vec<usize> = (0..band)
        .map(|k| {
            if k == 0 {
                1
            } else {
                let span = (n as f64 / 16.0).max(2.0);
                (span.powf(k as f64 / band as f64)).round().max(2.0) as usize
            }
        })
        .collect();
    for v in 0..n {
        for &off in &offsets {
            if v + off < n {
                b.add_edge(v as VertexId, (v + off) as VertexId);
            }
        }
        // Geometric number of extra nets: P(k extras) ~ (1-p) p^k with mean
        // extra_mean, i.e. p = extra_mean / (1 + extra_mean).
        let p = extra_mean / (1.0 + extra_mean);
        let mut extras = 0usize;
        while rng.gen_bool(p) && extras < 16 {
            extras += 1;
            // Long-range span: power-ish tail from a squared uniform draw,
            // capped at n/4 so the band structure stays dominant.
            let u = rng.next_f64();
            let span = 1 + ((u * u) * (n as f64 / 4.0)) as usize;
            // Skip links that would fall off either end rather than
            // clamping — clamping turns vertices 0 and n-1 into hubs.
            let w = if rng.gen_bool(0.5) {
                v.checked_sub(span)
            } else {
                Some(v + span).filter(|&w| w < n)
            };
            if let Some(w) = w {
                b.add_edge(v as VertexId, w as VertexId);
            }
        }
    }
    b.symmetrize().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn degree_shape_matches_hamrle3_band() {
        // Same recipe (scaled down) as the Hamrle3 stand-in in the suite.
        let g = circuit_graph(20_000, 3, 0.9, 11);
        let s = DegreeStats::compute(&g);
        assert!(
            s.avg_degree > 6.0 && s.avg_degree < 9.5,
            "avg {}",
            s.avg_degree
        );
        assert!(s.max_degree <= 40, "max {}", s.max_degree);
        assert!(
            s.variance > 2.0 && s.variance < 15.0,
            "variance {}",
            s.variance
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            circuit_graph(1000, 2, 0.5, 3),
            circuit_graph(1000, 2, 0.5, 3)
        );
        assert_ne!(
            circuit_graph(1000, 2, 0.5, 3),
            circuit_graph(1000, 2, 0.5, 4)
        );
    }

    #[test]
    fn band_component_present_with_spread_offsets() {
        let g = circuit_graph(100, 2, 0.0, 1);
        // Offsets are {1, ~sqrt-scale}: vertex 10 keeps its chain
        // neighbors and gains two far links, not a contiguous band.
        assert!(g.has_edge_sorted(10, 9));
        assert!(g.has_edge_sorted(10, 11));
        assert!(g.degree(10) >= 3);
        assert!(g.neighbors(10).iter().any(|&w| (w as i64 - 10).abs() > 1));
    }

    #[test]
    fn structure_is_clean() {
        let g = circuit_graph(5000, 3, 1.0, 7);
        assert!(g.has_no_self_loops());
        assert!(g.has_sorted_unique_neighbors());
        assert!(g.is_symmetric());
        g.validate().unwrap();
    }
}

//! Regular stencil (grid) graphs.
//!
//! These model the discretized-PDE matrices of Table I: `atmosmodd` is a 3-D
//! atmospheric model (7-point stencil structure, near-zero degree variance)
//! and `G3_circuit`'s sparsity is dominated by a 2-D-grid-like pattern
//! (average degree 4.83). The generators emit the *adjacency* (off-diagonal)
//! pattern; the matrices' diagonal entries have no graph-coloring meaning.

use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};

/// Which neighbors a 2-D stencil connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilKind {
    /// 5-point stencil: N, S, E, W (4 interior neighbors).
    FivePoint,
    /// 9-point stencil: 5-point plus the four diagonals.
    NinePoint,
}

/// 2-D grid graph of `nx * ny` vertices with the given stencil. Vertex
/// `(x, y)` has id `y * nx + x`.
pub fn grid2d(nx: usize, ny: usize, kind: StencilKind) -> Csr {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    let n = nx * ny;
    let mut b = CsrBuilder::with_capacity(n, n * 5);
    let id = |x: usize, y: usize| (y * nx + x) as VertexId;
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < ny {
                b.add_edge(id(x, y), id(x, y + 1));
            }
            if kind == StencilKind::NinePoint {
                if x + 1 < nx && y + 1 < ny {
                    b.add_edge(id(x, y), id(x + 1, y + 1));
                }
                if x > 0 && y + 1 < ny {
                    b.add_edge(id(x, y), id(x - 1, y + 1));
                }
            }
        }
    }
    b.symmetrize().build()
}

/// 3-D grid graph of `nx * ny * nz` vertices with the 7-point stencil
/// (±x, ±y, ±z neighbors). Vertex `(x, y, z)` has id
/// `(z * ny + y) * nx + x`. This is the `atmosmodd` stand-in: interior
/// degree 6, minimum (corner) degree 3, variance ≈ 0.
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> Csr {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "grid dimensions must be positive"
    );
    let n = nx * ny * nz;
    let mut b = CsrBuilder::with_capacity(n, n * 4);
    let id = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as VertexId;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    b.add_edge(id(x, y, z), id(x + 1, y, z));
                }
                if y + 1 < ny {
                    b.add_edge(id(x, y, z), id(x, y + 1, z));
                }
                if z + 1 < nz {
                    b.add_edge(id(x, y, z), id(x, y, z + 1));
                }
            }
        }
    }
    b.symmetrize().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn grid2d_five_point_degrees() {
        let g = grid2d(4, 3, StencilKind::FivePoint);
        assert_eq!(g.num_vertices(), 12);
        // Corner vertex 0 has neighbors (1,0) and (0,1).
        assert_eq!(g.neighbors(0), &[1, 4]);
        // Interior vertex (1,1) = 5 has 4 neighbors.
        assert_eq!(g.degree(5), 4);
        assert!(g.is_symmetric());
        // Edge count: horizontal 3*3 + vertical 4*2 = 17 undirected = 34.
        assert_eq!(g.num_edges(), 34);
    }

    #[test]
    fn grid2d_nine_point_interior_degree() {
        let g = grid2d(5, 5, StencilKind::NinePoint);
        // Center vertex (2,2) = 12 touches all 8 surrounding cells.
        assert_eq!(g.degree(12), 8);
        assert!(g.is_symmetric());
    }

    #[test]
    fn grid3d_seven_point_degrees() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.num_vertices(), 27);
        // Center of the cube has 6 neighbors; corners have 3.
        let center = (3 + 1) * 3 + 1;
        assert_eq!(g.degree(center as u32), 6);
        assert_eq!(g.degree(0), 3);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.min_degree, 3);
        assert_eq!(s.max_degree, 6);
        assert!(s.symmetric);
    }

    #[test]
    fn grid3d_is_bipartite_two_colorable_structure() {
        // A stencil grid is bipartite: no odd cycles, so parity coloring
        // must be proper. (The coloring algorithms should find ≤ small
        // counts here; this test validates the structure itself.)
        let g = grid3d(4, 4, 4);
        let colors: Vec<u32> = (0..g.num_vertices())
            .map(|i| {
                let x = i % 4;
                let y = (i / 4) % 4;
                let z = i / 16;
                ((x + y + z) % 2 + 1) as u32
            })
            .collect();
        crate::check::verify_coloring(&g, &colors).unwrap();
    }

    #[test]
    fn degenerate_one_dimensional_grids() {
        let g = grid2d(5, 1, StencilKind::FivePoint);
        assert_eq!(g.num_edges(), 8); // path of 5 vertices
        let g = grid3d(1, 1, 7);
        assert_eq!(g.num_edges(), 12); // path of 7 vertices
    }
}

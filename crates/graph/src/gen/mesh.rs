//! Unstructured-mesh-like graphs — the `thermal2` stand-in.
//!
//! `thermal2` (Table I) is a FEM steady-state thermal problem on an
//! unstructured triangular mesh: average degree ≈ 6 off-diagonal neighbors,
//! small but non-zero degree variance (0.66), a handful of low-degree
//! boundary vertices, maximum degree 11. We reproduce that structure with a
//! triangular lattice whose regularity is broken by deterministic random
//! edge flips: a fraction of lattice edges is removed and the same number of
//! short-range "diagonal" links is added, mimicking mesh irregularity while
//! keeping planarity-like locality.

use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use crate::rng::Xoshiro256;

/// Triangular-lattice mesh of `nx * ny` vertices with `irregularity`
/// ∈ [0, 1) controlling how many lattice edges are perturbed.
pub fn mesh2d(nx: usize, ny: usize, irregularity: f64, seed: u64) -> Csr {
    assert!(nx > 1 && ny > 1, "mesh must be at least 2x2");
    assert!((0.0..1.0).contains(&irregularity), "irregularity in [0, 1)");
    let n = nx * ny;
    let id = |x: usize, y: usize| (y * nx + x) as VertexId;
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_5EED);
    let mut b = CsrBuilder::with_capacity(n, n * 7);
    let mut removed = 0usize;
    for y in 0..ny {
        for x in 0..nx {
            // Triangular lattice: E, N, and NE diagonal.
            let mut push = |u: VertexId, v: VertexId, rng: &mut Xoshiro256| {
                if rng.gen_bool(irregularity) {
                    removed += 1;
                } else {
                    b.add_edge(u, v);
                }
            };
            if x + 1 < nx {
                push(id(x, y), id(x + 1, y), &mut rng);
            }
            if y + 1 < ny {
                push(id(x, y), id(x, y + 1), &mut rng);
            }
            if x + 1 < nx && y + 1 < ny {
                push(id(x, y), id(x + 1, y + 1), &mut rng);
            }
        }
    }
    // Replace each removed edge with a short-range link (distance ≤ 3 in
    // each axis) so the total edge budget — and hence the average degree —
    // is preserved while the degree distribution spreads out.
    for _ in 0..removed {
        let x = rng.gen_index(nx);
        let y = rng.gen_index(ny);
        let dx = rng.gen_index(7) as isize - 3;
        let dy = rng.gen_index(7) as isize - 3;
        let x2 = (x as isize + dx).clamp(0, nx as isize - 1) as usize;
        let y2 = (y as isize + dy).clamp(0, ny as isize - 1) as usize;
        if (x, y) != (x2, y2) {
            b.add_edge(id(x, y), id(x2, y2));
        }
    }
    b.symmetrize().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn regular_mesh_has_triangular_degrees() {
        let g = mesh2d(10, 10, 0.0, 1);
        // Interior vertices of a triangular lattice have 6 neighbors.
        let s = DegreeStats::compute(&g);
        assert_eq!(s.max_degree, 6);
        assert!(s.avg_degree > 5.0, "avg {}", s.avg_degree);
        assert!(s.symmetric);
    }

    #[test]
    fn irregularity_increases_variance() {
        let reg = DegreeStats::compute(&mesh2d(50, 50, 0.0, 2));
        let irr = DegreeStats::compute(&mesh2d(50, 50, 0.15, 2));
        assert!(
            irr.variance > reg.variance,
            "{} vs {}",
            irr.variance,
            reg.variance
        );
        assert!(irr.max_degree > reg.max_degree);
        // Average degree is roughly preserved (edge budget conserved,
        // modulo dedup of replacement links).
        assert!((irr.avg_degree - reg.avg_degree).abs() < 0.6);
    }

    #[test]
    fn deterministic() {
        assert_eq!(mesh2d(20, 20, 0.1, 9), mesh2d(20, 20, 0.1, 9));
        assert_ne!(mesh2d(20, 20, 0.1, 9), mesh2d(20, 20, 0.1, 10));
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = mesh2d(30, 30, 0.3, 4);
        assert!(g.has_no_self_loops());
        assert!(g.has_sorted_unique_neighbors());
    }
}

//! R-MAT recursive matrix graph generator (Chakrabarti, Zhan & Faloutsos,
//! SDM 2004) — the generator the paper uses for its two synthetic graphs.
//!
//! Each edge is placed by recursively descending a 2^scale × 2^scale
//! adjacency matrix, choosing one of the four quadrants with probabilities
//! `(a, b, c, d)` at every level. `(0.25, 0.25, 0.25, 0.25)` yields an
//! Erdős–Rényi-like graph (the paper's *rmat-er*); `(0.45, 0.15, 0.15,
//! 0.25)` yields a skewed, power-law-ish graph (the paper's *rmat-g*).

use crate::builder::CsrBuilder;
use crate::csr::{Csr, VertexId};
use crate::rng::Xoshiro256;
use rayon::prelude::*;

/// Parameters of the R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Number of *undirected* edges to sample (before dedup); the paper's
    /// graphs use `avg_degree / 2 * n` so the symmetrized edge count lands
    /// near `n * avg_degree`.
    pub edges: usize,
    /// Quadrant probability a (top-left).
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// Quadrant probability d (bottom-right).
    pub d: f64,
    /// Add ±10% noise to the quadrant probabilities at each level, as
    /// recommended by the R-MAT authors to avoid staircase artifacts.
    pub noise: bool,
}

impl RmatParams {
    /// The paper's *rmat-er* configuration at a given scale: uniform
    /// quadrants, average degree ~20 after symmetrization.
    pub fn erdos_renyi(scale: u32, avg_degree: usize) -> Self {
        Self {
            scale,
            edges: (1usize << scale) * avg_degree / 2,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: false,
        }
    }

    /// The paper's *rmat-g* configuration: `(0.45, 0.15, 0.15, 0.25)`.
    pub fn skewed(scale: u32, avg_degree: usize) -> Self {
        Self {
            scale,
            edges: (1usize << scale) * avg_degree / 2,
            a: 0.45,
            b: 0.15,
            c: 0.15,
            d: 0.25,
            noise: true,
        }
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT quadrant probabilities must sum to 1 (got {sum})"
        );
        assert!(self.scale >= 1 && self.scale <= 30, "scale out of range");
    }
}

/// Samples one R-MAT edge.
fn sample_edge(p: &RmatParams, rng: &mut Xoshiro256) -> (VertexId, VertexId) {
    let (mut a, mut b, mut c, mut d) = (p.a, p.b, p.c, p.d);
    let (mut u, mut v) = (0u32, 0u32);
    for level in (0..p.scale).rev() {
        let bit = 1u32 << level;
        let r = rng.next_f64();
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            v |= bit;
        } else if r < a + b + c {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
        if p.noise {
            // Multiplicative ±10% noise, renormalized (Chakrabarti et al.).
            let na = a * (0.9 + 0.2 * rng.next_f64());
            let nb = b * (0.9 + 0.2 * rng.next_f64());
            let nc = c * (0.9 + 0.2 * rng.next_f64());
            let nd = d * (0.9 + 0.2 * rng.next_f64());
            let s = na + nb + nc + nd;
            a = na / s;
            b = nb / s;
            c = nc / s;
            d = nd / s;
        }
    }
    (u, v)
}

/// Generates a symmetric R-MAT graph. Edge sampling is parallelized over
/// deterministic per-chunk RNG streams, so the output depends only on
/// `(params, seed)` — never on thread scheduling.
///
/// ```
/// use gcol_graph::gen::{rmat, RmatParams};
/// let g = rmat(RmatParams::erdos_renyi(10, 8), 42);
/// assert_eq!(g.num_vertices(), 1024);
/// assert!(g.is_symmetric());
/// assert_eq!(g, rmat(RmatParams::erdos_renyi(10, 8), 42)); // bit-stable
/// ```
pub fn rmat(params: RmatParams, seed: u64) -> Csr {
    params.validate();
    let n = 1usize << params.scale;
    const CHUNK: usize = 1 << 16;
    let num_chunks = params.edges.div_ceil(CHUNK);
    let mut root = Xoshiro256::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let chunk_seeds: Vec<u64> = (0..num_chunks).map(|_| root.next_u64()).collect();
    let edges: Vec<(VertexId, VertexId)> = chunk_seeds
        .par_iter()
        .enumerate()
        .flat_map_iter(|(i, &cs)| {
            let lo = i * CHUNK;
            let hi = ((i + 1) * CHUNK).min(params.edges);
            let mut rng = Xoshiro256::seed_from_u64(cs);
            (lo..hi).map(move |_| sample_edge(&params, &mut rng))
        })
        .collect();
    let mut b = CsrBuilder::with_capacity(n, edges.len() * 2);
    b.add_edges(edges);
    b.symmetrize().build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let p = RmatParams::erdos_renyi(10, 8);
        let g1 = rmat(p, 1);
        let g2 = rmat(p, 1);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let p = RmatParams::erdos_renyi(10, 8);
        assert_ne!(rmat(p, 1), rmat(p, 2));
    }

    #[test]
    fn er_graph_has_expected_size_and_shape() {
        let p = RmatParams::erdos_renyi(12, 16);
        let g = rmat(p, 7);
        assert_eq!(g.num_vertices(), 4096);
        // Symmetrized, deduped: directed edge count close to n * avg_degree.
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 13.0 && avg < 16.5, "avg degree {avg}");
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
        assert!(g.has_sorted_unique_neighbors());
    }

    #[test]
    fn skewed_graph_is_more_skewed_than_er() {
        let er = rmat(RmatParams::erdos_renyi(12, 16), 3);
        let sk = rmat(RmatParams::skewed(12, 16), 3);
        let er_stats = crate::stats::DegreeStats::compute(&er);
        let sk_stats = crate::stats::DegreeStats::compute(&sk);
        // The paper's rmat-g has ~20x the degree variance and ~15x the max
        // degree of rmat-er at the same average degree.
        assert!(
            sk_stats.variance > 4.0 * er_stats.variance,
            "variance {} vs {}",
            sk_stats.variance,
            er_stats.variance
        );
        assert!(sk_stats.max_degree > 2 * er_stats.max_degree);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        let p = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
            ..RmatParams::erdos_renyi(4, 2)
        };
        rmat(p, 0);
    }

    #[test]
    fn small_scale_works() {
        let g = rmat(RmatParams::erdos_renyi(1, 1), 5);
        assert_eq!(g.num_vertices(), 2);
        g.validate().unwrap();
    }
}

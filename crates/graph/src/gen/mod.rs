//! Deterministic graph generators.
//!
//! * [`rmat()`] — the R-MAT generator used for the paper's two synthetic
//!   graphs (rmat-er and rmat-g, §IV).
//! * [`mod@grid`] — 2-D/3-D stencil graphs (stand-ins for the `atmosmodd` and
//!   `G3_circuit` matrices of Table I).
//! * [`mod@mesh`] — unstructured-mesh-like graphs (stand-in for `thermal2`).
//! * [`mod@circuit`] — banded + long-range circuit graphs (stand-in for
//!   `Hamrle3`).
//! * [`simple`] — tiny classical graphs used throughout the test suites.

pub mod circuit;
pub mod grid;
pub mod mesh;
pub mod rmat;
pub mod simple;

pub use circuit::circuit_graph;
pub use grid::{grid2d, grid3d, StencilKind};
pub use mesh::mesh2d;
pub use rmat::{rmat, RmatParams};
pub use simple::{complete, cycle, erdos_renyi, path, random_bipartite, random_regular, star};

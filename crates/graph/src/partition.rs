//! Contiguous block partitioning with boundary-vertex detection and
//! ghost/halo shard extraction.
//!
//! The 3-step GM baseline (Grosset et al., §II-C of the paper) partitions
//! the graph into per-thread-block subgraphs and distinguishes *interior*
//! vertices (all neighbors in the same partition — colorable without
//! cross-partition conflicts) from *boundary* vertices (at least one
//! neighbor elsewhere — these are where speculative conflicts can appear).
//! Grosset's framework uses simple contiguous index ranges; we reproduce
//! that, not a min-cut partitioner.
//!
//! [`Partitioning::extract_shards`] turns the same contiguous ranges into
//! per-device [`Shard`] subgraphs for the multi-device driver: each shard
//! holds its owned vertices plus read-only *ghost* (halo) copies of every
//! out-of-shard neighbor, so a cut edge appears in both endpoints' shards
//! and an interior edge in exactly one — the cover invariant the
//! boundary-exchange rounds rely on.

use crate::csr::{Csr, VertexId};
use rayon::prelude::*;

/// A contiguous-range partitioning of the vertex set.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// Partition id of each vertex.
    pub part_of: Vec<u32>,
    /// Half-open vertex ranges `[start, end)` per partition.
    pub ranges: Vec<(VertexId, VertexId)>,
    /// `true` for vertices with at least one neighbor in another partition.
    pub boundary: Vec<bool>,
}

impl Partitioning {
    /// Splits `g` into `k` near-equal contiguous vertex ranges and flags
    /// boundary vertices.
    pub fn contiguous(g: &Csr, k: usize) -> Self {
        assert!(k > 0, "need at least one partition");
        let n = g.num_vertices();
        let per = n.div_ceil(k.min(n.max(1)));
        let mut ranges = Vec::new();
        let mut part_of = vec![0u32; n];
        let mut start = 0usize;
        let mut pid = 0u32;
        while start < n {
            let end = (start + per).min(n);
            ranges.push((start as VertexId, end as VertexId));
            part_of[start..end].fill(pid);
            start = end;
            pid += 1;
        }
        if ranges.is_empty() {
            ranges.push((0, 0));
        }
        let boundary: Vec<bool> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .any(|&w| part_of[w as usize] != part_of[v as usize])
            })
            .collect();
        Self {
            part_of,
            ranges,
            boundary,
        }
    }

    /// Number of partitions actually created.
    pub fn num_parts(&self) -> usize {
        self.ranges.len()
    }

    /// Number of boundary vertices.
    pub fn num_boundary(&self) -> usize {
        self.boundary.iter().filter(|&&b| b).count()
    }

    /// Extracts one [`Shard`] per partition: the owned contiguous range
    /// plus ghost copies of every out-of-shard neighbor, as a standalone
    /// local CSR graph. With a single partition the shard's graph is `g`
    /// itself (identity vertex mapping, no ghosts), which is what makes
    /// the sharded driver label-identical to the single-device one at
    /// P = 1.
    pub fn extract_shards(&self, g: &Csr) -> Vec<Shard> {
        self.ranges
            .par_iter()
            .enumerate()
            .map(|(pid, &(lo, hi))| Shard::extract(g, pid as u32, lo, hi))
            .collect()
    }
}

/// One device's view of the graph: its owned contiguous vertex range plus
/// read-only ghost (halo) copies of every neighbor owned elsewhere.
///
/// Local vertex ids put the owned vertices first (`local = global - owned_start`
/// for `0..num_owned`) and the ghosts after them in ascending global-id
/// order. Ghost adjacency keeps only the edges back into the owned range:
/// ghost–ghost edges belong to the shards that own those endpoints.
///
/// Owned vertices further split into **boundary** (at least one ghost
/// neighbor — the only vertices a cross-shard conflict can touch, and the
/// only ones whose colors ever travel the interconnect) and **interior**
/// (every neighbor owned — colorable and verifiable with zero
/// communication). The split is what lets the sharded driver restrict its
/// cross-conflict kernels to the boundary worklist and overlap ghost
/// exchanges with interior compute.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Partition / device index this shard belongs to.
    pub id: u32,
    /// Global id of the first owned vertex.
    pub owned_start: VertexId,
    /// Number of owned vertices (local ids `0..num_owned`).
    pub num_owned: usize,
    /// Global ids of the ghost vertices, ascending (local ids
    /// `num_owned..num_owned + ghost_gids.len()`).
    pub ghost_gids: Vec<VertexId>,
    /// Local ids (ascending, all `< num_owned`) of the owned vertices
    /// with at least one ghost neighbor — the boundary worklist.
    pub boundary_locals: Vec<VertexId>,
    /// The local subgraph over owned ++ ghost vertices. Symmetric, no
    /// self-loops, sorted adjacency — a full-fledged [`Csr`] any coloring
    /// scheme can run on unchanged.
    pub graph: Csr,
}

impl Shard {
    fn extract(g: &Csr, id: u32, lo: VertexId, hi: VertexId) -> Self {
        let num_owned = (hi - lo) as usize;
        let owned = || (lo..hi).flat_map(|v| g.neighbors(v).iter().copied());
        let mut ghost_gids: Vec<VertexId> = owned().filter(|&w| w < lo || w >= hi).collect();
        ghost_gids.sort_unstable();
        ghost_gids.dedup();

        let to_local = |w: VertexId| -> u32 {
            if (lo..hi).contains(&w) {
                w - lo
            } else {
                // Ghosts are exactly the out-of-range neighbors collected
                // above, so the lookup cannot miss.
                num_owned as u32 + ghost_gids.binary_search(&w).unwrap() as u32
            }
        };

        let num_local = num_owned + ghost_gids.len();
        let mut row_offsets = Vec::with_capacity(num_local + 1);
        let mut col_indices = Vec::new();
        let mut boundary_locals = Vec::new();
        row_offsets.push(0u32);
        for v in lo..hi {
            let row_start = col_indices.len();
            col_indices.extend(g.neighbors(v).iter().map(|&w| to_local(w)));
            // Mapping owned neighbors preserves order but ghosts land past
            // `num_owned`, so mixed rows need a re-sort to keep the CSR
            // sorted-adjacency invariant.
            col_indices[row_start..].sort_unstable();
            if col_indices[row_start..]
                .last()
                .is_some_and(|&w| w as usize >= num_owned)
            {
                // Sorted row: a ghost neighbor, if any, is the last entry.
                boundary_locals.push(v - lo);
            }
            row_offsets.push(col_indices.len() as u32);
        }
        for &gw in &ghost_gids {
            // Only the edges back into the owned range: these are the cut
            // edges mirrored, which keeps the local graph symmetric.
            col_indices.extend(
                g.neighbors(gw)
                    .iter()
                    .filter(|&&w| (lo..hi).contains(&w))
                    .map(|&w| w - lo),
            );
            row_offsets.push(col_indices.len() as u32);
        }
        Self {
            id,
            owned_start: lo,
            num_owned,
            ghost_gids,
            boundary_locals,
            graph: Csr::new(row_offsets, col_indices),
        }
    }

    /// Owned + ghost vertex count (the local graph's vertex count).
    pub fn num_local(&self) -> usize {
        self.num_owned + self.ghost_gids.len()
    }

    /// The subgraph induced by the owned vertices alone (local ids
    /// preserved, ghost edges dropped). This is what the sharded driver
    /// colors in its local-speculation phase: interior vertices see every
    /// neighbor, boundary vertices speculate without their ghosts and get
    /// checked by the first exchange round — so the phase's cost scales
    /// with the shard, not with the halo.
    pub fn owned_subgraph(&self) -> Csr {
        let bound = self.num_owned as u32;
        let mut row_offsets = Vec::with_capacity(self.num_owned + 1);
        let mut col_indices = Vec::new();
        row_offsets.push(0u32);
        for v in 0..bound {
            col_indices.extend(
                self.graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| w < bound),
            );
            row_offsets.push(col_indices.len() as u32);
        }
        Csr::new(row_offsets, col_indices)
    }

    /// Owned vertices with no ghost neighbor (colorable with zero
    /// communication).
    pub fn num_interior(&self) -> usize {
        self.num_owned - self.boundary_locals.len()
    }

    /// `true` if the local id names a ghost copy rather than an owned
    /// vertex.
    pub fn is_ghost(&self, local: VertexId) -> bool {
        local as usize >= self.num_owned
    }

    /// Global id of a local vertex (owned or ghost).
    pub fn global_of(&self, local: VertexId) -> VertexId {
        if self.is_ghost(local) {
            self.ghost_gids[local as usize - self.num_owned]
        } else {
            self.owned_start + local
        }
    }

    /// Local id of a global vertex, if this shard holds it (owned or
    /// ghost).
    pub fn local_of(&self, global: VertexId) -> Option<VertexId> {
        if (self.owned_start..self.owned_start + self.num_owned as u32).contains(&global) {
            Some(global - self.owned_start)
        } else {
            self.ghost_gids
                .binary_search(&global)
                .ok()
                .map(|k| (self.num_owned + k) as VertexId)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::simple::{complete, path};

    #[test]
    fn partitions_cover_all_vertices_evenly() {
        let g = path(10);
        let p = Partitioning::contiguous(&g, 3);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.ranges, vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(p.part_of, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn path_boundaries_are_cut_endpoints() {
        let g = path(10);
        let p = Partitioning::contiguous(&g, 3);
        // Cuts at 3-4 and 7-8.
        let expected: Vec<bool> = (0..10).map(|v| matches!(v, 3 | 4 | 7 | 8)).collect();
        assert_eq!(p.boundary, expected);
        assert_eq!(p.num_boundary(), 4);
    }

    #[test]
    fn complete_graph_is_all_boundary() {
        let g = complete(8);
        let p = Partitioning::contiguous(&g, 2);
        assert!(p.boundary.iter().all(|&b| b));
    }

    #[test]
    fn single_partition_has_no_boundary() {
        let g = complete(8);
        let p = Partitioning::contiguous(&g, 1);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.num_boundary(), 0);
    }

    #[test]
    fn more_parts_than_vertices() {
        let g = path(3);
        let p = Partitioning::contiguous(&g, 10);
        assert_eq!(p.num_parts(), 3);
        assert!(p.boundary.iter().all(|&b| b), "every vertex is a cut");
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(0);
        let p = Partitioning::contiguous(&g, 4);
        assert_eq!(p.part_of.len(), 0);
        assert_eq!(p.num_boundary(), 0);
    }

    #[test]
    fn single_shard_is_the_graph_itself() {
        let g = complete(9);
        let shards = Partitioning::contiguous(&g, 1).extract_shards(&g);
        assert_eq!(shards.len(), 1);
        let s = &shards[0];
        assert_eq!(s.num_owned, 9);
        assert!(s.ghost_gids.is_empty());
        assert!(s.boundary_locals.is_empty());
        assert_eq!(s.num_interior(), 9);
        assert_eq!(s.graph, g);
        assert_eq!(s.global_of(4), 4);
        assert_eq!(s.local_of(4), Some(4));
    }

    #[test]
    fn path_shards_have_cut_ghosts() {
        // path(10) cut at 3-4 and 7-8: shard 1 owns {4..=7}, ghosts {3, 8}.
        let g = path(10);
        let shards = Partitioning::contiguous(&g, 3).extract_shards(&g);
        assert_eq!(shards.len(), 3);
        let s = &shards[1];
        assert_eq!((s.owned_start, s.num_owned), (4, 4));
        assert_eq!(s.ghost_gids, vec![3, 8]);
        assert_eq!(s.num_local(), 6);
        // Owned local ids 0..4 map to globals 4..8; ghosts follow.
        assert_eq!(s.global_of(0), 4);
        assert_eq!(s.global_of(4), 3);
        assert_eq!(s.global_of(5), 8);
        assert_eq!(s.local_of(3), Some(4));
        assert_eq!(s.local_of(0), None);
        assert!(s.is_ghost(4) && !s.is_ghost(3));
        // The local graph is a valid symmetric CSR: ghost 3 links back to
        // owned 4 (local 0), ghost 8 back to owned 7 (local 3).
        s.graph.validate().unwrap();
        assert!(s.graph.is_symmetric());
        assert_eq!(s.graph.neighbors(4), &[0]);
        assert_eq!(s.graph.neighbors(5), &[3]);
        // Owned 4 (local 0) touches ghost 3 and owned 7 (local 3) touches
        // ghost 8; locals 1 and 2 are interior.
        assert_eq!(s.boundary_locals, vec![0, 3]);
        assert_eq!(s.num_interior(), 2);
    }

    #[test]
    fn owned_subgraph_keeps_interior_edges_only() {
        let g = crate::gen::simple::erdos_renyi(90, 400, 7);
        let p = Partitioning::contiguous(&g, 3);
        for s in p.extract_shards(&g) {
            let sub = s.owned_subgraph();
            sub.validate().unwrap();
            assert_eq!(sub.num_vertices(), s.num_owned);
            assert!(sub.is_symmetric());
            // Exactly the owned-owned edges of the local graph, with the
            // same local ids.
            for v in 0..s.num_owned as VertexId {
                let expect: Vec<VertexId> = s
                    .graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| (w as usize) < s.num_owned)
                    .collect();
                assert_eq!(sub.neighbors(v), &expect[..], "shard {} vertex {v}", s.id);
            }
        }
    }

    #[test]
    fn owned_subgraph_of_single_shard_is_the_graph() {
        let g = complete(9);
        let shards = Partitioning::contiguous(&g, 1).extract_shards(&g);
        assert_eq!(shards[0].owned_subgraph(), g);
    }

    #[test]
    fn boundary_locals_match_partition_boundary_flags() {
        let g = crate::gen::simple::erdos_renyi(90, 400, 7);
        let p = Partitioning::contiguous(&g, 3);
        for s in p.extract_shards(&g) {
            // Ascending, owned-only, and consistent with the global
            // boundary bitmap restricted to this shard's range.
            assert!(s.boundary_locals.windows(2).all(|w| w[0] < w[1]));
            assert!(s
                .boundary_locals
                .iter()
                .all(|&l| (l as usize) < s.num_owned));
            let expect: Vec<VertexId> = (0..s.num_owned as VertexId)
                .filter(|&l| p.boundary[(s.owned_start + l) as usize])
                .collect();
            assert_eq!(s.boundary_locals, expect, "shard {}", s.id);
            assert_eq!(s.num_interior() + s.boundary_locals.len(), s.num_owned);
        }
    }

    #[test]
    fn shards_cover_every_edge() {
        let g = crate::gen::simple::erdos_renyi(120, 700, 3);
        let p = Partitioning::contiguous(&g, 4);
        let shards = p.extract_shards(&g);
        assert_eq!(shards.iter().map(|s| s.num_owned).sum::<usize>(), 120);
        for (u, w) in g.edges() {
            let (pu, pw) = (p.part_of[u as usize], p.part_of[w as usize]);
            let su = &shards[pu as usize];
            let (lu, lw) = (su.local_of(u).unwrap(), su.local_of(w).unwrap());
            assert!(
                su.graph.has_edge_sorted(lu, lw),
                "edge ({u},{w}) missing from owner shard {pu}"
            );
            if pu != pw {
                // Cut edge: the other endpoint's shard sees it too, and
                // each endpoint is a ghost in the other's halo.
                assert!(shards[pw as usize].ghost_gids.binary_search(&u).is_ok());
                assert!(su.ghost_gids.binary_search(&w).is_ok());
            }
        }
    }
}

//! Contiguous block partitioning with boundary-vertex detection.
//!
//! The 3-step GM baseline (Grosset et al., §II-C of the paper) partitions
//! the graph into per-thread-block subgraphs and distinguishes *interior*
//! vertices (all neighbors in the same partition — colorable without
//! cross-partition conflicts) from *boundary* vertices (at least one
//! neighbor elsewhere — these are where speculative conflicts can appear).
//! Grosset's framework uses simple contiguous index ranges; we reproduce
//! that, not a min-cut partitioner.

use crate::csr::{Csr, VertexId};
use rayon::prelude::*;

/// A contiguous-range partitioning of the vertex set.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// Partition id of each vertex.
    pub part_of: Vec<u32>,
    /// Half-open vertex ranges `[start, end)` per partition.
    pub ranges: Vec<(VertexId, VertexId)>,
    /// `true` for vertices with at least one neighbor in another partition.
    pub boundary: Vec<bool>,
}

impl Partitioning {
    /// Splits `g` into `k` near-equal contiguous vertex ranges and flags
    /// boundary vertices.
    pub fn contiguous(g: &Csr, k: usize) -> Self {
        assert!(k > 0, "need at least one partition");
        let n = g.num_vertices();
        let per = n.div_ceil(k.min(n.max(1)));
        let mut ranges = Vec::new();
        let mut part_of = vec![0u32; n];
        let mut start = 0usize;
        let mut pid = 0u32;
        while start < n {
            let end = (start + per).min(n);
            ranges.push((start as VertexId, end as VertexId));
            part_of[start..end].fill(pid);
            start = end;
            pid += 1;
        }
        if ranges.is_empty() {
            ranges.push((0, 0));
        }
        let boundary: Vec<bool> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .any(|&w| part_of[w as usize] != part_of[v as usize])
            })
            .collect();
        Self {
            part_of,
            ranges,
            boundary,
        }
    }

    /// Number of partitions actually created.
    pub fn num_parts(&self) -> usize {
        self.ranges.len()
    }

    /// Number of boundary vertices.
    pub fn num_boundary(&self) -> usize {
        self.boundary.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::simple::{complete, path};

    #[test]
    fn partitions_cover_all_vertices_evenly() {
        let g = path(10);
        let p = Partitioning::contiguous(&g, 3);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.ranges, vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(p.part_of, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn path_boundaries_are_cut_endpoints() {
        let g = path(10);
        let p = Partitioning::contiguous(&g, 3);
        // Cuts at 3-4 and 7-8.
        let expected: Vec<bool> = (0..10).map(|v| matches!(v, 3 | 4 | 7 | 8)).collect();
        assert_eq!(p.boundary, expected);
        assert_eq!(p.num_boundary(), 4);
    }

    #[test]
    fn complete_graph_is_all_boundary() {
        let g = complete(8);
        let p = Partitioning::contiguous(&g, 2);
        assert!(p.boundary.iter().all(|&b| b));
    }

    #[test]
    fn single_partition_has_no_boundary() {
        let g = complete(8);
        let p = Partitioning::contiguous(&g, 1);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.num_boundary(), 0);
    }

    #[test]
    fn more_parts_than_vertices() {
        let g = path(3);
        let p = Partitioning::contiguous(&g, 10);
        assert_eq!(p.num_parts(), 3);
        assert!(p.boundary.iter().all(|&b| b), "every vertex is a cut");
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(0);
        let p = Partitioning::contiguous(&g, 4);
        assert_eq!(p.part_of.len(), 0);
        assert_eq!(p.num_boundary(), 0);
    }
}

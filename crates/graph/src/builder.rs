//! Incremental construction of CSR graphs from edge lists.
//!
//! The builder accepts arbitrary (possibly duplicated, possibly one-sided)
//! edges and produces a clean [`Csr`]: optionally symmetrized, self-loops
//! dropped, adjacency lists sorted and deduplicated. Construction is the
//! standard two-pass counting sort, parallelized over vertices for the
//! sort/dedup pass.

use crate::csr::{Csr, VertexId};
use rayon::prelude::*;

/// Builds a [`Csr`] from a stream of edges.
///
/// ```
/// use gcol_graph::CsrBuilder;
/// let mut b = CsrBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.symmetrize().build();
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    symmetrize: bool,
    keep_self_loops: bool,
}

impl CsrBuilder {
    /// A builder for a graph on `n` vertices with no edges yet.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex ids must fit in u32");
        Self {
            num_vertices: n,
            edges: Vec::new(),
            symmetrize: false,
            keep_self_loops: false,
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Raises the vertex count to at least `n` (never shrinks). Streaming
    /// readers that discover the id space as edges arrive (plain edge
    /// lists have no size header) grow the builder instead of buffering
    /// the whole input to find the maximum id first.
    pub fn grow_to(&mut self, n: usize) -> &mut Self {
        assert!(n < u32::MAX as usize, "vertex ids must fit in u32");
        self.num_vertices = self.num_vertices.max(n);
        self
    }

    /// The current vertex count.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds the directed edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        debug_assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range"
        );
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, it: I) -> &mut Self {
        self.edges.extend(it);
        self
    }

    /// Number of raw edges added so far (before dedup/symmetrization).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Store each added edge in both directions, producing a structurally
    /// symmetric graph (the representation the coloring kernels assume).
    pub fn symmetrize(&mut self) -> &mut Self {
        self.symmetrize = true;
        self
    }

    /// Retain self loops instead of dropping them. Coloring is undefined on
    /// self loops (a vertex can never differ in color from itself), so the
    /// default is to drop them — this switch exists for IO round-trip tests.
    pub fn keep_self_loops(&mut self) -> &mut Self {
        self.keep_self_loops = true;
        self
    }

    /// Consumes the builder and produces the CSR graph.
    pub fn build(&mut self) -> Csr {
        let n = self.num_vertices;
        let mut counts = vec![0u32; n + 1];
        let count_edge = |counts: &mut [u32], u: VertexId, v: VertexId| {
            if u != v || self.keep_self_loops {
                counts[u as usize + 1] += 1;
            }
        };
        for &(u, v) in &self.edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of range for {n} vertices"
            );
            count_edge(&mut counts, u, v);
            if self.symmetrize {
                count_edge(&mut counts, v, u);
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cols = vec![0 as VertexId; offsets[n] as usize];
        let mut cursor = counts;
        let place = |cursor: &mut [u32], cols: &mut [VertexId], u: VertexId, v: VertexId| {
            if u != v || self.keep_self_loops {
                cols[cursor[u as usize] as usize] = v;
                cursor[u as usize] += 1;
            }
        };
        for i in 0..self.edges.len() {
            let (u, v) = self.edges[i];
            place(&mut cursor, &mut cols, u, v);
            if self.symmetrize {
                place(&mut cursor, &mut cols, v, u);
            }
        }

        // Sort + dedup each adjacency list in parallel, then repack.
        let lists: Vec<Vec<VertexId>> = (0..n)
            .into_par_iter()
            .map(|v| {
                let lo = offsets[v] as usize;
                let hi = offsets[v + 1] as usize;
                let mut list = cols[lo..hi].to_vec();
                list.sort_unstable();
                list.dedup();
                list
            })
            .collect();
        let mut row_offsets = Vec::with_capacity(n + 1);
        row_offsets.push(0u32);
        let mut total = 0u32;
        for list in &lists {
            total += list.len() as u32;
            row_offsets.push(total);
        }
        let mut col_indices = Vec::with_capacity(total as usize);
        for list in lists {
            col_indices.extend_from_slice(&list);
        }
        Csr::new(row_offsets, col_indices)
    }
}

/// Convenience: builds a symmetric, deduplicated graph directly from an
/// undirected edge list.
pub fn from_undirected_edges(
    n: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> Csr {
    let mut b = CsrBuilder::new(n);
    b.add_edges(edges);
    b.symmetrize().build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_fig2_from_undirected_edges() {
        // Fig. 2's graph as an undirected edge list.
        let g = from_undirected_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (3, 4)]);
        assert_eq!(g.row_offsets(), &[0, 2, 6, 9, 11, 14]);
        assert_eq!(g.col_indices(), &[1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let g = from_undirected_edges(3, [(0, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_no_self_loops());
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.keep_self_loops().build();
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = from_undirected_edges(2, [(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn directed_build_without_symmetrize() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = from_undirected_edges(10, [(0, 9)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
        assert_eq!(g.neighbors(9), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 1);
        // Bypass the debug_assert path by constructing in release semantics:
        // build() re-validates and must panic.
        b.edges.push((0, 7));
        b.build();
    }

    #[test]
    fn adjacency_lists_sorted_unique_after_build() {
        let g = from_undirected_edges(6, [(5, 0), (5, 3), (5, 1), (5, 3), (0, 5), (2, 4)]);
        assert!(g.has_sorted_unique_neighbors());
        assert_eq!(g.neighbors(5), &[0, 1, 3]);
    }
}

//! Execution-mode equivalence properties.
//!
//! `Parallel` mode simulates SMs on worker threads while `Deterministic`
//! mode runs everything on one thread; for race-free kernels (each thread
//! owns its output slots; cross-thread combining only through commutative
//! atomics) the functional results must be identical. Parallel mode's
//! *timing* is also required to be reproducible run to run: every SM's
//! block assignment and per-SM replay order are fixed, so thread
//! scheduling must not leak into any modeled counter.

use gcol_simt::mem::Buffer;
use gcol_simt::{grid_for, launch, Device, ExecMode, GpuMem, Kernel, KernelCtx, KernelStats};
use proptest::prelude::*;

/// A race-free kernel touching every traced op kind: per-thread output
/// stores, plain + read-only loads, local scratch, ALU work, and a
/// commutative atomic reduction.
struct MixedSaxpy {
    x: Buffer<u32>,
    y: Buffer<u32>,
    out: Buffer<u32>,
    total: Buffer<u32>,
    n: usize,
}

impl Kernel for MixedSaxpy {
    fn name(&self) -> &'static str {
        "mixed-saxpy"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.n {
            return;
        }
        let a = t.ld(self.x, i);
        let b = t.ldg(self.y, self.n - 1 - i); // reversed: imperfect coalescing
        t.local_reserve(1);
        t.local_st(0, a.wrapping_mul(3));
        let c = t.local_ld(0);
        t.alu(4);
        let v = c.wrapping_add(b);
        t.st(self.out, i, v);
        // Commutative combine: final value is order-independent.
        t.atomic_add(self.total, 0, v % 97);
    }
}

/// Runs the kernel on fresh memory and returns (out, total, stats).
fn run_once(n: usize, block: u32, seed: u64, mode: ExecMode) -> (Vec<u32>, u32, KernelStats) {
    let mut mem = GpuMem::new();
    // Deterministic pseudo-random inputs from the seed (splitmix64).
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u32
    };
    let x = mem.alloc_from_slice(&(0..n).map(|_| next()).collect::<Vec<u32>>());
    let y = mem.alloc_from_slice(&(0..n).map(|_| next()).collect::<Vec<u32>>());
    let out = mem.alloc::<u32>(n.max(1));
    let total = mem.alloc::<u32>(1);
    let k = MixedSaxpy {
        x,
        y,
        out,
        total,
        n,
    };
    let stats = launch(&mem, &Device::k20c(), mode, grid_for(n, block), block, &k);
    (mem.read_vec(out), mem.load(total, 0), stats)
}

/// The modeled counters that must be identical between two launches.
fn counter_tuple(s: &KernelStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        s.cycles,
        s.instructions,
        s.mem_transactions,
        s.dram_bytes,
        s.ro_hits,
        s.ro_misses,
        s.l2_hits,
        s.l2_misses,
        s.atomics,
        s.atomic_serial_cycles,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Race-free kernels compute the same functional result in both
    /// execution modes.
    #[test]
    fn parallel_matches_deterministic_functionally(
        n in 1usize..4000,
        block_exp in 0u32..4,
        seed in any::<u64>(),
    ) {
        let block = 32u32 << block_exp;
        let (out_d, total_d, _) = run_once(n, block, seed, ExecMode::Deterministic);
        let (out_p, total_p, _) = run_once(n, block, seed, ExecMode::Parallel);
        prop_assert_eq!(out_d, out_p, "output diverged between modes");
        prop_assert_eq!(total_d, total_p, "atomic reduction diverged between modes");
    }

    /// Parallel-mode timing is reproducible: worker-thread scheduling
    /// must not leak into any modeled counter.
    #[test]
    fn parallel_timing_is_deterministic_across_runs(
        n in 1usize..4000,
        block_exp in 0u32..4,
        seed in any::<u64>(),
    ) {
        let block = 32u32 << block_exp;
        let (_, _, s1) = run_once(n, block, seed, ExecMode::Parallel);
        let (_, _, s2) = run_once(n, block, seed, ExecMode::Parallel);
        prop_assert_eq!(counter_tuple(&s1), counter_tuple(&s2));
        prop_assert_eq!(s1.time_ms.to_bits(), s2.time_ms.to_bits(),
                        "modeled time must be bit-identical run to run");
    }
}

//! Integration tests of the simulator's *model* semantics: the Fig.-4
//! ld/ldg distinction, warp-synchronous store visibility, Fermi-vs-Kepler
//! global-load caching, and the timing model's monotonicity laws.

use gcol_simt::mem::Buffer;
use gcol_simt::{grid_for, launch, Device, ExecMode, GpuMem, Kernel, KernelCtx};

/// Reads the same array twice per thread through the chosen load path.
struct DoubleRead {
    data: Buffer<u32>,
    sink: Buffer<u32>,
    use_ldg: bool,
}

impl Kernel for DoubleRead {
    fn name(&self) -> &'static str {
        "double-read"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.data.len() {
            return;
        }
        let (a, b) = if self.use_ldg {
            (t.ldg(self.data, i), t.ldg(self.data, i))
        } else {
            (t.ld(self.data, i), t.ld(self.data, i))
        };
        t.alu(1);
        t.st(self.sink, i, a.wrapping_add(b));
    }
}

fn run_double_read(dev: &Device, n: usize, use_ldg: bool) -> gcol_simt::KernelStats {
    let mut mem = GpuMem::new();
    let data = mem.alloc_from_slice(&vec![7u32; n]);
    let sink = mem.alloc::<u32>(n);
    let k = DoubleRead {
        data,
        sink,
        use_ldg,
    };
    let stats = launch(
        &mem,
        dev,
        ExecMode::Deterministic,
        grid_for(n, 128),
        128,
        &k,
    );
    assert_eq!(mem.read_vec(sink), vec![14u32; n]);
    stats
}

#[test]
fn ldg_is_never_slower_than_ld_for_read_only_reuse() {
    // Fig. 4: read-only data with reuse benefits from the RO cache.
    let dev = Device::k20c();
    let ld = run_double_read(&dev, 20_000, false);
    let ldg = run_double_read(&dev, 20_000, true);
    assert!(
        ldg.cycles <= ld.cycles,
        "ldg {} vs ld {}",
        ldg.cycles,
        ld.cycles
    );
    assert!(ldg.ro_hits > 0);
    assert_eq!(
        ld.ro_hits + ld.ro_misses,
        0,
        "ld bypasses RO cache on Kepler"
    );
}

#[test]
fn fermi_caches_plain_loads_in_l1() {
    // On the Fermi-like device, plain ld goes through the L1 (the RO
    // structure), so the ldg advantage collapses.
    let dev = Device::fermi_like();
    let ld = run_double_read(&dev, 20_000, false);
    assert!(ld.ro_hits > 0, "Fermi plain loads must hit the L1");
    let ldg = run_double_read(&dev, 20_000, true);
    let ratio = ld.cycles as f64 / ldg.cycles as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "Fermi ld ≈ ldg, got ratio {ratio}"
    );
}

/// Each thread writes its slot with `st_warp` and then reads its *left
/// neighbor's* slot: within a warp the neighbor's fresh write must be
/// invisible (lockstep), across the warp boundary it must be visible
/// (earlier warp already flushed).
struct WarpVisibility {
    slots: Buffer<u32>,
    seen: Buffer<u32>,
}

impl Kernel for WarpVisibility {
    fn name(&self) -> &'static str {
        "warp-visibility"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.slots.len() {
            return;
        }
        t.st_warp(self.slots, i, 1000 + i as u32);
        let left = if i == 0 { i } else { i - 1 };
        let observed = t.ld(self.slots, left);
        t.st(self.seen, i, observed);
    }
}

#[test]
fn st_warp_is_invisible_within_warp_visible_across_warps() {
    let dev = Device::k20c();
    let n = 256;
    let mut mem = GpuMem::new();
    let slots = mem.alloc::<u32>(n);
    let seen = mem.alloc::<u32>(n);
    let k = WarpVisibility { slots, seen };
    launch(
        &mem,
        &dev,
        ExecMode::Deterministic,
        grid_for(n, 128),
        128,
        &k,
    );
    let observed = mem.read_vec(seen);
    #[allow(clippy::needless_range_loop)]
    for i in 1..n {
        let same_warp = (i % 32) != 0;
        if same_warp {
            assert_eq!(
                observed[i], 0,
                "thread {i} must NOT see its warp-mate's deferred store"
            );
        } else {
            assert_eq!(
                observed[i],
                1000 + (i as u32 - 1),
                "thread {i} must see the previous warp's flushed store"
            );
        }
    }
    // After the kernel, every deferred store has landed.
    assert_eq!(
        mem.read_vec(slots),
        (0..n as u32).map(|i| 1000 + i).collect::<Vec<_>>()
    );
}

/// alu-only kernel for issue-bound checks.
struct Spin {
    n: usize,
    iters: u32,
}

impl Kernel for Spin {
    fn name(&self) -> &'static str {
        "spin"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        if (t.global_id() as usize) < self.n {
            t.alu(self.iters);
        }
    }
}

#[test]
fn compute_bound_kernel_scales_with_alu_work() {
    let dev = Device::k20c();
    let mem = GpuMem::new();
    let time = |iters: u32| {
        launch(
            &mem,
            &dev,
            ExecMode::Deterministic,
            grid_for(100_000, 128),
            128,
            &Spin { n: 100_000, iters },
        )
        .cycles
    };
    let t1 = time(64);
    let t4 = time(256);
    let ratio = t4 as f64 / t1 as f64;
    assert!(
        (2.0..6.0).contains(&ratio),
        "4x alu work should cost ~4x, got {ratio}"
    );
}

#[test]
fn occupancy_starved_launch_is_slower_per_element() {
    // The Fig.-8 mechanism in isolation: same total work, 32-thread blocks
    // vs 128-thread blocks on a memory-bound kernel.
    let dev = Device::k20c();
    let n = 60_000;
    let run_block_size = |block: u32| {
        let mut mem = GpuMem::new();
        let data = mem.alloc_from_slice(&vec![1u32; n]);
        let sink = mem.alloc::<u32>(n);
        let k = DoubleRead {
            data,
            sink,
            use_ldg: false,
        };
        launch(
            &mem,
            &dev,
            ExecMode::Deterministic,
            grid_for(n, block),
            block,
            &k,
        )
        .cycles
    };
    let c32 = run_block_size(32);
    let c128 = run_block_size(128);
    assert!(
        c32 > c128,
        "32-thread blocks must be slower ({c32} vs {c128})"
    );
}

#[test]
fn parallel_and_deterministic_modes_agree_functionally_for_race_free_kernels() {
    let dev = Device::k20c();
    let n = 10_000;
    let run_mode = |mode: ExecMode| {
        let mut mem = GpuMem::new();
        let data = mem.alloc_from_slice(&(0..n as u32).collect::<Vec<_>>());
        let sink = mem.alloc::<u32>(n);
        let k = DoubleRead {
            data,
            sink,
            use_ldg: true,
        };
        launch(&mem, &dev, mode, grid_for(n, 256), 256, &k);
        mem.read_vec(sink)
    };
    assert_eq!(
        run_mode(ExecMode::Parallel),
        run_mode(ExecMode::Deterministic)
    );
}

/// Each thread reads its own slot plus a far-away slot, so every element
/// is touched twice with a large reuse distance — a capacity probe.
struct StridedReuse {
    data: Buffer<u32>,
    sink: Buffer<u32>,
}

impl Kernel for StridedReuse {
    fn name(&self) -> &'static str {
        "strided-reuse"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let n = self.data.len();
        let i = t.global_id() as usize;
        if i >= n {
            return;
        }
        let a = t.ld(self.data, i);
        let b = t.ld(self.data, (i + n / 2) % n);
        t.alu(2);
        t.st(self.sink, i, a.wrapping_add(b));
    }
}

#[test]
fn bigger_l2_reduces_dram_traffic() {
    // Working set 120 KB: far beyond tiny's 8 KB L2, comfortably inside
    // the K20c's 1.5 MB — the reuse distance of n/2 elements means the
    // second touch hits only when the whole array fits.
    let n = 30_000;
    let run_on = |dev: &Device| {
        let mut mem = GpuMem::new();
        let data = mem.alloc_from_slice(&vec![3u32; n]);
        let sink = mem.alloc::<u32>(n);
        let k = StridedReuse { data, sink };
        let stats = launch(
            &mem,
            dev,
            ExecMode::Deterministic,
            grid_for(n, 128),
            128,
            &k,
        );
        assert_eq!(mem.read_vec(sink), vec![6u32; n]);
        stats
    };
    let tiny = run_on(&Device::tiny());
    let big = run_on(&Device::k20c());
    let tiny_rate = tiny.dram_bytes as f64 / tiny.mem_transactions as f64;
    let big_rate = big.dram_bytes as f64 / big.mem_transactions as f64;
    assert!(
        big_rate < tiny_rate,
        "bigger L2 should turn transactions into hits: {big_rate} vs {tiny_rate}"
    );
}

//! Verifies the zero-allocation claim of the executor hot path: once a
//! launch's buffers are warm, tracing and replaying further warps must
//! never touch the heap. The trace's vectors keep their capacity across
//! `reset()` and the replay works out of the `SmState`-owned fixed
//! scratch, so steady-state kernel launches allocate only their one-time
//! setup (occupancy bookkeeping, stats strings, result vectors).
//!
//! This file holds a single test: the counting global allocator is
//! process-wide state, and a second concurrently-running test would
//! perturb the count.

use gcol_simt::mem::Buffer;
use gcol_simt::{grid_for, launch, Device, ExecMode, GpuMem, Kernel, KernelCtx};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocations.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A kernel exercising every replay path: coalesced and strided loads,
/// read-only loads, stores, local scratch, atomics and ALU work — enough
/// op-slot shapes to reach every branch of `account_warp`.
struct Churn {
    data: Buffer<u32>,
    out: Buffer<u32>,
    counter: Buffer<u32>,
    n: usize,
}

impl Kernel for Churn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.n {
            return;
        }
        let a = t.ld(self.data, i);
        let b = t.ldg(self.data, (i * 7) % self.n);
        t.local_reserve(2);
        t.local_st(0, a);
        t.local_st(1, b);
        t.alu(3);
        let v = t.local_ld(0).wrapping_add(t.local_ld(1));
        t.st(self.out, i, v);
        if i.is_multiple_of(3) {
            // Divergent tail: some lanes issue an extra atomic slot.
            t.atomic_add(self.counter, i % 4, 1);
        }
    }
}

#[test]
fn steady_state_replay_does_not_allocate() {
    let n = 2048usize;
    let dev = Device::k20c();
    let mut mem = GpuMem::new();
    let data = mem.alloc_from_slice(&(0..n as u32).collect::<Vec<u32>>());
    let out = mem.alloc::<u32>(n);
    let counter = mem.alloc::<u32>(4);
    let k = Churn {
        data,
        out,
        counter,
        n,
    };

    // Warm-up: grows the trace vectors to their steady-state capacity and
    // pays every one-time setup cost.
    for _ in 0..3 {
        launch(
            &mem,
            &dev,
            ExecMode::Deterministic,
            grid_for(n, 128),
            128,
            &k,
        );
    }

    // A launch still allocates O(1) per call outside the replay itself
    // (per-SM states, the stats struct and its name string, occupancy
    // math) — but that cost must be independent of how many warps run.
    // Compare a tiny launch's allocation count with a 16x-larger one:
    // identical counts mean the per-warp trace/replay path is
    // allocation-free.
    let per_launch_small = {
        let before = ALLOCS.load(Ordering::Relaxed);
        launch(&mem, &dev, ExecMode::Deterministic, 1, 128, &k);
        ALLOCS.load(Ordering::Relaxed) - before
    };
    let per_launch_large = {
        let before = ALLOCS.load(Ordering::Relaxed);
        launch(
            &mem,
            &dev,
            ExecMode::Deterministic,
            grid_for(n, 128),
            128,
            &k,
        );
        ALLOCS.load(Ordering::Relaxed) - before
    };
    assert_eq!(
        per_launch_small,
        per_launch_large,
        "allocation count must not grow with warp count: \
         {per_launch_small} allocs for 1 block vs {per_launch_large} for {} blocks",
        grid_for(n, 128)
    );
}

//! Property tests of the simulator's model components: the cache against
//! a naive reference implementation, the coalescer's transaction-count
//! bounds, and the occupancy calculator's laws.

use gcol_simt::mem::Buffer;
use gcol_simt::timing::cache::Cache;
use gcol_simt::{grid_for, launch, occupancy, Device, ExecMode, GpuMem, Kernel, KernelCtx};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Naive fully-associative LRU of `lines` entries — the oracle for the
/// set-associative model in the degenerate 1-set configuration.
struct NaiveLru {
    capacity: usize,
    lines: VecDeque<u64>,
}

impl NaiveLru {
    fn access(&mut self, line: u64) -> bool {
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.push_back(line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.pop_front();
            }
            self.lines.push_back(line);
            false
        }
    }
}

proptest! {
    #[test]
    fn single_set_cache_matches_naive_lru(
        addrs in proptest::collection::vec(0u64..64, 1..400),
        ways in 1u32..8,
    ) {
        // size = ways lines of 32B in one set.
        let mut model = Cache::new(32 * ways, 32, ways);
        let mut oracle = NaiveLru { capacity: ways as usize, lines: VecDeque::new() };
        for &a in &addrs {
            let byte = a * 32;
            prop_assert_eq!(model.access(byte), oracle.access(a),
                            "diverged at line {}", a);
        }
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(
        addrs in proptest::collection::vec(0u64..100_000, 0..300),
        size_kb in 1u32..64,
        ways in 1u32..16,
    ) {
        let mut c = Cache::new(size_kb * 1024, 32, ways);
        for &a in &addrs {
            c.access(a);
        }
        let (h, m) = c.stats();
        prop_assert_eq!(h + m, addrs.len() as u64);
    }

    #[test]
    fn occupancy_laws(block_exp in 0u32..6, regs in 8u32..128, smem in 0u32..32_768) {
        let dev = Device::k20c();
        let block = 32u32 << block_exp; // 32..1024
        let o = occupancy(&dev, 1 << 16, block, regs, smem);
        prop_assert!(o.resident_blocks >= 1);
        prop_assert!(o.resident_warps <= dev.max_warps_per_sm);
        prop_assert!(o.resident_blocks <= dev.max_blocks_per_sm);
        prop_assert!(o.fraction > 0.0 && o.fraction <= 1.0);
        // More registers can never increase occupancy.
        let o2 = occupancy(&dev, 1 << 16, block, regs + 16, smem);
        prop_assert!(o2.resident_warps <= o.resident_warps);
        // More shared memory can never increase occupancy.
        let o3 = occupancy(&dev, 1 << 16, block, regs, smem + 1024);
        prop_assert!(o3.resident_warps <= o.resident_warps);
    }
}

/// A kernel whose lanes load a caller-chosen pattern: used to bound the
/// coalescer's transaction counts from above and below.
struct PatternLoad {
    data: Buffer<u32>,
    pattern: Vec<u32>,
    sink: Buffer<u32>,
}

impl Kernel for PatternLoad {
    fn name(&self) -> &'static str {
        "pattern-load"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.pattern.len() {
            return;
        }
        let j = self.pattern[i] as usize;
        let v = t.ld(self.data, j);
        t.st(self.sink, i, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn coalescer_transaction_bounds(
        pattern in proptest::collection::vec(0u32..4096, 1..96),
    ) {
        let dev = Device::k20c();
        let mut mem = GpuMem::new();
        let data = mem.alloc_from_slice(&vec![1u32; 4096]);
        let sink = mem.alloc::<u32>(pattern.len());
        let n = pattern.len();
        let k = PatternLoad { data, pattern: pattern.clone(), sink };
        let stats = launch(&mem, &dev, ExecMode::Deterministic,
                           grid_for(n, 32), 32, &k);
        // Loads + the sink stores, all 32B-sector coalesced. Upper bound:
        // one transaction per lane-op; lower bound: the distinct sectors
        // each warp touches.
        let lane_ops = 2 * n as u64;
        prop_assert!(stats.mem_transactions <= lane_ops);
        // Distinct load sectors per warp (8 words of 4B per 32B sector).
        let mut min_txn = 0u64;
        for w in pattern.chunks(32) {
            let mut sectors: Vec<u64> = w
                .iter()
                .map(|&j| (data.addr(j as usize) as u64 * 4) / 32)
                .collect();
            sectors.sort_unstable();
            sectors.dedup();
            min_txn += sectors.len() as u64;
        }
        prop_assert!(stats.mem_transactions >= min_txn,
            "txns {} below the distinct-sector floor {min_txn}",
            stats.mem_transactions);
    }

    #[test]
    fn uniform_pattern_is_fully_coalesced(start in 0u32..1000) {
        // 32 consecutive words = 4 sectors of 32B for the load and 4 for
        // the store: the best case the coalescer must achieve.
        let dev = Device::k20c();
        let mut mem = GpuMem::new();
        let data = mem.alloc_from_slice(&vec![1u32; 2048]);
        let sink = mem.alloc::<u32>(32);
        let pattern: Vec<u32> = (start..start + 32).collect();
        let k = PatternLoad { data, pattern, sink };
        let stats = launch(&mem, &dev, ExecMode::Deterministic, 1, 32, &k);
        // Loads may straddle one extra sector when unaligned.
        prop_assert!(stats.mem_transactions <= 9,
                     "expected ≤ 9 transactions, got {}",
                     stats.mem_transactions);
    }
}

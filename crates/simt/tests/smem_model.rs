//! Tests of the shared-memory (scratchpad) model: functional semantics of
//! the per-block banked memory, bank-conflict timing, and the lane-ordered
//! warp-scan idiom it enables.

use gcol_simt::mem::Buffer;
use gcol_simt::{grid_for, launch, Device, ExecMode, GpuMem, Kernel, KernelCtx};

/// Every thread stores to a strided smem slot and reads it back; the
/// stride controls the bank-conflict degree.
struct StridedSmem {
    n: usize,
    stride: usize,
    sink: Buffer<u32>,
}

impl Kernel for StridedSmem {
    fn name(&self) -> &'static str {
        "strided-smem"
    }
    fn smem_per_block(&self) -> u32 {
        // Enough words for the largest strided slot of a 128-thread block.
        (128 * self.stride as u32 + 1) * 4
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.n {
            return;
        }
        let slot = (t.tid() as usize) * self.stride;
        t.smem_st(slot, i as u32 + 1);
        let v = t.smem_ld(slot);
        t.st(self.sink, i, v);
    }
}

fn run_strided(stride: usize) -> gcol_simt::KernelStats {
    let dev = Device::k20c();
    let mut mem = GpuMem::new();
    let n = 4096;
    let sink = mem.alloc::<u32>(n);
    let k = StridedSmem { n, stride, sink };
    let stats = launch(
        &mem,
        &dev,
        ExecMode::Deterministic,
        grid_for(n, 128),
        128,
        &k,
    );
    // Functional: every thread read back what it wrote.
    let got = mem.read_vec(sink);
    for (i, &v) in got.iter().enumerate() {
        assert_eq!(v, i as u32 + 1);
    }
    stats
}

#[test]
fn bank_conflicts_scale_with_stride() {
    // Stride 1: conflict-free. Stride 2: 2-way. Stride 32: 32-way
    // (all lanes in the same bank).
    let c1 = run_strided(1).cycles;
    let c2 = run_strided(2).cycles;
    let c32 = run_strided(32).cycles;
    assert!(c2 > c1, "2-way conflicts must cost more ({c2} vs {c1})");
    assert!(c32 > c2, "32-way conflicts must cost most ({c32} vs {c2})");
}

/// Broadcast: all lanes read smem word 0 — no conflict (hardware
/// broadcasts a single word).
struct Broadcast {
    n: usize,
    sink: Buffer<u32>,
}

impl Kernel for Broadcast {
    fn name(&self) -> &'static str {
        "broadcast"
    }
    fn smem_per_block(&self) -> u32 {
        4
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.n {
            return;
        }
        if t.tid() == 0 {
            t.smem_st(0, 77);
        }
        let v = t.smem_ld(0);
        t.st(self.sink, i, v);
    }
}

#[test]
fn same_word_access_broadcasts_without_conflict() {
    let dev = Device::k20c();
    let mut mem = GpuMem::new();
    let n = 4096;
    let sink = mem.alloc::<u32>(n);
    let bcast = launch(
        &mem,
        &dev,
        ExecMode::Deterministic,
        grid_for(n, 128),
        128,
        &Broadcast { n, sink },
    );
    // Lane 0 wrote before the others read (lower-lane visibility), so all
    // threads observed 77.
    assert!(mem.read_vec(sink).iter().all(|&v| v == 77));
    // A broadcast read is far cheaper than a heavily conflicted access.
    let conflicted = run_strided(32);
    assert!(
        bcast.cycles < conflicted.cycles,
        "broadcast {} vs 32-way conflict {}",
        bcast.cycles,
        conflicted.cycles
    );
}

/// Warp inclusive scan in the *lane-ordered* form the executor's shared
/// memory supports: each lane adds the previous lane's (final) prefix to
/// its own value — correct under lane-ordered visibility, and the shape a
/// warp-serial scan takes on hardware too.
struct WarpScan {
    data: Buffer<u32>,
    out: Buffer<u32>,
}

impl Kernel for WarpScan {
    fn name(&self) -> &'static str {
        "warp-scan"
    }
    fn smem_per_block(&self) -> u32 {
        128 * 4
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.data.len() {
            return;
        }
        let lane = (t.tid() % 32) as usize;
        let warp_base = (t.tid() - t.tid() % 32) as usize;
        let own = t.ld(self.data, i);
        let prefix = if lane == 0 {
            own
        } else {
            // Lower-lane read: lane - 1 has already finished, so its slot
            // holds its final inclusive prefix.
            own + t.smem_ld(warp_base + lane - 1)
        };
        t.smem_st(warp_base + lane, prefix);
        t.alu(2);
        t.st(self.out, i, prefix);
    }
}

#[test]
fn warp_scan_matches_host_scan_per_warp() {
    let dev = Device::k20c();
    let mut mem = GpuMem::new();
    let n = 1024;
    let data: Vec<u32> = (0..n as u32).map(|i| (i * 7) % 5 + 1).collect();
    let db = mem.alloc_from_slice(&data);
    let out = mem.alloc::<u32>(n);
    launch(
        &mem,
        &dev,
        ExecMode::Deterministic,
        grid_for(n, 128),
        128,
        &WarpScan { data: db, out },
    );
    let got = mem.read_vec(out);
    for warp in 0..n / 32 {
        let base = warp * 32;
        let expect = gcol_scan::inclusive_scan(&data[base..base + 32]);
        assert_eq!(
            &got[base..base + 32],
            expect.as_slice(),
            "warp {warp} scan mismatch"
        );
    }
}

#[test]
fn smem_is_zeroed_per_block() {
    // A kernel that reads smem before writing must see zeros, in every
    // block (no leakage from previous blocks on the same SM).
    struct ReadFirst {
        n: usize,
        sink: Buffer<u32>,
    }
    impl Kernel for ReadFirst {
        fn name(&self) -> &'static str {
            "read-first"
        }
        fn smem_per_block(&self) -> u32 {
            64 * 4
        }
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            if i >= self.n {
                return;
            }
            let before = t.smem_ld((t.tid() % 64) as usize);
            t.smem_st((t.tid() % 64) as usize, 0xBEEF);
            t.st(self.sink, i, before);
        }
    }
    let dev = Device::tiny();
    let mut mem = GpuMem::new();
    let n = 2048;
    let sink = mem.alloc::<u32>(n);
    launch(
        &mem,
        &dev,
        ExecMode::Deterministic,
        grid_for(n, 64),
        64,
        &ReadFirst { n, sink },
    );
    assert!(
        mem.read_vec(sink).iter().all(|&v| v == 0),
        "smem must start zeroed in every block"
    );
}

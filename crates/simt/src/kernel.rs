//! The kernel programming model: per-thread code against a CUDA-like
//! context.
//!
//! Kernels implement [`Kernel`] (independent threads) or [`CoopKernel`]
//! (threads cooperate through a block-wide exclusive scan — the CUB
//! `BlockScan` pattern of Fig. 5 in the paper). Every global-memory access
//! goes through [`ThreadCtx`], which performs it functionally against the
//! shared arena *and* records it in the warp's flat trace for the timing
//! model.

use crate::mem::{Buffer, GpuMem, Word};
use crate::trace::{Op, OpKind, WarpTrace};

/// Execution context of one thread. Mirrors the CUDA built-ins
/// (`threadIdx`, `blockIdx`, `blockDim`, `gridDim`) and exposes typed
/// memory operations.
pub struct ThreadCtx<'a> {
    mem: &'a GpuMem,
    /// Thread index within the block (`threadIdx.x`).
    pub tid: u32,
    /// Block index within the grid (`blockIdx.x`).
    pub bid: u32,
    /// Threads per block (`blockDim.x`).
    pub bdim: u32,
    /// Blocks in the grid (`gridDim.x`).
    pub gdim: u32,
    pub(crate) trace: WarpTrace,
    pub(crate) scratch: Vec<u32>,
    pub(crate) deferred: Vec<(u32, u32)>,
    /// Per-block shared memory (scratchpad), zeroed at block start.
    pub(crate) smem: Vec<u32>,
}

impl<'a> ThreadCtx<'a> {
    pub(crate) fn new(mem: &'a GpuMem) -> Self {
        Self {
            mem,
            tid: 0,
            bid: 0,
            bdim: 0,
            gdim: 0,
            trace: {
                // A fresh context is immediately usable as a single lane
                // (unit tests drive it directly); the executor resets and
                // re-opens lanes per warp.
                let mut t = WarpTrace::default();
                t.begin_lane();
                t
            },
            scratch: Vec::new(),
            deferred: Vec::new(),
            smem: Vec::new(),
        }
    }

    /// Resets the block-shared scratchpad at block entry (shared memory's
    /// lifetime is the block; contents start zeroed for determinism).
    pub(crate) fn reset_smem(&mut self, words: usize) {
        self.smem.clear();
        self.smem.resize(words, 0);
    }

    /// Applies all warp-deferred stores; called by the executor after every
    /// warp completes.
    pub(crate) fn flush_deferred(&mut self) {
        for (addr, bits) in self.deferred.drain(..) {
            self.mem.store_raw(addr as usize, bits);
        }
    }

    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_id(&self) -> u32 {
        self.bid * self.bdim + self.tid
    }

    /// Normal global load (`ld`, Fig. 4 left): misses L1, served by L2 or
    /// DRAM.
    #[inline]
    pub fn ld<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        self.trace.push(Op {
            kind: OpKind::Ld,
            addr: buf.addr(i),
        });
        self.mem.load(buf, i)
    }

    /// Read-only-cache load (`__ldg`, Fig. 4 right): may be served by the
    /// per-SM read-only L1. Only correct for data that no thread writes
    /// during the kernel — the executor does not enforce this, exactly
    /// like real hardware.
    #[inline]
    pub fn ldg<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        self.trace.push(Op {
            kind: OpKind::Ldg,
            addr: buf.addr(i),
        });
        self.mem.load(buf, i)
    }

    /// Global store.
    #[inline]
    pub fn st<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        self.trace.push(Op {
            kind: OpKind::St,
            addr: buf.addr(i),
        });
        self.mem.store(buf, i, v);
    }

    /// Global store with *warp-synchronous visibility*: the write becomes
    /// visible to other threads only after this thread's entire warp has
    /// finished executing — modeling SIMT lockstep, where the 32 lanes of a
    /// warp cannot observe each other's same-instruction stores. The
    /// speculative coloring kernels use this for `color[v]`, which is what
    /// makes speculation conflicts deterministic and faithful to lockstep
    /// hardware (two adjacent vertices handled by the same warp *will*
    /// race, exactly as on a real GPU). Timing-wise identical to [`ThreadCtx::st`].
    #[inline]
    pub fn st_warp<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        self.trace.push(Op {
            kind: OpKind::St,
            addr: buf.addr(i),
        });
        self.deferred.push((buf.addr(i), v.to_bits()));
    }

    /// `atomicAdd`, returning the old value.
    #[inline]
    pub fn atomic_add(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.fetch_add(buf, i, v)
    }

    /// `atomicMax`, returning the old value.
    #[inline]
    pub fn atomic_max(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.fetch_max(buf, i, v)
    }

    /// `atomicMin`, returning the old value.
    #[inline]
    pub fn atomic_min(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.fetch_min(buf, i, v)
    }

    /// `atomicCAS`, returning the old value.
    #[inline]
    pub fn atomic_cas(&mut self, buf: Buffer<u32>, i: usize, expected: u32, new: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.compare_exchange(buf, i, expected, new)
    }

    /// Charges `n` arithmetic instructions (loop bookkeeping, comparisons,
    /// hash math, …). Kernels annotate their compute so the timing model
    /// can weigh compute against memory.
    #[inline]
    pub fn alu(&mut self, n: u32) {
        self.trace.add_alu(n as u64);
    }

    /// Ensures the thread-local scratch array (the `colorMask` of
    /// Algorithm 1, which lives in local memory / register spill on a real
    /// GPU) has at least `n` entries. Growing is free; contents persist
    /// across threads, which is safe for mask arrays that use unique
    /// marker values (the paper's no-reinitialization trick).
    #[inline]
    pub fn local_reserve(&mut self, n: usize) {
        if self.scratch.len() < n {
            self.scratch.resize(n, u32::MAX);
        }
    }

    /// Local-memory load (L1-cached on Kepler; cheap but not free).
    #[inline]
    pub fn local_ld(&mut self, i: usize) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Local,
            addr: 0,
        });
        self.scratch[i]
    }

    /// Local-memory store.
    #[inline]
    pub fn local_st(&mut self, i: usize, v: u32) {
        self.trace.push(Op {
            kind: OpKind::Local,
            addr: 0,
        });
        self.scratch[i] = v;
    }

    /// Shared-memory (scratchpad) load of word `i`. The scratchpad is
    /// per-block, zero-initialized, sized by `Kernel::smem_per_block`, and
    /// banked: lanes of a warp touching different words in the same bank
    /// serialize (`Device::smem_banks` / `Device::smem_cycles`).
    ///
    /// Visibility follows this executor's lane order: a lane sees the
    /// *final* values written by lower-numbered lanes of its own warp and
    /// by earlier warps of its block (lane-ordered visibility). This is
    /// *stronger* than hardware lockstep — classic per-step idioms like
    /// Hillis–Steele would observe intermediate values on real silicon
    /// but final values here — so warp collectives should be written in
    /// the lane-ordered form (e.g. `prefix[i] = x[i] + prefix[i-1]`),
    /// which is correct under both semantics' timing and this executor's
    /// functional model.
    #[inline]
    pub fn smem_ld(&mut self, i: usize) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Smem,
            addr: i as u32,
        });
        self.smem[i]
    }

    /// Shared-memory store of word `i`; see [`ThreadCtx::smem_ld`] for
    /// the banking and visibility model.
    #[inline]
    pub fn smem_st(&mut self, i: usize, v: u32) {
        self.trace.push(Op {
            kind: OpKind::Smem,
            addr: i as u32,
        });
        self.smem[i] = v;
    }
}

/// A data-parallel kernel: `run` is executed once per thread.
pub trait Kernel: Sync {
    /// Kernel name for reports.
    fn name(&self) -> &'static str {
        "kernel"
    }

    /// Per-thread body.
    fn run(&self, t: &mut ThreadCtx<'_>);

    /// Registers per thread (occupancy input). 36 matches what nvcc
    /// produces for the coloring kernels' CSR traversal + first-fit scan.
    fn regs_per_thread(&self) -> u32 {
        36
    }

    /// Static shared memory per block in bytes.
    fn smem_per_block(&self) -> u32 {
        0
    }
}

/// A kernel whose threads cooperate through one block-wide exclusive scan
/// — the compaction pattern of Fig. 5: each thread *counts* how many items
/// it wants to emit, a block scan assigns offsets, one global `atomicAdd`
/// per block reserves the output range, and each thread *emits* its items
/// at its reserved position.
pub trait CoopKernel: Sync {
    /// Per-thread state carried from the count phase to the emit phase
    /// (e.g. the vertex this thread examined and its conflict flag).
    type Carry: Send;

    /// Kernel name for reports.
    fn name(&self) -> &'static str {
        "coop-kernel"
    }

    /// Phase 1: do the thread's reading work; return the carry and the
    /// number of items (0 or more) this thread will emit.
    fn count(&self, t: &mut ThreadCtx<'_>) -> (Self::Carry, u32);

    /// Phase 2: `dst` is this thread's exclusive global offset (block
    ///   base + in-block scan result); emit exactly the promised number of
    ///   items at `dst`, `dst + 1`, ….
    fn emit(&self, t: &mut ThreadCtx<'_>, carry: Self::Carry, dst: u32);

    /// Registers per thread; block scans cost a few more than plain
    /// kernels.
    fn regs_per_thread(&self) -> u32 {
        40
    }

    /// Shared memory per block: the scan needs one word per thread; the
    /// executor adds this automatically, kernels can add their own on top.
    fn smem_per_block(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::GpuMem;

    #[test]
    fn ctx_records_ops_and_performs_them() {
        let mut mem = GpuMem::new();
        let buf = mem.alloc_from_slice(&[10u32, 20, 30]);
        let mut t = ThreadCtx::new(&mem);
        assert_eq!(t.ld(buf, 1), 20);
        assert_eq!(t.ldg(buf, 2), 30);
        t.st(buf, 0, 99);
        assert_eq!(t.atomic_add(buf, 0, 1), 99);
        t.alu(3);
        assert_eq!(mem.load(buf, 0), 100);
        let ops = t.trace.lane_ops(0);
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[0].kind, OpKind::Ld);
        assert_eq!(ops[1].kind, OpKind::Ldg);
        assert_eq!(ops[2].kind, OpKind::St);
        assert_eq!(ops[3].kind, OpKind::Atomic);
        assert_eq!(t.trace.lane_alu(0), 3);
    }

    #[test]
    fn global_id_composition() {
        let mem = GpuMem::new();
        let mut t = ThreadCtx::new(&mem);
        t.bid = 3;
        t.bdim = 128;
        t.tid = 5;
        assert_eq!(t.global_id(), 389);
    }

    #[test]
    fn local_scratch_persists_and_traces() {
        let mem = GpuMem::new();
        let mut t = ThreadCtx::new(&mem);
        t.local_reserve(4);
        t.local_st(2, 7);
        assert_eq!(t.local_ld(2), 7);
        assert_eq!(t.trace.lane_ops(0).len(), 2);
        assert!(t.trace.lane_ops(0).iter().all(|o| o.kind == OpKind::Local));
        // Growing preserves contents.
        t.local_reserve(8);
        assert_eq!(t.scratch[2], 7);
    }
}

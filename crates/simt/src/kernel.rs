//! The kernel programming model: per-thread code against a CUDA-like
//! context.
//!
//! Kernels implement [`Kernel`] (independent threads) or [`CoopKernel`]
//! (threads cooperate through a block-wide exclusive scan — the CUB
//! `BlockScan` pattern of Fig. 5 in the paper). Kernel bodies are written
//! against the [`KernelCtx`] trait — the complete kernel-facing surface
//! (`global_id`, `ld`/`ldg`/`st`/`st_warp`, atomics, local and shared
//! memory, `alu`) — so the *same* kernel source runs under two execution
//! backends:
//!
//! * [`ThreadCtx`] — the simulator context: every memory access is
//!   performed functionally against the shared arena *and* recorded in the
//!   warp's flat trace for the timing model (the paper-faithful path).
//! * [`crate::native::NativeCtx`] — the production context: the same
//!   accesses with zero trace/timing machinery, for full host-speed runs.

use crate::mem::{Buffer, GpuMem, Word};
use crate::trace::{Op, OpKind, WarpTrace};

/// The kernel-facing execution surface: every operation a kernel body may
/// perform. Mirrors the CUDA built-ins (`threadIdx`, `blockIdx`,
/// `blockDim`, `gridDim`) and the memory-operation vocabulary of Fig. 4.
///
/// Implemented by the tracing simulator context ([`ThreadCtx`]) and the
/// native host context ([`crate::native::NativeCtx`]); kernels take
/// `&mut impl KernelCtx` and are oblivious to which backend runs them.
pub trait KernelCtx {
    /// Thread index within the block (`threadIdx.x`).
    fn tid(&self) -> u32;
    /// Block index within the grid (`blockIdx.x`).
    fn bid(&self) -> u32;
    /// Threads per block (`blockDim.x`).
    fn bdim(&self) -> u32;
    /// Blocks in the grid (`gridDim.x`).
    fn gdim(&self) -> u32;

    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    fn global_id(&self) -> u32 {
        self.bid() * self.bdim() + self.tid()
    }

    /// Normal global load (`ld`, Fig. 4 left): misses L1, served by L2 or
    /// DRAM.
    fn ld<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T;

    /// Read-only-cache load (`__ldg`, Fig. 4 right): may be served by the
    /// per-SM read-only L1. Only correct for data that no thread writes
    /// during the kernel. The default backends do not enforce this,
    /// exactly like real hardware; running under
    /// [`crate::sanitize::SanitizeBackend`] *does* enforce it — any
    /// launch that both `ldg`-reads and stores to one buffer is reported
    /// as an `ldg`-coherence finding (see [`crate::sanitize`]).
    fn ldg<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T;

    /// Global store.
    fn st<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T);

    /// Global store with *warp-synchronous visibility*: the write becomes
    /// visible to other threads only after this thread's entire warp has
    /// finished executing — modeling SIMT lockstep, where the 32 lanes of a
    /// warp cannot observe each other's same-instruction stores. The
    /// speculative coloring kernels use this for `color[v]`, which is what
    /// makes speculation conflicts deterministic and faithful to lockstep
    /// hardware (two adjacent vertices handled by the same warp *will*
    /// race, exactly as on a real GPU).
    fn st_warp<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T);

    /// `atomicAdd`, returning the old value.
    fn atomic_add(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32;

    /// `atomicMax`, returning the old value.
    fn atomic_max(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32;

    /// `atomicMin`, returning the old value.
    fn atomic_min(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32;

    /// `atomicCAS`, returning the old value.
    fn atomic_cas(&mut self, buf: Buffer<u32>, i: usize, expected: u32, new: u32) -> u32;

    /// Charges `n` arithmetic instructions (loop bookkeeping, comparisons,
    /// hash math, …). Kernels annotate their compute so the timing model
    /// can weigh compute against memory; free on the native backend.
    fn alu(&mut self, n: u32);

    /// Ensures the thread-local scratch array (the `colorMask` of
    /// Algorithm 1, which lives in local memory / register spill on a real
    /// GPU) has at least `n` entries. Growing is free; contents persist
    /// across threads, which is safe for mask arrays that use unique
    /// marker values (the paper's no-reinitialization trick).
    fn local_reserve(&mut self, n: usize);

    /// Local-memory load (L1-cached on Kepler; cheap but not free).
    fn local_ld(&mut self, i: usize) -> u32;

    /// Local-memory store.
    fn local_st(&mut self, i: usize, v: u32);

    /// Shared-memory (scratchpad) load of word `i`. The scratchpad is
    /// per-block, zero-initialized and sized by `Kernel::smem_per_block`.
    ///
    /// Visibility follows the executors' lane order: a lane sees the
    /// *final* values written by lower-numbered lanes of its own warp and
    /// by earlier warps of its block (lane-ordered visibility). This is
    /// *stronger* than hardware lockstep, so warp collectives should be
    /// written in the lane-ordered form (e.g. `prefix[i] = x[i] +
    /// prefix[i-1]`), which is correct under both semantics.
    fn smem_ld(&mut self, i: usize) -> u32;

    /// Shared-memory store of word `i`; see [`KernelCtx::smem_ld`] for the
    /// visibility model.
    fn smem_st(&mut self, i: usize, v: u32);
}

/// Execution context of one simulated thread: performs every operation
/// functionally against the shared arena *and* records it in the warp's
/// flat trace for the timing model. This is the paper-faithful
/// [`KernelCtx`] implementation driven by [`crate::exec::launch`].
pub struct ThreadCtx<'a> {
    mem: &'a GpuMem,
    /// Thread index within the block (`threadIdx.x`).
    pub tid: u32,
    /// Block index within the grid (`blockIdx.x`).
    pub bid: u32,
    /// Threads per block (`blockDim.x`).
    pub bdim: u32,
    /// Blocks in the grid (`gridDim.x`).
    pub gdim: u32,
    pub(crate) trace: WarpTrace,
    pub(crate) scratch: Vec<u32>,
    pub(crate) deferred: Vec<(u32, u32)>,
    /// Per-block shared memory (scratchpad), zeroed at block start.
    pub(crate) smem: Vec<u32>,
}

impl<'a> ThreadCtx<'a> {
    pub(crate) fn new(mem: &'a GpuMem) -> Self {
        Self {
            mem,
            tid: 0,
            bid: 0,
            bdim: 0,
            gdim: 0,
            trace: {
                // A fresh context is immediately usable as a single lane
                // (unit tests drive it directly); the executor resets and
                // re-opens lanes per warp.
                let mut t = WarpTrace::default();
                t.begin_lane();
                t
            },
            scratch: Vec::new(),
            deferred: Vec::new(),
            smem: Vec::new(),
        }
    }

    /// Resets the block-shared scratchpad at block entry (shared memory's
    /// lifetime is the block; contents start zeroed for determinism).
    pub(crate) fn reset_smem(&mut self, words: usize) {
        self.smem.clear();
        self.smem.resize(words, 0);
    }

    /// Applies all warp-deferred stores; called by the executor after every
    /// warp completes.
    pub(crate) fn flush_deferred(&mut self) {
        for (addr, bits) in self.deferred.drain(..) {
            self.mem.store_raw(addr as usize, bits);
        }
    }
}

impl KernelCtx for ThreadCtx<'_> {
    #[inline]
    fn tid(&self) -> u32 {
        self.tid
    }

    #[inline]
    fn bid(&self) -> u32 {
        self.bid
    }

    #[inline]
    fn bdim(&self) -> u32 {
        self.bdim
    }

    #[inline]
    fn gdim(&self) -> u32 {
        self.gdim
    }

    #[inline]
    fn ld<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        self.trace.push(Op {
            kind: OpKind::Ld,
            addr: buf.addr(i),
        });
        self.mem.load(buf, i)
    }

    #[inline]
    fn ldg<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        self.trace.push(Op {
            kind: OpKind::Ldg,
            addr: buf.addr(i),
        });
        self.mem.load(buf, i)
    }

    #[inline]
    fn st<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        self.trace.push(Op {
            kind: OpKind::St,
            addr: buf.addr(i),
        });
        self.mem.store(buf, i, v);
    }

    /// Timing-wise identical to [`KernelCtx::st`]; the store is deferred
    /// until the warp completes.
    #[inline]
    fn st_warp<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        self.trace.push(Op {
            kind: OpKind::St,
            addr: buf.addr(i),
        });
        self.deferred.push((buf.addr(i), v.to_bits()));
    }

    #[inline]
    fn atomic_add(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.fetch_add(buf, i, v)
    }

    #[inline]
    fn atomic_max(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.fetch_max(buf, i, v)
    }

    #[inline]
    fn atomic_min(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.fetch_min(buf, i, v)
    }

    #[inline]
    fn atomic_cas(&mut self, buf: Buffer<u32>, i: usize, expected: u32, new: u32) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Atomic,
            addr: buf.addr(i),
        });
        self.mem.compare_exchange(buf, i, expected, new)
    }

    #[inline]
    fn alu(&mut self, n: u32) {
        self.trace.add_alu(n as u64);
    }

    #[inline]
    fn local_reserve(&mut self, n: usize) {
        if self.scratch.len() < n {
            self.scratch.resize(n, u32::MAX);
        }
    }

    #[inline]
    fn local_ld(&mut self, i: usize) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Local,
            addr: 0,
        });
        self.scratch[i]
    }

    #[inline]
    fn local_st(&mut self, i: usize, v: u32) {
        self.trace.push(Op {
            kind: OpKind::Local,
            addr: 0,
        });
        self.scratch[i] = v;
    }

    /// Banked: lanes of a warp touching different words in the same bank
    /// serialize (`Device::smem_banks` / `Device::smem_cycles`).
    #[inline]
    fn smem_ld(&mut self, i: usize) -> u32 {
        self.trace.push(Op {
            kind: OpKind::Smem,
            addr: i as u32,
        });
        self.smem[i]
    }

    #[inline]
    fn smem_st(&mut self, i: usize, v: u32) {
        self.trace.push(Op {
            kind: OpKind::Smem,
            addr: i as u32,
        });
        self.smem[i] = v;
    }
}

/// A data-parallel kernel: `run` is executed once per thread.
pub trait Kernel: Sync {
    /// Kernel name for reports.
    fn name(&self) -> &'static str {
        "kernel"
    }

    /// Per-thread body, written against the backend-agnostic
    /// [`KernelCtx`] surface.
    fn run(&self, t: &mut impl KernelCtx);

    /// Registers per thread (occupancy input). 36 matches what nvcc
    /// produces for the coloring kernels' CSR traversal + first-fit scan.
    fn regs_per_thread(&self) -> u32 {
        36
    }

    /// Static shared memory per block in bytes.
    fn smem_per_block(&self) -> u32 {
        0
    }
}

/// A kernel whose threads cooperate through one block-wide exclusive scan
/// — the compaction pattern of Fig. 5: each thread *counts* how many items
/// it wants to emit, a block scan assigns offsets, one global `atomicAdd`
/// per block reserves the output range, and each thread *emits* its items
/// at its reserved position.
pub trait CoopKernel: Sync {
    /// Per-thread state carried from the count phase to the emit phase
    /// (e.g. the vertex this thread examined and its conflict flag).
    type Carry: Send;

    /// Kernel name for reports.
    fn name(&self) -> &'static str {
        "coop-kernel"
    }

    /// Phase 1: do the thread's reading work; return the carry and the
    /// number of items (0 or more) this thread will emit.
    fn count(&self, t: &mut impl KernelCtx) -> (Self::Carry, u32);

    /// Phase 2: `dst` is this thread's exclusive global offset (block
    ///   base + in-block scan result); emit exactly the promised number of
    ///   items at `dst`, `dst + 1`, ….
    fn emit(&self, t: &mut impl KernelCtx, carry: Self::Carry, dst: u32);

    /// Registers per thread; block scans cost a few more than plain
    /// kernels.
    fn regs_per_thread(&self) -> u32 {
        40
    }

    /// Shared memory per block: the scan needs one word per thread; the
    /// executor adds this automatically, kernels can add their own on top.
    fn smem_per_block(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::GpuMem;

    #[test]
    fn ctx_records_ops_and_performs_them() {
        let mut mem = GpuMem::new();
        let buf = mem.alloc_from_slice(&[10u32, 20, 30]);
        let mut t = ThreadCtx::new(&mem);
        assert_eq!(t.ld(buf, 1), 20);
        assert_eq!(t.ldg(buf, 2), 30);
        t.st(buf, 0, 99);
        assert_eq!(t.atomic_add(buf, 0, 1), 99);
        t.alu(3);
        assert_eq!(mem.load(buf, 0), 100);
        let ops = t.trace.lane_ops(0);
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[0].kind, OpKind::Ld);
        assert_eq!(ops[1].kind, OpKind::Ldg);
        assert_eq!(ops[2].kind, OpKind::St);
        assert_eq!(ops[3].kind, OpKind::Atomic);
        assert_eq!(t.trace.lane_alu(0), 3);
    }

    #[test]
    fn global_id_composition() {
        let mem = GpuMem::new();
        let mut t = ThreadCtx::new(&mem);
        t.bid = 3;
        t.bdim = 128;
        t.tid = 5;
        assert_eq!(t.global_id(), 389);
        // Field and trait accessors agree.
        assert_eq!(KernelCtx::tid(&t), 5);
        assert_eq!(KernelCtx::bid(&t), 3);
        assert_eq!(KernelCtx::bdim(&t), 128);
    }

    #[test]
    fn local_scratch_persists_and_traces() {
        let mem = GpuMem::new();
        let mut t = ThreadCtx::new(&mem);
        t.local_reserve(4);
        t.local_st(2, 7);
        assert_eq!(t.local_ld(2), 7);
        assert_eq!(t.trace.lane_ops(0).len(), 2);
        assert!(t.trace.lane_ops(0).iter().all(|o| o.kind == OpKind::Local));
        // Growing preserves contents.
        t.local_reserve(8);
        assert_eq!(t.scratch[2], 7);
    }
}

//! CPU cost model for the host-side parts of the evaluation.
//!
//! The paper's speedups are normalized to a sequential implementation on an
//! Intel Xeon E5-2670 (2.6 GHz). Since GPU-side time in this reproduction
//! is *modeled* cycles, the sequential baseline must live in the same model
//! for ratios to be meaningful. The constants below were calibrated
//! against the actual wall-clock of this crate's own Rust sequential
//! greedy implementation on a ~2-3 GHz x86 host (a few nanoseconds per
//! edge traversal); `gcol-bench` re-checks the calibration at runtime and
//! reports the measured figure next to the modeled one.

use serde::{Deserialize, Serialize};

/// A simple throughput cost model of one CPU core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Average cycles to process one edge of the greedy loop (load
    /// neighbor, load its color, mark the mask — DRAM-latency amortized by
    /// out-of-order execution and prefetching).
    pub cycles_per_edge: f64,
    /// Average cycles of per-vertex overhead (mask scan, color store,
    /// loop control).
    pub cycles_per_vertex: f64,
}

impl CpuModel {
    /// The Xeon E5-2670 of the paper's testbed.
    pub fn xeon_e5_2670() -> Self {
        Self {
            clock_ghz: 2.6,
            cycles_per_edge: 9.0,
            cycles_per_vertex: 14.0,
        }
    }

    /// Modeled milliseconds for one full greedy sweep over a graph with
    /// `vertices` vertices and `edges` stored (directed) edges.
    pub fn greedy_sweep_ms(&self, vertices: usize, edges: usize) -> f64 {
        let cycles = self.cycles_per_edge * edges as f64 + self.cycles_per_vertex * vertices as f64;
        cycles / (self.clock_ghz * 1e9) * 1e3
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::xeon_e5_2670()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_graph_costs_tens_of_ms() {
        // rmat-er: 1M vertices, 21M edges → ~80 ms at 9 cycles/edge.
        let m = CpuModel::xeon_e5_2670();
        let ms = m.greedy_sweep_ms(1_048_576, 20_971_268);
        assert!(ms > 30.0 && ms < 200.0, "ms = {ms}");
    }

    #[test]
    fn cost_scales_linearly() {
        let m = CpuModel::xeon_e5_2670();
        let a = m.greedy_sweep_ms(1000, 10_000);
        let b = m.greedy_sweep_ms(2000, 20_000);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_free() {
        assert_eq!(CpuModel::default().greedy_sweep_ms(0, 0), 0.0);
    }
}

//! cuda-memcheck-style launch analysis: shadow-memory race,
//! `ldg`-coherence, bounds and initialization checking over the kernel
//! surface.
//!
//! [`SanitizeBackend`] wraps any [`Backend`] and interposes a
//! [`SanitizeCtx`] between kernel bodies and the real execution context.
//! Every global-memory operation is forwarded *unchanged* to the inner
//! context — traces, timing and functional results are identical to an
//! unsanitized run — while a per-launch shadow log records `(address,
//! thread, kind, value)` tuples. When the launch returns, the log is
//! analyzed and structured [`Finding`]s are appended to a cumulative
//! [`SanitizerReport`].
//!
//! # Finding classes
//!
//! * **Plain races** — two different threads touch the same word in one
//!   launch, at least one with a plain [`KernelCtx::st`]
//!   ([`FindingKind::LdStRace`], [`FindingKind::StStRace`]). A
//!   write/write conflict where every thread stores the *same* value is
//!   suppressed: idempotent flag writes (`changed = 1`, `colored[u] = 0`
//!   from several edge threads) are a deliberate, convergent GPU idiom.
//! * **Speculative warp races** — conflicts involving
//!   [`KernelCtx::st_warp`] against loads or other `st_warp`s are
//!   reported as *expected-benign* ([`FindingKind::WarpSpecRace`]): this
//!   is the paper's documented lockstep race on `color[v]`, resolved by
//!   the schemes' own conflict-detection rounds. An `st_warp` meeting a
//!   *plain* store is still harmful ([`FindingKind::WarpPlainStore`]) —
//!   mixing the two visibility disciplines on one word is never intended.
//! * **`ldg` coherence** — any [`KernelCtx::ldg`] from a buffer that is
//!   also stored to in the same launch ([`FindingKind::LdgCoherence`]),
//!   regardless of thread or word: the read-only cache is incoherent
//!   with in-flight stores on real hardware.
//! * **Bounds and initialization** — an index past the buffer's length
//!   ([`FindingKind::OutOfBounds`]; the access is trapped, loads return
//!   zero and stores are dropped) and a read of an
//!   [`GpuMem::alloc_uninit`] word never written by host or device
//!   ([`FindingKind::UninitRead`]). The initialized-word bitmap is
//!   seeded by host writes (the h2d data path) and updated by every
//!   device store.
//! * **Mixed atomic/plain access** — one word touched by both an
//!   `atomic_*` RMW and a plain load/store from different threads
//!   ([`FindingKind::MixedAtomic`]).
//! * **Shared-memory races** — two threads of the same block touch one
//!   scratchpad word, at least one storing ([`FindingKind::SmemRace`]).
//!   The simulator's lane-ordered visibility makes such kernels appear
//!   to work; on lockstep hardware they would not.
//!
//! Findings carry the kernel name, the scheme context (see
//! [`SanitizeBackend::set_context`]), the buffer label (see
//! [`GpuMem::set_label`]), the word index *within the buffer*, and the
//! two conflicting thread ids, so a report line points straight at the
//! offending access pair. Within a report, findings are deduplicated per
//! (kind, kernel, buffer): the first representative word/thread pair is
//! kept and an occurrence count accumulates.

use crate::backend::Backend;
use crate::kernel::{CoopKernel, Kernel, KernelCtx};
use crate::mem::{Buffer, GpuMem, Word};
use crate::profile::RunProfile;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// What a shadow-log entry did to its word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum AccessKind {
    /// Plain global load.
    Ld,
    /// Read-only-cache load.
    Ldg,
    /// Plain global store.
    St,
    /// Warp-deferred speculative store.
    StWarp,
    /// Atomic read-modify-write.
    Atomic,
}

impl AccessKind {
    fn is_store(self) -> bool {
        matches!(
            self,
            AccessKind::St | AccessKind::StWarp | AccessKind::Atomic
        )
    }
}

/// One recorded global-memory access.
#[derive(Debug, Clone, Copy)]
struct Event {
    addr: u32,
    thread: u32,
    kind: AccessKind,
    /// Stored bits (meaningful for `St`; used for the same-value
    /// write/write suppression).
    value: u32,
}

/// One recorded shared-memory access.
#[derive(Debug, Clone, Copy)]
struct SmemEvent {
    block: u32,
    word: u32,
    thread: u32,
    store: bool,
}

/// A bounds/init violation detected at access time (the exact word index
/// is only known there, before address resolution).
#[derive(Debug, Clone)]
struct Immediate {
    kind: FindingKind,
    buffer: String,
    word: usize,
    thread: u32,
}

/// The class of a sanitizer [`Finding`]. Serializes as the variant name
/// (`"WarpSpecRace"`), which is what the checked-in CI baselines key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FindingKind {
    /// Two threads plain-store conflicting values to one word.
    StStRace,
    /// One thread plain-stores a word another thread loads.
    LdStRace,
    /// A speculative `st_warp` conflicts with a load or another
    /// `st_warp` — the paper's documented benign lockstep race.
    WarpSpecRace,
    /// A speculative `st_warp` conflicts with a *plain* store.
    WarpPlainStore,
    /// One word accessed both atomically and with plain loads/stores by
    /// different threads.
    MixedAtomic,
    /// An `ldg` from a buffer also stored to in the same launch.
    LdgCoherence,
    /// An access past the end of a buffer.
    OutOfBounds,
    /// A load of a word never written since [`GpuMem::alloc_uninit`].
    UninitRead,
    /// Two threads of a block conflict on a shared-memory word.
    SmemRace,
}

impl FindingKind {
    /// Whether this class is expected-benign (the documented `st_warp`
    /// speculation race) rather than a bug.
    pub fn is_benign(self) -> bool {
        matches!(self, FindingKind::WarpSpecRace)
    }

    /// Short human-readable description of the class.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::StStRace => "plain st/st race (conflicting values)",
            FindingKind::LdStRace => "plain ld/st race",
            FindingKind::WarpSpecRace => "st_warp speculative race (expected-benign)",
            FindingKind::WarpPlainStore => "st_warp vs plain st on one word",
            FindingKind::MixedAtomic => "mixed atomic/plain access",
            FindingKind::LdgCoherence => "ldg from a buffer written in the same launch",
            FindingKind::OutOfBounds => "out-of-bounds access",
            FindingKind::UninitRead => "read before initialization",
            FindingKind::SmemRace => "shared-memory race",
        }
    }
}

/// One analyzed violation (or benign-race observation).
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// The violation class.
    pub kind: FindingKind,
    /// Scheme context set via [`SanitizeBackend::set_context`] ("" if
    /// unset).
    pub context: String,
    /// Name of the launched kernel.
    pub kernel: String,
    /// Label of the buffer ([`GpuMem::set_label`]), `"alloc#k"` default,
    /// or `"smem"` for shared-memory findings.
    pub buffer: String,
    /// Word index *within the buffer* of the representative conflict
    /// (for [`FindingKind::OutOfBounds`]: the offending index itself).
    pub word: usize,
    /// The two conflicting thread ids (equal for single-thread findings
    /// like out-of-bounds).
    pub threads: (u32, u32),
    /// How many deduplicated occurrences this finding stands for.
    pub occurrences: u64,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = if self.kind.is_benign() {
            "benign "
        } else {
            "HARMFUL"
        };
        write!(f, "[{sev}] {}: kernel `{}`", self.kind.label(), self.kernel)?;
        if !self.context.is_empty() {
            write!(f, " (scheme {})", self.context)?;
        }
        write!(
            f,
            ", buffer `{}` word {}, threads {}/{}",
            self.buffer, self.word, self.threads.0, self.threads.1
        )?;
        if self.occurrences > 1 {
            write!(f, " (x{})", self.occurrences)?;
        }
        Ok(())
    }
}

/// The cumulative result of every launch analyzed by a
/// [`SanitizeBackend`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct SanitizerReport {
    /// Deduplicated findings in discovery order.
    pub findings: Vec<Finding>,
}

impl SanitizerReport {
    /// Whether the report contains no harmful findings (benign
    /// `st_warp` speculation races are allowed).
    pub fn is_clean(&self) -> bool {
        self.harmful().next().is_none()
    }

    /// The harmful findings.
    pub fn harmful(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.kind.is_benign())
    }

    /// The expected-benign findings.
    pub fn benign(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.kind.is_benign())
    }

    /// Absorbs another report's findings, deduplicating per
    /// (kind, context, kernel, buffer).
    pub fn merge(&mut self, other: SanitizerReport) {
        for f in other.findings {
            push_dedup(&mut self.findings, f);
        }
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let harmful = self.harmful().count();
        let benign = self.benign().count();
        writeln!(
            f,
            "sanitizer report: {harmful} harmful, {benign} benign finding(s)"
        )?;
        for finding in self.harmful().chain(self.benign()) {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

fn push_dedup(findings: &mut Vec<Finding>, f: Finding) {
    let existing = findings.iter_mut().find(|e| {
        e.kind == f.kind && e.context == f.context && e.kernel == f.kernel && e.buffer == f.buffer
    });
    match existing {
        Some(e) => e.occurrences += f.occurrences,
        None => findings.push(f),
    }
}

/// Up to two *distinct* thread ids, kept in first-seen order.
#[derive(Debug, Clone, Copy, Default)]
struct Pair {
    a: Option<u32>,
    b: Option<u32>,
}

impl Pair {
    fn add(&mut self, t: u32) {
        match self.a {
            None => self.a = Some(t),
            Some(x) if x == t => {}
            Some(_) => {
                if self.b.is_none() {
                    self.b = Some(t);
                }
            }
        }
    }

    /// Two distinct threads within this set.
    fn two(&self) -> Option<(u32, u32)> {
        Some((self.a?, self.b?))
    }

    /// Two distinct threads, one from `self` and one from `other`.
    fn cross(&self, other: &Pair) -> Option<(u32, u32)> {
        let a1 = self.a?;
        let b1 = other.a?;
        if a1 != b1 {
            return Some((a1, b1));
        }
        if let Some(b2) = other.b {
            return Some((a1, b2));
        }
        if let Some(a2) = self.b {
            return Some((a2, b1));
        }
        None
    }
}

/// Per-launch shadow state: the access logs one launch accumulates and
/// the memory they resolve against.
struct LaunchShadow<'m> {
    mem: &'m GpuMem,
    events: Mutex<Vec<Event>>,
    smem: Mutex<Vec<SmemEvent>>,
    immediate: Mutex<Vec<Immediate>>,
}

impl<'m> LaunchShadow<'m> {
    fn new(mem: &'m GpuMem) -> Self {
        Self {
            mem,
            events: Mutex::new(Vec::new()),
            smem: Mutex::new(Vec::new()),
            immediate: Mutex::new(Vec::new()),
        }
    }

    /// Runs every analysis over the launch's logs and returns the
    /// (per-launch-deduplicated) findings.
    fn analyze(self, kernel: &str, context: &str) -> Vec<Finding> {
        let mem = self.mem;
        let mut findings: Vec<Finding> = Vec::new();

        for imm in self.immediate.into_inner().unwrap() {
            push_dedup(
                &mut findings,
                Finding {
                    kind: imm.kind,
                    context: context.to_string(),
                    kernel: kernel.to_string(),
                    buffer: imm.buffer,
                    word: imm.word,
                    threads: (imm.thread, imm.thread),
                    occurrences: 1,
                },
            );
        }

        let mut events = self.events.into_inner().unwrap();
        // Full sort makes the analysis (and the representative thread
        // pair each finding names) deterministic regardless of the
        // host-thread interleaving that produced the log.
        events.sort_unstable_by_key(|e| (e.addr, e.kind, e.thread, e.value));

        let resolve = |addr: u32| -> (String, usize) {
            match mem.alloc_info(addr as usize) {
                Some(a) => (a.label.clone(), addr as usize - a.base),
                None => ("unknown".to_string(), addr as usize),
            }
        };
        let mut push = |kind: FindingKind, buffer: String, word: usize, threads: (u32, u32)| {
            push_dedup(
                &mut findings,
                Finding {
                    kind,
                    context: context.to_string(),
                    kernel: kernel.to_string(),
                    buffer,
                    word,
                    threads,
                    occurrences: 1,
                },
            );
        };

        // Pass 1: per-address race classification.
        let mut i = 0;
        while i < events.len() {
            let addr = events[i].addr;
            let mut j = i;
            let mut readers = Pair::default();
            let mut plain_st = Pair::default();
            let mut warp_st = Pair::default();
            let mut atomics = Pair::default();
            let mut st_value: Option<u32> = None;
            let mut st_values_differ = false;
            while j < events.len() && events[j].addr == addr {
                let e = events[j];
                match e.kind {
                    AccessKind::Ld | AccessKind::Ldg => readers.add(e.thread),
                    AccessKind::St => {
                        plain_st.add(e.thread);
                        match st_value {
                            None => st_value = Some(e.value),
                            Some(v) if v != e.value => st_values_differ = true,
                            Some(_) => {}
                        }
                    }
                    AccessKind::StWarp => warp_st.add(e.thread),
                    AccessKind::Atomic => atomics.add(e.thread),
                }
                j += 1;
            }
            let has_conflict = (st_values_differ && plain_st.two().is_some())
                || plain_st.cross(&readers).is_some()
                || warp_st.two().is_some()
                || warp_st.cross(&readers).is_some()
                || warp_st.cross(&plain_st).is_some()
                || atomics.cross(&readers).is_some()
                || atomics.cross(&plain_st).is_some()
                || atomics.cross(&warp_st).is_some();
            if has_conflict {
                let (buffer, word) = resolve(addr);
                if st_values_differ {
                    if let Some(t) = plain_st.two() {
                        push(FindingKind::StStRace, buffer.clone(), word, t);
                    }
                }
                if let Some(t) = plain_st.cross(&readers) {
                    push(FindingKind::LdStRace, buffer.clone(), word, t);
                }
                if let Some(t) = warp_st.two().or_else(|| warp_st.cross(&readers)) {
                    push(FindingKind::WarpSpecRace, buffer.clone(), word, t);
                }
                if let Some(t) = warp_st.cross(&plain_st) {
                    push(FindingKind::WarpPlainStore, buffer.clone(), word, t);
                }
                if let Some(t) = atomics
                    .cross(&readers)
                    .or_else(|| atomics.cross(&plain_st))
                    .or_else(|| atomics.cross(&warp_st))
                {
                    push(FindingKind::MixedAtomic, buffer, word, t);
                }
            }
            i = j;
        }

        // Pass 2: buffer-granularity ldg coherence — any ldg from an
        // allocation that is also stored to anywhere in this launch.
        let mut per_alloc: BTreeMap<usize, [Option<(u32, usize)>; 2]> = BTreeMap::new();
        for e in &events {
            let slot = match e.kind {
                AccessKind::Ldg => 0,
                k if k.is_store() => 1,
                _ => continue,
            };
            if let Some(info) = mem.alloc_info(e.addr as usize) {
                let entry = per_alloc.entry(info.base).or_default();
                if entry[slot].is_none() {
                    entry[slot] = Some((e.thread, e.addr as usize - info.base));
                }
            }
        }
        for (base, [ldg, store]) in per_alloc {
            if let (Some(l), Some(s)) = (ldg, store) {
                let label = mem
                    .alloc_info(base)
                    .map(|a| a.label.clone())
                    .unwrap_or_else(|| "unknown".to_string());
                push(FindingKind::LdgCoherence, label, s.1, (l.0, s.0));
            }
        }

        // Pass 3: shared-memory races per (block, word).
        let mut smem = self.smem.into_inner().unwrap();
        smem.sort_unstable_by_key(|e| (e.block, e.word, e.thread));
        let mut i = 0;
        while i < smem.len() {
            let (block, word) = (smem[i].block, smem[i].word);
            let mut j = i;
            let mut stores = Pair::default();
            let mut loads = Pair::default();
            while j < smem.len() && smem[j].block == block && smem[j].word == word {
                if smem[j].store {
                    stores.add(smem[j].thread);
                } else {
                    loads.add(smem[j].thread);
                }
                j += 1;
            }
            if let Some(t) = stores.two().or_else(|| stores.cross(&loads)) {
                push(FindingKind::SmemRace, "smem".to_string(), word as usize, t);
            }
            i = j;
        }

        findings
    }
}

/// The sanitizing [`KernelCtx`]: forwards every operation to the wrapped
/// context (so traces, timing and functional behavior are untouched)
/// while logging global and shared accesses into the launch shadow.
/// Out-of-bounds accesses are trapped *before* forwarding: loads return
/// zero, stores are dropped, and an exact-index finding is recorded.
pub struct SanitizeCtx<'a, C: KernelCtx> {
    inner: &'a mut C,
    shadow: &'a LaunchShadow<'a>,
    events: Vec<Event>,
    smem_events: Vec<SmemEvent>,
    immediate: Vec<Immediate>,
}

impl<'a, C: KernelCtx> SanitizeCtx<'a, C> {
    fn new(inner: &'a mut C, shadow: &'a LaunchShadow<'a>) -> Self {
        Self {
            inner,
            shadow,
            events: Vec::new(),
            smem_events: Vec::new(),
            immediate: Vec::new(),
        }
    }

    fn buffer_label<T: Word>(&self, buf: Buffer<T>) -> String {
        self.shadow
            .mem
            .alloc_info(buf.base_addr() as usize)
            .map(|a| a.label.clone())
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// Bounds/init checks plus event logging; returns whether the access
    /// may be forwarded to the real context.
    fn record<T: Word>(&mut self, buf: Buffer<T>, i: usize, kind: AccessKind, value: u32) -> bool {
        let thread = self.inner.global_id();
        if i >= buf.len() {
            self.immediate.push(Immediate {
                kind: FindingKind::OutOfBounds,
                buffer: self.buffer_label(buf),
                word: i,
                thread,
            });
            return false;
        }
        let addr = buf.base_addr() + i as u32;
        // Atomics read their word too, so they participate in the
        // read-before-init check.
        let reads = !kind.is_store() || kind == AccessKind::Atomic;
        if reads && !self.shadow.mem.word_init(addr as usize) {
            self.immediate.push(Immediate {
                kind: FindingKind::UninitRead,
                buffer: self.buffer_label(buf),
                word: i,
                thread,
            });
        }
        self.events.push(Event {
            addr,
            thread,
            kind,
            value,
        });
        true
    }

    /// Publishes this thread's logs into the launch shadow.
    fn commit(self) {
        if !self.events.is_empty() {
            self.shadow.events.lock().unwrap().extend(self.events);
        }
        if !self.smem_events.is_empty() {
            self.shadow.smem.lock().unwrap().extend(self.smem_events);
        }
        if !self.immediate.is_empty() {
            self.shadow.immediate.lock().unwrap().extend(self.immediate);
        }
    }
}

impl<C: KernelCtx> KernelCtx for SanitizeCtx<'_, C> {
    fn tid(&self) -> u32 {
        self.inner.tid()
    }
    fn bid(&self) -> u32 {
        self.inner.bid()
    }
    fn bdim(&self) -> u32 {
        self.inner.bdim()
    }
    fn gdim(&self) -> u32 {
        self.inner.gdim()
    }

    fn ld<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        if self.record(buf, i, AccessKind::Ld, 0) {
            self.inner.ld(buf, i)
        } else {
            T::from_bits(0)
        }
    }

    fn ldg<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        if self.record(buf, i, AccessKind::Ldg, 0) {
            self.inner.ldg(buf, i)
        } else {
            T::from_bits(0)
        }
    }

    fn st<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        if self.record(buf, i, AccessKind::St, v.to_bits()) {
            self.inner.st(buf, i, v);
        }
    }

    fn st_warp<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        if self.record(buf, i, AccessKind::StWarp, v.to_bits()) {
            self.inner.st_warp(buf, i, v);
        }
    }

    fn atomic_add(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        if self.record(buf, i, AccessKind::Atomic, 0) {
            self.inner.atomic_add(buf, i, v)
        } else {
            0
        }
    }

    fn atomic_max(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        if self.record(buf, i, AccessKind::Atomic, 0) {
            self.inner.atomic_max(buf, i, v)
        } else {
            0
        }
    }

    fn atomic_min(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        if self.record(buf, i, AccessKind::Atomic, 0) {
            self.inner.atomic_min(buf, i, v)
        } else {
            0
        }
    }

    fn atomic_cas(&mut self, buf: Buffer<u32>, i: usize, expected: u32, new: u32) -> u32 {
        if self.record(buf, i, AccessKind::Atomic, 0) {
            self.inner.atomic_cas(buf, i, expected, new)
        } else {
            0
        }
    }

    fn alu(&mut self, n: u32) {
        self.inner.alu(n);
    }

    fn local_reserve(&mut self, n: usize) {
        self.inner.local_reserve(n);
    }

    fn local_ld(&mut self, i: usize) -> u32 {
        self.inner.local_ld(i)
    }

    fn local_st(&mut self, i: usize, v: u32) {
        self.inner.local_st(i, v);
    }

    fn smem_ld(&mut self, i: usize) -> u32 {
        self.smem_events.push(SmemEvent {
            block: self.inner.bid(),
            word: i as u32,
            thread: self.inner.global_id(),
            store: false,
        });
        self.inner.smem_ld(i)
    }

    fn smem_st(&mut self, i: usize, v: u32) {
        self.smem_events.push(SmemEvent {
            block: self.inner.bid(),
            word: i as u32,
            thread: self.inner.global_id(),
            store: true,
        });
        self.inner.smem_st(i, v);
    }
}

/// [`Kernel`] wrapper: runs the inner body under a [`SanitizeCtx`].
struct SanitizedKernel<'a, K> {
    inner: &'a K,
    shadow: &'a LaunchShadow<'a>,
}

impl<K: Kernel> Kernel for SanitizedKernel<'_, K> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let mut ctx = SanitizeCtx::new(t, self.shadow);
        self.inner.run(&mut ctx);
        ctx.commit();
    }

    fn regs_per_thread(&self) -> u32 {
        self.inner.regs_per_thread()
    }

    fn smem_per_block(&self) -> u32 {
        self.inner.smem_per_block()
    }
}

/// [`CoopKernel`] wrapper: sanitizes both the count and the emit phase.
struct SanitizedCoopKernel<'a, K> {
    inner: &'a K,
    shadow: &'a LaunchShadow<'a>,
}

impl<K: CoopKernel> CoopKernel for SanitizedCoopKernel<'_, K> {
    type Carry = K::Carry;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn count(&self, t: &mut impl KernelCtx) -> (Self::Carry, u32) {
        let mut ctx = SanitizeCtx::new(t, self.shadow);
        let r = self.inner.count(&mut ctx);
        ctx.commit();
        r
    }

    fn emit(&self, t: &mut impl KernelCtx, carry: Self::Carry, dst: u32) {
        let mut ctx = SanitizeCtx::new(t, self.shadow);
        self.inner.emit(&mut ctx, carry, dst);
        ctx.commit();
    }

    fn regs_per_thread(&self) -> u32 {
        self.inner.regs_per_thread()
    }

    fn smem_per_block(&self) -> u32 {
        self.inner.smem_per_block()
    }
}

/// A [`Backend`] decorator that runs every launch under shadow-memory
/// analysis. Execution, traces and timing are those of the wrapped
/// backend; the accumulated [`SanitizerReport`] is retrieved with
/// [`SanitizeBackend::take_report`].
pub struct SanitizeBackend<B: Backend> {
    inner: B,
    context: Mutex<String>,
    report: Mutex<SanitizerReport>,
}

impl<B: Backend> SanitizeBackend<B> {
    /// Wraps `inner` with launch analysis.
    pub fn new(inner: B) -> Self {
        Self {
            inner,
            context: Mutex::new(String::new()),
            report: Mutex::new(SanitizerReport::default()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Sets the scheme context attached to subsequent findings (shown in
    /// reports; e.g. the scheme name).
    pub fn set_context(&self, context: &str) {
        *self.context.lock().unwrap() = context.to_string();
    }

    /// Takes the accumulated report, leaving an empty one behind.
    pub fn take_report(&self) -> SanitizerReport {
        std::mem::take(&mut *self.report.lock().unwrap())
    }
}

impl<B: Backend> Backend for SanitizeBackend<B> {
    fn name(&self) -> &'static str {
        "sanitize"
    }

    fn transfer_cost_ms(&self, bytes: usize) -> Option<f64> {
        // Pricing is pass-through: the sanitizer must keep modeled times
        // bit-identical to the wrapped backend.
        self.inner.transfer_cost_ms(bytes)
    }

    fn launch<K: Kernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    ) {
        let shadow = LaunchShadow::new(mem);
        let wrapped = SanitizedKernel {
            inner: kernel,
            shadow: &shadow,
        };
        self.inner
            .launch(mem, grid, block_threads, &wrapped, profile);
        let findings = shadow.analyze(kernel.name(), &self.context.lock().unwrap());
        let mut report = self.report.lock().unwrap();
        for f in findings {
            push_dedup(&mut report.findings, f);
        }
    }

    fn launch_coop<K: CoopKernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    ) -> u32 {
        let shadow = LaunchShadow::new(mem);
        let wrapped = SanitizedCoopKernel {
            inner: kernel,
            shadow: &shadow,
        };
        let total = self
            .inner
            .launch_coop(mem, grid, block_threads, &wrapped, profile);
        let findings = shadow.analyze(kernel.name(), &self.context.lock().unwrap());
        let mut report = self.report.lock().unwrap();
        for f in findings {
            push_dedup(&mut report.findings, f);
        }
        total
    }

    fn transfer(&self, label: &'static str, bytes: usize, profile: &mut RunProfile) {
        self.inner.transfer(label, bytes, profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{NativeBackend, SimtBackend};
    use crate::config::Device;
    use crate::exec::{grid_for, ExecMode};

    fn sanitized_simt(dev: &Device) -> SanitizeBackend<SimtBackend<'_>> {
        SanitizeBackend::new(SimtBackend::new(dev, ExecMode::Deterministic))
    }

    fn launch_on<B: Backend, K: Kernel>(backend: &SanitizeBackend<B>, mem: &GpuMem, n: u32, k: &K) {
        let mut profile = RunProfile::new();
        backend.launch(mem, grid_for(n as usize, 32), 32, k, &mut profile);
    }

    /// Each thread reads its neighbor's slot, then plain-stores its own —
    /// the harmful variant of the speculative coloring pattern.
    struct PlainNeighborStore {
        data: Buffer<u32>,
    }
    impl Kernel for PlainNeighborStore {
        fn name(&self) -> &'static str {
            "plain-neighbor-store"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            let n = self.data.len();
            if i < n {
                let _ = t.ld(self.data, (i + 1) % n);
                t.st(self.data, i, 100 + i as u32);
            }
        }
    }

    /// Same access pattern, but the store is warp-deferred (`st_warp`) —
    /// the paper's benign speculative race.
    struct WarpNeighborStore {
        data: Buffer<u32>,
    }
    impl Kernel for WarpNeighborStore {
        fn name(&self) -> &'static str {
            "warp-neighbor-store"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            let n = self.data.len();
            if i < n {
                let _ = t.ld(self.data, (i + 1) % n);
                t.st_warp(self.data, i, 100 + i as u32);
            }
        }
    }

    #[test]
    fn plain_store_race_is_harmful() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let data = mem.alloc::<u32>(8);
        mem.set_label(data, "color");
        let backend = sanitized_simt(&dev);
        backend.set_context("test-scheme");
        launch_on(&backend, &mem, 8, &PlainNeighborStore { data });
        let report = backend.take_report();
        assert!(!report.is_clean(), "plain st must be flagged:\n{report}");
        let f = report.harmful().next().unwrap();
        assert_eq!(f.kind, FindingKind::LdStRace);
        assert_eq!(f.buffer, "color");
        assert_eq!(f.context, "test-scheme");
        assert_eq!(f.kernel, "plain-neighbor-store");
        assert_ne!(f.threads.0, f.threads.1);
    }

    #[test]
    fn st_warp_race_is_expected_benign() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let data = mem.alloc::<u32>(8);
        mem.set_label(data, "color");
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 8, &WarpNeighborStore { data });
        let report = backend.take_report();
        assert!(report.is_clean(), "st_warp is benign:\n{report}");
        let f = report.benign().next().expect("benign race reported");
        assert_eq!(f.kind, FindingKind::WarpSpecRace);
        assert_eq!(f.buffer, "color");
    }

    #[test]
    fn native_backend_is_sanitizable_too() {
        let mut mem = GpuMem::new();
        let data = mem.alloc::<u32>(8);
        let backend = SanitizeBackend::new(NativeBackend::new());
        launch_on(&backend, &mem, 8, &PlainNeighborStore { data });
        let report = backend.take_report();
        assert!(!report.is_clean());
        assert_eq!(report.harmful().next().unwrap().kind, FindingKind::LdStRace);
    }

    struct LdgOfWritten {
        data: Buffer<u32>,
    }
    impl Kernel for LdgOfWritten {
        fn name(&self) -> &'static str {
            "ldg-of-written"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            if i < self.data.len() {
                // Each thread touches only its own word, so there is no
                // per-address race — only the buffer-level ldg rule fires.
                let v = t.ldg(self.data, i);
                t.st(self.data, i, v + 1);
            }
        }
    }

    #[test]
    fn ldg_of_buffer_written_same_launch_is_flagged() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let data = mem.alloc::<u32>(4);
        mem.set_label(data, "row-offsets");
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 4, &LdgOfWritten { data });
        let report = backend.take_report();
        let kinds: Vec<_> = report.findings.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec![FindingKind::LdgCoherence], "report:\n{report}");
        assert_eq!(report.findings[0].buffer, "row-offsets");
    }

    struct OobLoad {
        data: Buffer<u32>,
    }
    impl Kernel for OobLoad {
        fn name(&self) -> &'static str {
            "oob-load"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            if t.global_id() == 0 {
                let v = t.ld(self.data, 7); // len is 4
                t.st(self.data, v as usize, v); // trapped load returns 0
            }
        }
    }

    #[test]
    fn out_of_bounds_is_flagged_with_exact_word() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let data = mem.alloc::<u32>(4);
        mem.set_label(data, "colored");
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 4, &OobLoad { data });
        let report = backend.take_report();
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::OutOfBounds)
            .expect("oob finding");
        assert_eq!(f.buffer, "colored");
        assert_eq!(f.word, 7);
        // The trapped load returned 0, so the follow-up store hit word 0.
        assert_eq!(mem.load(data, 0), 0);
    }

    struct ReadSlot {
        data: Buffer<u32>,
        slot: usize,
    }
    impl Kernel for ReadSlot {
        fn name(&self) -> &'static str {
            "read-slot"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            if t.global_id() == 0 {
                let _ = t.ld(self.data, self.slot);
            }
        }
    }

    #[test]
    fn read_before_init_is_flagged_with_exact_word() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let data = mem.alloc_uninit::<u32>(8);
        mem.set_label(data, "worklist");
        mem.write_slice(data, &[1, 2, 3, 4]); // h2d seeds words 0..4
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 1, &ReadSlot { data, slot: 2 });
        assert!(backend.take_report().findings.is_empty());
        launch_on(&backend, &mem, 1, &ReadSlot { data, slot: 5 });
        let report = backend.take_report();
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::UninitRead)
            .expect("uninit finding");
        assert_eq!(f.buffer, "worklist");
        assert_eq!(f.word, 5);
        // A kernel store initializes the word for later launches.
        mem.store(data, 5, 9);
        launch_on(&backend, &mem, 1, &ReadSlot { data, slot: 5 });
        assert!(backend.take_report().findings.is_empty());
    }

    struct MixedAtomicPlain {
        flag: Buffer<u32>,
    }
    impl Kernel for MixedAtomicPlain {
        fn name(&self) -> &'static str {
            "mixed-atomic-plain"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            match t.global_id() {
                0 => {
                    t.atomic_add(self.flag, 0, 1);
                }
                1 => t.st(self.flag, 0, 7),
                _ => {}
            }
        }
    }

    #[test]
    fn mixed_atomic_and_plain_store_is_flagged() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let flag = mem.alloc::<u32>(1);
        mem.set_label(flag, "flag");
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 2, &MixedAtomicPlain { flag });
        let report = backend.take_report();
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::MixedAtomic)
            .expect("mixed-atomic finding");
        assert_eq!(f.buffer, "flag");
        assert_eq!(f.word, 0);
    }

    struct SmemClash;
    impl Kernel for SmemClash {
        fn name(&self) -> &'static str {
            "smem-clash"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            t.smem_st(0, t.tid());
        }
        fn smem_per_block(&self) -> u32 {
            16
        }
    }

    #[test]
    fn shared_memory_race_is_flagged() {
        let dev = Device::tiny();
        let mem = GpuMem::new();
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 4, &SmemClash);
        let report = backend.take_report();
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::SmemRace)
            .expect("smem finding");
        assert_eq!(f.buffer, "smem");
        assert_eq!(f.word, 0);
        assert_ne!(f.threads.0, f.threads.1);
    }

    struct UniformFlagWrite {
        flag: Buffer<u32>,
    }
    impl Kernel for UniformFlagWrite {
        fn name(&self) -> &'static str {
            "uniform-flag-write"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            t.st(self.flag, 0, 1);
        }
    }

    #[test]
    fn same_value_waw_is_suppressed() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let flag = mem.alloc::<u32>(1);
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 8, &UniformFlagWrite { flag });
        let report = backend.take_report();
        assert!(
            report.findings.is_empty(),
            "idempotent flag writes are the intended idiom:\n{report}"
        );
    }

    struct RacyCoop {
        data: Buffer<u32>,
        out: Buffer<u32>,
    }
    impl CoopKernel for RacyCoop {
        type Carry = u32;
        fn name(&self) -> &'static str {
            "racy-coop"
        }
        fn count(&self, t: &mut impl KernelCtx) -> (u32, u32) {
            let i = t.global_id() as usize;
            if i < self.data.len() {
                (t.ld(self.data, i), 1)
            } else {
                (0, 0)
            }
        }
        fn emit(&self, t: &mut impl KernelCtx, carry: u32, _dst: u32) {
            // Bug: every thread emits to slot 0 with its own value.
            t.st(self.out, 0, carry + t.global_id());
        }
    }

    #[test]
    fn coop_emit_phase_is_analyzed() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let data = mem.alloc_from_slice(&[5u32, 6, 7, 8]);
        let out = mem.alloc::<u32>(4);
        mem.set_label(out, "compacted");
        let backend = sanitized_simt(&dev);
        let mut profile = RunProfile::new();
        let total = backend.launch_coop(
            &mem,
            grid_for(4, 32),
            32,
            &RacyCoop { data, out },
            &mut profile,
        );
        assert_eq!(total, 4);
        let report = backend.take_report();
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::StStRace)
            .expect("coop emit race");
        assert_eq!(f.buffer, "compacted");
        assert_eq!(f.word, 0);
    }

    #[test]
    fn reports_merge_and_dedup_across_launches() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let data = mem.alloc::<u32>(8);
        mem.set_label(data, "color");
        let backend = sanitized_simt(&dev);
        launch_on(&backend, &mem, 8, &PlainNeighborStore { data });
        launch_on(&backend, &mem, 8, &PlainNeighborStore { data });
        let report = backend.take_report();
        let races: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::LdStRace)
            .collect();
        assert_eq!(races.len(), 1, "deduplicated per kind/kernel/buffer");
        assert!(races[0].occurrences >= 2);
        // take_report leaves an empty report behind.
        assert!(backend.take_report().findings.is_empty());
        // Display renders one line per finding plus a header.
        let text = format!("{report}");
        assert!(text.contains("HARMFUL"));
        assert!(text.contains("plain ld/st race"));
    }

    #[test]
    fn merge_combines_reports_from_two_devices() {
        let mk = |occ| SanitizerReport {
            findings: vec![Finding {
                kind: FindingKind::WarpSpecRace,
                context: "T-base".into(),
                kernel: "topo-color".into(),
                buffer: "color".into(),
                word: 3,
                threads: (1, 2),
                occurrences: occ,
            }],
        };
        let mut a = mk(2);
        a.merge(mk(3));
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].occurrences, 5);
        assert!(a.is_clean());
    }
}

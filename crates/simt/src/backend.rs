//! Execution backends: one kernel source, two ways to run it.
//!
//! A [`Backend`] owns the three things a scheme driver needs from the
//! execution layer: launching [`Kernel`]s, launching [`CoopKernel`]s, and
//! charging PCIe transfers into the run's [`RunProfile`]. Two
//! implementations:
//!
//! * [`SimtBackend`] — the paper-faithful path: the tracing simulator with
//!   its analytic timing model. Deterministic mode is bit-stable.
//! * [`NativeBackend`] — the production path: the same kernels over rayon
//!   at host speed. Kernel phases record *wall-clock* time as
//!   [`crate::profile::Phase::Host`] entries; transfers are free (there is
//!   no PCIe on the host path).

use crate::config::Device;
use crate::exec::{launch, launch_coop, ExecMode};
use crate::kernel::{CoopKernel, Kernel};
use crate::mem::GpuMem;
use crate::native::{launch_coop_native, launch_native};
use crate::profile::RunProfile;
use crate::xfer;

/// The execution surface scheme drivers are written against.
pub trait Backend: Sync {
    /// Short backend name ("simt" / "native") for reports and CLIs.
    fn name(&self) -> &'static str;

    /// Launches `kernel` over `grid` blocks of `block_threads` threads,
    /// recording its cost (modeled or wall-clock) into `profile`.
    fn launch<K: Kernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    );

    /// Launches a cooperative kernel (count → block scan → emit); returns
    /// the total number of emitted items.
    fn launch_coop<K: CoopKernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    ) -> u32;

    /// Charges a host↔device transfer of `bytes` into `profile`. A no-op
    /// on backends without a modeled interconnect.
    fn transfer(&self, label: &'static str, bytes: usize, profile: &mut RunProfile);

    /// The modeled cost of moving `bytes` over this device's interconnect,
    /// without recording anything — `None` when the backend has no modeled
    /// interconnect (the native path). Callers that overlap copies with
    /// compute (see [`CopyStream`]) price transfers through this hook and
    /// record only the non-overlapped tail themselves.
    fn transfer_cost_ms(&self, _bytes: usize) -> Option<f64> {
        None
    }
}

/// One device's asynchronous copy stream, for overlapping transfers with
/// compute in modeled time.
///
/// Real multi-GPU code issues `cudaMemcpyPeerAsync` on a copy stream and
/// keeps compute running on the default stream; the copy costs wall-clock
/// time only where it outlasts the compute it hides behind. This models
/// exactly that, in the simulator's virtual-time world: [`CopyStream::issue`]
/// starts a copy once its producer data is ready *and* the previous copy on
/// the stream has drained (one link, copies serialize), and returns the
/// landing time. The caller compares the landing time against the consuming
/// device's compute clock and charges only `max(0, landed - clock)` — the
/// non-overlapped tail — against the critical path.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopyStream {
    /// Virtual time at which the last issued copy finishes landing.
    drained_ms: f64,
}

impl CopyStream {
    /// A fresh stream with no in-flight copies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a copy whose source data becomes available at `ready_ms`
    /// and which occupies the link for `cost_ms`; returns the virtual
    /// time at which the copy has fully landed on the destination.
    pub fn issue(&mut self, ready_ms: f64, cost_ms: f64) -> f64 {
        let start = ready_ms.max(self.drained_ms);
        self.drained_ms = start + cost_ms;
        self.drained_ms
    }

    /// Virtual time at which every issued copy has landed.
    pub fn drained_ms(&self) -> f64 {
        self.drained_ms
    }
}

/// The tracing simulator as a backend (the paper-faithful path).
#[derive(Debug, Clone, Copy)]
pub struct SimtBackend<'d> {
    /// The simulated device (timing model parameters).
    pub dev: &'d Device,
    /// Host-thread mapping of the simulation.
    pub mode: ExecMode,
}

impl<'d> SimtBackend<'d> {
    /// A backend simulating `dev` under `mode`.
    pub fn new(dev: &'d Device, mode: ExecMode) -> Self {
        Self { dev, mode }
    }
}

impl Backend for SimtBackend<'_> {
    fn name(&self) -> &'static str {
        "simt"
    }

    fn launch<K: Kernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    ) {
        profile.kernel(launch(
            mem,
            self.dev,
            self.mode,
            grid,
            block_threads,
            kernel,
        ));
    }

    fn launch_coop<K: CoopKernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    ) -> u32 {
        let (stats, total) = launch_coop(mem, self.dev, self.mode, grid, block_threads, kernel);
        profile.kernel(stats);
        total
    }

    fn transfer(&self, label: &'static str, bytes: usize, profile: &mut RunProfile) {
        profile.transfer(label, bytes, xfer::transfer_ms(self.dev, bytes));
    }

    fn transfer_cost_ms(&self, bytes: usize) -> Option<f64> {
        Some(xfer::transfer_ms(self.dev, bytes))
    }
}

/// The rayon host path as a backend (the production path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeBackend;

impl NativeBackend {
    /// A native backend.
    pub fn new() -> Self {
        Self
    }
}

impl Backend for NativeBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn launch<K: Kernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    ) {
        let t0 = std::time::Instant::now();
        launch_native(mem, grid, block_threads, kernel);
        profile.host(kernel.name(), t0.elapsed().as_secs_f64() * 1e3);
    }

    fn launch_coop<K: CoopKernel>(
        &self,
        mem: &GpuMem,
        grid: u32,
        block_threads: u32,
        kernel: &K,
        profile: &mut RunProfile,
    ) -> u32 {
        let t0 = std::time::Instant::now();
        let total = launch_coop_native(mem, grid, block_threads, kernel);
        profile.host(kernel.name(), t0.elapsed().as_secs_f64() * 1e3);
        total
    }

    fn transfer(&self, _label: &'static str, _bytes: usize, _profile: &mut RunProfile) {}
}

/// A fleet of backend instances modeling P devices, one graph shard each.
///
/// The sharded driver runs its per-shard work on `device(p)` and prices
/// per-device ghost-frontier traffic through
/// [`ShardedBackend::link_cost_ms`]: each device owns an independent
/// inbound link (its own copy stream), so concurrent exchanges into
/// different devices proceed in parallel and only each link's
/// non-overlapped tail lands on the critical path (see [`CopyStream`]).
/// On the modeled K20c-era hardware peer-to-peer copies traverse the same
/// PCIe fabric as host copies, so [`SimtBackend`] prices them
/// identically, while [`NativeBackend`] keeps them free (shards share one
/// address space on the host path). [`ShardedBackend::exchange`] remains
/// for callers charging a serialized aggregate copy.
pub struct ShardedBackend<B: Backend> {
    devices: Vec<B>,
}

impl<B: Backend> ShardedBackend<B> {
    /// A fleet over the given device backends.
    ///
    /// # Panics
    /// Panics on an empty fleet — the sharded driver needs at least one
    /// device.
    pub fn new(devices: Vec<B>) -> Self {
        assert!(!devices.is_empty(), "a sharded fleet needs >= 1 device");
        Self { devices }
    }

    /// A homogeneous fleet of `n` devices built by `make(device_index)`.
    pub fn uniform(n: usize, make: impl FnMut(usize) -> B) -> Self {
        Self::new((0..n.max(1)).map(make).collect())
    }

    /// Number of devices in the fleet.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The backend instance for shard/device `p`.
    pub fn device(&self, p: usize) -> &B {
        &self.devices[p]
    }

    /// Charges a modeled device-to-device exchange of `bytes` into
    /// `profile` (free on backends without a modeled interconnect).
    pub fn exchange(&self, label: &'static str, bytes: usize, profile: &mut RunProfile) {
        self.devices[0].transfer(label, bytes, profile);
    }

    /// The modeled cost of landing `bytes` on device `p`'s inbound link,
    /// or `None` when the fleet's backends have no modeled interconnect.
    pub fn link_cost_ms(&self, p: usize, bytes: usize) -> Option<f64> {
        self.devices[p].transfer_cost_ms(bytes)
    }
}

/// Which backend to run a scheme on — the selection that rides through
/// `ColorOptions` and the bench CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The tracing simulator ([`SimtBackend`]), the paper-faithful default.
    #[default]
    Simt,
    /// The rayon host path ([`NativeBackend`]).
    Native,
    /// The tracing simulator wrapped in the launch sanitizer
    /// ([`crate::sanitize::SanitizeBackend`]): identical execution and
    /// timing, plus shadow-memory race/`ldg`/bounds analysis per launch.
    Sanitize,
}

impl BackendKind {
    /// Every selectable backend.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Simt,
        BackendKind::Native,
        BackendKind::Sanitize,
    ];

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Simt => "simt",
            BackendKind::Native => "native",
            BackendKind::Sanitize => "sanitize",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| {
                format!("unknown backend {s:?} (expected \"simt\", \"native\" or \"sanitize\")")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::grid_for;
    use crate::kernel::KernelCtx;
    use crate::mem::Buffer;
    use crate::Phase;

    struct AddOne {
        data: Buffer<u32>,
    }

    impl Kernel for AddOne {
        fn name(&self) -> &'static str {
            "add-one"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            if i < self.data.len() {
                let v = t.ld(self.data, i);
                t.st(self.data, i, v + 1);
            }
        }
    }

    fn run_on<B: Backend>(backend: &B) -> (Vec<u32>, RunProfile) {
        let mut mem = GpuMem::new();
        let d = mem.alloc_from_slice(&[10u32, 20, 30, 40]);
        let mut profile = RunProfile::new();
        backend.launch(
            &mem,
            grid_for(4, 128),
            128,
            &AddOne { data: d },
            &mut profile,
        );
        backend.transfer("d2h", 16, &mut profile);
        (mem.read_vec(d), profile)
    }

    #[test]
    fn both_backends_execute_the_same_kernel() {
        let dev = Device::tiny();
        let (simt_vals, simt_prof) = run_on(&SimtBackend::new(&dev, ExecMode::Deterministic));
        let (native_vals, native_prof) = run_on(&NativeBackend::new());
        assert_eq!(simt_vals, vec![11, 21, 31, 41]);
        assert_eq!(native_vals, simt_vals);
        // Simulator: one Kernel phase + a charged transfer.
        assert!(matches!(simt_prof.phases[0], Phase::Kernel(_)));
        assert!(simt_prof.transfer_ms() > 0.0);
        // Native: wall-clock Host phase, transfers free.
        assert!(matches!(native_prof.phases[0], Phase::Host { .. }));
        assert_eq!(native_prof.transfer_ms(), 0.0);
        assert_eq!(native_prof.num_kernels(), 0);
    }

    #[test]
    fn sharded_fleet_exposes_devices_and_charges_exchanges() {
        let dev = Device::tiny();
        let fleet = ShardedBackend::uniform(3, |_| SimtBackend::new(&dev, ExecMode::Deterministic));
        assert_eq!(fleet.num_devices(), 3);
        assert_eq!(fleet.device(2).name(), "simt");
        let mut profile = RunProfile::new();
        fleet.exchange("ghost frontier (d2d)", 4096, &mut profile);
        assert!(profile.transfer_ms() > 0.0);
        assert!(matches!(
            &profile.phases[0],
            Phase::Transfer { bytes: 4096, .. }
        ));

        // Native fleets keep exchanges free: one address space.
        let native = ShardedBackend::uniform(2, |_| NativeBackend::new());
        let mut np = RunProfile::new();
        native.exchange("ghost frontier (d2d)", 4096, &mut np);
        assert!(np.phases.is_empty());
    }

    #[test]
    fn transfer_cost_hook_prices_only_modeled_interconnects() {
        let dev = Device::tiny();
        let simt = SimtBackend::new(&dev, ExecMode::Deterministic);
        // The pricing hook matches what `transfer` would charge...
        let cost = simt.transfer_cost_ms(4096).expect("simt models PCIe");
        let mut profile = RunProfile::new();
        simt.transfer("d2d", 4096, &mut profile);
        assert_eq!(profile.transfer_ms(), cost);
        // ...is monotone in bytes, and absent on the native path.
        assert!(simt.transfer_cost_ms(1 << 20).unwrap() > cost);
        assert_eq!(NativeBackend::new().transfer_cost_ms(4096), None);

        let fleet = ShardedBackend::uniform(2, |_| SimtBackend::new(&dev, ExecMode::Deterministic));
        assert_eq!(fleet.link_cost_ms(1, 4096), Some(cost));
        let native = ShardedBackend::uniform(2, |_| NativeBackend::new());
        assert_eq!(native.link_cost_ms(0, 4096), None);
    }

    #[test]
    fn copy_stream_overlaps_and_serializes() {
        let mut s = CopyStream::new();
        // First copy: ready at t=2, takes 3ms → lands at 5.
        assert_eq!(s.issue(2.0, 3.0), 5.0);
        // Second copy ready earlier, but the link is busy until 5.
        assert_eq!(s.issue(1.0, 2.0), 7.0);
        // Third copy ready after the link drains: starts at its ready time.
        assert_eq!(s.issue(10.0, 1.0), 11.0);
        assert_eq!(s.drained_ms(), 11.0);
        // Non-overlapped tail: a consumer whose compute clock already
        // passed the landing time pays nothing.
        let landed = s.drained_ms();
        assert_eq!((landed - 12.0f64).max(0.0), 0.0);
    }

    #[test]
    fn uniform_fleet_never_empty() {
        let fleet = ShardedBackend::uniform(0, |_| NativeBackend::new());
        assert_eq!(fleet.num_devices(), 1);
    }

    #[test]
    fn backend_kind_round_trips() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>(), Ok(kind));
        }
        assert!("cuda".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Simt);
    }
}

//! Host ↔ device transfer model (PCIe).
//!
//! The 3-step GM baseline (§II-C) repeatedly ships conflict data back to
//! the CPU and resolved colors back to the GPU; the paper's own design
//! removes those transfers entirely. This module prices them.

use crate::config::Device;

/// Direction of a transfer (same cost model both ways on PCIe 2.0, kept
/// for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// Milliseconds to move `bytes` over PCIe, including the fixed
/// per-transfer latency.
pub fn transfer_ms(dev: &Device, bytes: usize) -> f64 {
    dev.pcie_latency_us * 1e-3 + bytes as f64 / (dev.pcie_bw_gbps * 1e9) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_costs_latency_only() {
        let dev = Device::k20c();
        assert!((transfer_ms(&dev, 0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let dev = Device::k20c();
        // 60 MB over 6 GB/s = 10 ms ≫ 10 us latency.
        let t = transfer_ms(&dev, 60_000_000);
        assert!((t - 10.01).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn monotone_in_size() {
        let dev = Device::k20c();
        assert!(transfer_ms(&dev, 1000) < transfer_ms(&dev, 100_000));
    }
}

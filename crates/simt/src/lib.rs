//! # gcol-simt — a deterministic SIMT GPU simulator
//!
//! The substrate that replaces the paper's NVIDIA K20c: CUDA-style kernels
//! written in safe Rust execute *functionally* against a shared atomic
//! memory arena (so the speculative races of the GM coloring scheme are
//! real), while every memory operation is traced and replayed through an
//! analytic timing model — warp coalescing, per-SM read-only cache and L2
//! slice, DRAM bandwidth, atomic serialization, occupancy-based latency
//! hiding in the spirit of Hong & Kim's MWP/CWP model (ISCA'09).
//!
//! ## Layers
//!
//! * [`mem`] — device memory arena and typed [`Buffer`]s.
//! * [`kernel`] — [`Kernel`] / [`CoopKernel`] traits, the backend-agnostic
//!   [`KernelCtx`] surface and its tracing impl [`ThreadCtx`]
//!   (`ld`/`ldg`/`st`/atomics/local memory, Fig. 4 of the paper).
//! * [`exec`] — [`launch`] / [`launch_coop`]: round-robin block→SM
//!   scheduling, per-SM deterministic timing, rayon across SMs.
//! * [`native`] — [`NativeBackend`]'s executor: the same kernels over
//!   rayon at host speed, no tracing.
//! * [`backend`] — the [`Backend`] abstraction selecting between the two.
//! * [`sanitize`] — [`SanitizeBackend`], a cuda-memcheck-style decorator
//!   for either backend: shadow-memory race, `ldg`-coherence, bounds and
//!   initialization analysis per launch, reported as a
//!   [`SanitizerReport`].
//! * [`timing`] — caches, occupancy, the cycle model, [`KernelStats`]
//!   (with the stall breakdown and achieved-of-peak metrics of Fig. 3).
//! * [`xfer`] / [`cpu`] — PCIe and host-CPU cost models (the 3-step GM
//!   baseline and the sequential reference live in the same model).
//! * [`profile`] — per-run timelines combining kernels, transfers and
//!   host phases.
//!
//! ## Example: SAXPY on the simulated K20c
//!
//! ```
//! use gcol_simt::{Device, ExecMode, GpuMem, Kernel, KernelCtx, launch, grid_for};
//! use gcol_simt::mem::Buffer;
//!
//! struct Saxpy { a: f32, x: Buffer<f32>, y: Buffer<f32> }
//! impl Kernel for Saxpy {
//!     fn name(&self) -> &'static str { "saxpy" }
//!     fn run(&self, t: &mut impl KernelCtx) {
//!         let i = t.global_id() as usize;
//!         if i < self.x.len() {
//!             let v = t.ldg(self.x, i);
//!             let w = t.ld(self.y, i);
//!             t.alu(2);
//!             t.st(self.y, i, self.a * v + w);
//!         }
//!     }
//! }
//!
//! let dev = Device::k20c();
//! let mut mem = GpuMem::new();
//! let x = mem.alloc_from_slice(&[1.0f32, 2.0, 3.0]);
//! let y = mem.alloc_from_slice(&[10.0f32, 20.0, 30.0]);
//! let stats = launch(&mem, &dev, ExecMode::Deterministic,
//!                    grid_for(3, 128), 128, &Saxpy { a: 2.0, x, y });
//! assert_eq!(mem.read_vec(y), vec![12.0, 24.0, 36.0]);
//! assert!(stats.time_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod config;
pub mod cpu;
pub mod exec;
pub mod kernel;
pub mod mem;
pub mod native;
pub mod profile;
pub mod sanitize;
pub mod timing;
pub mod trace;
pub mod xfer;

pub use backend::{Backend, BackendKind, CopyStream, NativeBackend, ShardedBackend, SimtBackend};
pub use config::Device;
pub use cpu::CpuModel;
pub use exec::{grid_for, launch, launch_coop, ExecMode};
pub use kernel::{CoopKernel, Kernel, KernelCtx, ThreadCtx};
pub use mem::{Buffer, GpuMem, Word};
pub use native::{launch_coop_native, launch_native, NativeCtx};
pub use profile::{Phase, RunProfile};
pub use sanitize::{Finding, FindingKind, SanitizeBackend, SanitizeCtx, SanitizerReport};
pub use timing::occupancy::{occupancy, Limiter, Occupancy};
pub use timing::{KernelStats, StallBreakdown};

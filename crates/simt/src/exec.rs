//! The kernel executor: functional SIMT execution + timing accounting.
//!
//! Blocks are assigned to SMs round-robin (`sm = block_id % num_sms`), and
//! each SM is simulated independently — its own read-only cache and L2
//! slice — so per-SM timing is deterministic regardless of host thread
//! scheduling. Two execution modes:
//!
//! * [`ExecMode::Parallel`] — SMs simulated concurrently with rayon. The
//!   *timing* stays deterministic; *functional* values may vary across runs
//!   wherever the algorithm itself races (exactly the speculative races the
//!   GM scheme tolerates on real hardware).
//! * [`ExecMode::Deterministic`] — blocks execute in increasing id order on
//!   one host thread (still attributed to their SM's timing state), so
//!   results are bit-stable. Tests use this mode.

#![allow(clippy::too_many_arguments, clippy::needless_range_loop)]

use crate::config::Device;
use crate::kernel::{CoopKernel, Kernel, ThreadCtx};
use crate::mem::GpuMem;
use crate::timing::cache::Cache;
use crate::timing::occupancy::occupancy;
use crate::timing::{finalize, KernelStats, SmState};
use rayon::prelude::*;

/// How the simulator maps SM simulation onto host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One rayon task per SM; fastest, algorithm-level races are real.
    #[default]
    Parallel,
    /// Single-threaded, block-id order; bit-stable functional results.
    Deterministic,
}

/// Builds the chip-wide L2 used in `Deterministic` mode.
fn shared_l2(dev: &Device) -> Cache {
    Cache::new(dev.l2_bytes, dev.l2_line_bytes, dev.l2_ways)
}

/// Builds the per-SM L2 slice used in `Parallel` mode.
fn sliced_l2(dev: &Device) -> Cache {
    Cache::new(dev.l2_bytes / dev.num_sms, dev.l2_line_bytes, dev.l2_ways)
}

/// Runs every thread of `block_id`, warp by warp, accumulating timing into
/// `sm`. Threads record straight into the context's shared [`WarpTrace`]
/// (reset per warp, one lane opened per thread), so the warp loop touches
/// no per-lane buffers and performs no steady-state allocation.
fn run_block<K: Kernel>(
    dev: &Device,
    kernel: &K,
    block_id: u32,
    grid: u32,
    block_threads: u32,
    sm: &mut SmState,
    l2: &mut Cache,
    ctx: &mut ThreadCtx<'_>,
) {
    ctx.bid = block_id;
    ctx.bdim = block_threads;
    ctx.gdim = grid;
    ctx.reset_smem(kernel.smem_per_block() as usize / 4);
    let ws = dev.warp_size;
    let mut warp_start = 0;
    while warp_start < block_threads {
        let active = ws.min(block_threads - warp_start);
        ctx.trace.reset();
        for lane in 0..active {
            ctx.tid = warp_start + lane;
            ctx.trace.begin_lane();
            kernel.run(ctx);
        }
        sm.account_warp(dev, l2, &ctx.trace);
        ctx.flush_deferred();
        warp_start += ws;
    }
}

/// Launches a [`Kernel`] over `grid` blocks of `block_threads` threads.
pub fn launch<K: Kernel>(
    mem: &GpuMem,
    dev: &Device,
    mode: ExecMode,
    grid: u32,
    block_threads: u32,
    kernel: &K,
) -> KernelStats {
    assert!((1..=1024).contains(&block_threads), "bad block size");
    let occ = occupancy(
        dev,
        grid.max(1),
        block_threads,
        kernel.regs_per_thread(),
        kernel.smem_per_block(),
    );
    let n_sms = dev.num_sms;
    let (sms, l2_stats): (Vec<SmState>, (u64, u64)) = match mode {
        ExecMode::Parallel => {
            let per_sm: Vec<(SmState, (u64, u64))> = (0..n_sms)
                .into_par_iter()
                .map(|sm_id| {
                    let mut sm = SmState::new(dev);
                    let mut l2 = sliced_l2(dev);
                    let mut ctx = ThreadCtx::new(mem);
                    let mut bid = sm_id;
                    while bid < grid {
                        run_block(
                            dev,
                            kernel,
                            bid,
                            grid,
                            block_threads,
                            &mut sm,
                            &mut l2,
                            &mut ctx,
                        );
                        bid += n_sms;
                    }
                    (sm, l2.stats())
                })
                .collect();
            let mut stats = (0u64, 0u64);
            let sms = per_sm
                .into_iter()
                .map(|(sm, (h, m))| {
                    stats.0 += h;
                    stats.1 += m;
                    sm
                })
                .collect();
            (sms, stats)
        }
        ExecMode::Deterministic => {
            let mut sms: Vec<SmState> = (0..n_sms).map(|_| SmState::new(dev)).collect();
            let mut l2 = shared_l2(dev);
            let mut ctx = ThreadCtx::new(mem);
            for bid in 0..grid {
                let sm = &mut sms[(bid % n_sms) as usize];
                run_block(dev, kernel, bid, grid, block_threads, sm, &mut l2, &mut ctx);
            }
            (sms, l2.stats())
        }
    };
    finalize(dev, kernel.name(), grid, block_threads, occ, &sms, l2_stats)
}

/// Per-block result of a coop kernel's count phase.
struct BlockCount<C> {
    /// (carry, exclusive in-block offset) per thread, in tid order.
    entries: Vec<(C, u32)>,
    total: u32,
}

/// An SM's blocks, tagged with their block ids (Parallel-mode plumbing).
type SmBlocks<C> = Vec<(u32, BlockCount<C>)>;

/// Launches a [`CoopKernel`]: count phase → per-block exclusive scan +
/// one global atomic per block → emit phase. Returns the kernel stats and
/// the total number of emitted items. Output positions follow block-id
/// order, preserving input order exactly as prefix-sum compaction does
/// (Fig. 5 of the paper).
pub fn launch_coop<K: CoopKernel>(
    mem: &GpuMem,
    dev: &Device,
    mode: ExecMode,
    grid: u32,
    block_threads: u32,
    kernel: &K,
) -> (KernelStats, u32) {
    assert!((1..=1024).contains(&block_threads), "bad block size");
    // The block scan needs one shared-memory word per thread.
    let smem = kernel.smem_per_block() + 4 * block_threads;
    let occ = occupancy(
        dev,
        grid.max(1),
        block_threads,
        kernel.regs_per_thread(),
        smem,
    );
    let n_sms = dev.num_sms;

    // --- Phase A: count, per SM. -----------------------------------------
    let count_block = |sm: &mut SmState,
                       l2: &mut Cache,
                       ctx: &mut ThreadCtx<'_>,
                       bid: u32|
     -> BlockCount<K::Carry> {
        ctx.bid = bid;
        ctx.bdim = block_threads;
        ctx.gdim = grid;
        ctx.reset_smem(kernel.smem_per_block() as usize / 4);
        let ws = dev.warp_size;
        let mut entries: Vec<(K::Carry, u32)> = Vec::with_capacity(block_threads as usize);
        let mut running = 0u32;
        let mut warp_start = 0;
        while warp_start < block_threads {
            let active = ws.min(block_threads - warp_start);
            ctx.trace.reset();
            for lane in 0..active {
                ctx.tid = warp_start + lane;
                ctx.trace.begin_lane();
                let (carry, req) = kernel.count(ctx);
                entries.push((carry, running));
                running += req;
            }
            sm.account_warp(dev, l2, &ctx.trace);
            ctx.flush_deferred();
            warp_start += ws;
        }
        sm.charge_block_scan(dev, block_threads);
        BlockCount {
            entries,
            total: running,
        }
    };

    // Per-SM L2 handles: in Parallel mode each SM owns a slice that must
    // survive from the count phase to the emit phase; in Deterministic
    // mode a single chip-wide cache is shared (slot 0).
    let mut l2s: Vec<Cache> = match mode {
        ExecMode::Parallel => (0..n_sms).map(|_| sliced_l2(dev)).collect(),
        ExecMode::Deterministic => vec![shared_l2(dev)],
    };

    type Counts<C> = Vec<Option<BlockCount<C>>>;
    let (mut sm_states, mut block_counts): (Vec<SmState>, Counts<K::Carry>) = match mode {
        ExecMode::Parallel => {
            let per_sm: Vec<(SmState, Cache, SmBlocks<K::Carry>)> = (0..n_sms)
                .into_par_iter()
                .zip(std::mem::take(&mut l2s))
                .map(|(sm_id, mut l2)| {
                    let mut sm = SmState::new(dev);
                    let mut ctx = ThreadCtx::new(mem);
                    let mut out = Vec::new();
                    let mut bid = sm_id;
                    while bid < grid {
                        let bc = count_block(&mut sm, &mut l2, &mut ctx, bid);
                        out.push((bid, bc));
                        bid += n_sms;
                    }
                    (sm, l2, out)
                })
                .collect();
            let mut sms = Vec::with_capacity(n_sms as usize);
            let mut counts: Vec<Option<BlockCount<K::Carry>>> = (0..grid).map(|_| None).collect();
            for (sm, l2, blocks) in per_sm {
                sms.push(sm);
                l2s.push(l2);
                for (bid, bc) in blocks {
                    counts[bid as usize] = Some(bc);
                }
            }
            (sms, counts)
        }
        ExecMode::Deterministic => {
            let mut sms: Vec<SmState> = (0..n_sms).map(|_| SmState::new(dev)).collect();
            let mut ctx = ThreadCtx::new(mem);
            let mut counts: Vec<Option<BlockCount<K::Carry>>> = (0..grid).map(|_| None).collect();
            for bid in 0..grid {
                let sm = &mut sms[(bid % n_sms) as usize];
                counts[bid as usize] = Some(count_block(sm, &mut l2s[0], &mut ctx, bid));
            }
            (sms, counts)
        }
    };

    // --- Block bases: exclusive scan over block totals in id order. ------
    // On hardware this is one atomicAdd per block on a global counter;
    // scanning in block-id order makes the output layout deterministic
    // while the timing charge (one atomic + L2 round trip per block) is
    // identical.
    let mut bases = Vec::with_capacity(grid as usize);
    let mut total = 0u32;
    for bc in block_counts.iter() {
        bases.push(total);
        total += bc.as_ref().map_or(0, |b| b.total);
    }
    for bid in 0..grid {
        sm_states[(bid % n_sms) as usize].charge_block_base_atomic(dev);
    }

    // --- Phase C: emit, per SM. -------------------------------------------
    let emit_block = |sm: &mut SmState,
                      l2: &mut Cache,
                      ctx: &mut ThreadCtx<'_>,
                      bid: u32,
                      bc: BlockCount<K::Carry>| {
        ctx.bid = bid;
        ctx.bdim = block_threads;
        ctx.gdim = grid;
        // Shared memory does not persist between the count and emit phases
        // of this executor; use Carry to thread state across them.
        ctx.reset_smem(kernel.smem_per_block() as usize / 4);
        let ws = dev.warp_size;
        let base = bases[bid as usize];
        let mut it = bc.entries.into_iter();
        let mut warp_start = 0;
        while warp_start < block_threads {
            let active = ws.min(block_threads - warp_start);
            ctx.trace.reset();
            for lane in 0..active {
                ctx.tid = warp_start + lane;
                ctx.trace.begin_lane();
                let (carry, offset) = it.next().expect("one entry per thread");
                kernel.emit(ctx, carry, base + offset);
            }
            sm.account_warp(dev, l2, &ctx.trace);
            ctx.flush_deferred();
            warp_start += ws;
        }
    };

    match mode {
        ExecMode::Parallel => {
            // Reattach each SM's blocks + L2 slice and run emits concurrently.
            let mut per_sm: Vec<(SmState, Cache, SmBlocks<K::Carry>)> = sm_states
                .into_iter()
                .zip(std::mem::take(&mut l2s))
                .map(|(s, l2)| (s, l2, Vec::new()))
                .collect();
            for bid in (0..grid).rev() {
                let bc = block_counts[bid as usize].take().unwrap();
                per_sm[(bid % n_sms) as usize].2.push((bid, bc));
            }
            let done: Vec<(SmState, Cache)> = per_sm
                .into_par_iter()
                .map(|(mut sm, mut l2, blocks)| {
                    let mut ctx = ThreadCtx::new(mem);
                    // blocks were pushed in reverse; run in ascending order.
                    for (bid, bc) in blocks.into_iter().rev() {
                        emit_block(&mut sm, &mut l2, &mut ctx, bid, bc);
                    }
                    (sm, l2)
                })
                .collect();
            sm_states = Vec::with_capacity(done.len());
            for (sm, l2) in done {
                sm_states.push(sm);
                l2s.push(l2);
            }
        }
        ExecMode::Deterministic => {
            let mut ctx = ThreadCtx::new(mem);
            for bid in 0..grid {
                let bc = block_counts[bid as usize].take().unwrap();
                let sm = &mut sm_states[(bid % n_sms) as usize];
                emit_block(sm, &mut l2s[0], &mut ctx, bid, bc);
            }
        }
    }

    let mut l2_stats = (0u64, 0u64);
    for l2 in &l2s {
        let (h, m) = l2.stats();
        l2_stats.0 += h;
        l2_stats.1 += m;
    }
    let stats = finalize(
        dev,
        kernel.name(),
        grid,
        block_threads,
        occ,
        &sm_states,
        l2_stats,
    );
    (stats, total)
}

/// Grid size for one thread per element.
///
/// # Panics
///
/// Panics if the required grid exceeds `u32::MAX` blocks (the CUDA
/// 1-D grid limit) instead of silently truncating the launch.
pub fn grid_for(n: usize, block_threads: u32) -> u32 {
    let blocks = (n as u64).div_ceil(block_threads.max(1) as u64);
    assert!(
        blocks <= u32::MAX as u64,
        "grid_for: {n} elements / {block_threads} threads needs {blocks} blocks, \
         exceeding the u32 grid limit"
    );
    blocks as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCtx;
    use crate::mem::Buffer;

    /// y[i] = a * x[i] + y[i] — the classic check that indexing and
    /// memory plumbing are right.
    struct Saxpy {
        a: f32,
        x: Buffer<f32>,
        y: Buffer<f32>,
    }

    impl Kernel for Saxpy {
        fn name(&self) -> &'static str {
            "saxpy"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            if i >= self.x.len() {
                return;
            }
            let xi = t.ldg(self.x, i);
            let yi = t.ld(self.y, i);
            t.alu(2);
            t.st(self.y, i, self.a * xi + yi);
        }
    }

    #[test]
    fn saxpy_computes_correctly_in_both_modes() {
        for mode in [ExecMode::Deterministic, ExecMode::Parallel] {
            let dev = Device::tiny();
            let mut mem = GpuMem::new();
            let n = 1000;
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let y: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
            let xb = mem.alloc_from_slice(&x);
            let yb = mem.alloc_from_slice(&y);
            let k = Saxpy {
                a: 3.0,
                x: xb,
                y: yb,
            };
            let stats = launch(&mem, &dev, mode, grid_for(n, 128), 128, &k);
            let out = mem.read_vec(yb);
            for i in 0..n {
                assert_eq!(out[i], 3.0 * i as f32 + 2.0 * i as f32);
            }
            assert!(stats.cycles > 0);
            assert!(stats.instructions > 0);
            assert_eq!(stats.name, "saxpy");
        }
    }

    #[test]
    fn deterministic_mode_gives_identical_stats() {
        let dev = Device::tiny();
        let run = || {
            let mut mem = GpuMem::new();
            let x = mem.alloc_from_slice(&vec![1.0f32; 500]);
            let y = mem.alloc_from_slice(&vec![2.0f32; 500]);
            let k = Saxpy { a: 1.0, x, y };
            launch(
                &mem,
                &dev,
                ExecMode::Deterministic,
                grid_for(500, 64),
                64,
                &k,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem_transactions, b.mem_transactions);
        assert_eq!(a.dram_bytes, b.dram_bytes);
    }

    /// Histogram with atomics: exercises atomic plumbing under contention.
    struct AtomicHist {
        data: Buffer<u32>,
        hist: Buffer<u32>,
    }

    impl Kernel for AtomicHist {
        fn name(&self) -> &'static str {
            "hist"
        }
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            if i >= self.data.len() {
                return;
            }
            let v = t.ld(self.data, i) as usize % self.hist.len();
            t.alu(1);
            t.atomic_add(self.hist, v, 1);
        }
    }

    #[test]
    fn atomic_histogram_is_exact_in_parallel_mode() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let n = 10_000;
        let data: Vec<u32> = (0..n as u32).collect();
        let db = mem.alloc_from_slice(&data);
        let hb = mem.alloc::<u32>(7);
        let k = AtomicHist { data: db, hist: hb };
        let stats = launch(&mem, &dev, ExecMode::Parallel, grid_for(n, 256), 256, &k);
        let h = mem.read_vec(hb);
        assert_eq!(h.iter().sum::<u32>(), n as u32);
        for (b, &count) in h.iter().enumerate() {
            let expect = (0..n).filter(|i| i % 7 == b).count() as u32;
            assert_eq!(count, expect);
        }
        assert!(stats.atomics >= n as u64);
        assert!(stats.atomic_serial_cycles > 0, "bucket contention");
    }

    /// Compaction coop kernel: emit the index of every value above a
    /// threshold.
    struct FilterAbove {
        data: Buffer<u32>,
        out: Buffer<u32>,
        threshold: u32,
    }

    impl CoopKernel for FilterAbove {
        type Carry = u32;
        fn name(&self) -> &'static str {
            "filter"
        }
        fn count(&self, t: &mut impl KernelCtx) -> (u32, u32) {
            let i = t.global_id() as usize;
            if i >= self.data.len() {
                return (0, 0);
            }
            let v = t.ld(self.data, i);
            t.alu(1);
            (i as u32, (v > self.threshold) as u32)
        }
        fn emit(&self, t: &mut impl KernelCtx, carry: u32, dst: u32) {
            let i = carry as usize;
            if i >= self.data.len() {
                return;
            }
            let v = t.ld(self.data, i);
            if v > self.threshold {
                t.st(self.out, dst as usize, carry);
            }
        }
    }

    #[test]
    fn coop_compaction_preserves_order() {
        for mode in [ExecMode::Deterministic, ExecMode::Parallel] {
            let dev = Device::tiny();
            let mut mem = GpuMem::new();
            let n = 5000;
            let data: Vec<u32> = (0..n as u32).map(|i| i * 7 % 100).collect();
            let db = mem.alloc_from_slice(&data);
            let ob = mem.alloc::<u32>(n);
            let k = FilterAbove {
                data: db,
                out: ob,
                threshold: 50,
            };
            let (stats, total) = launch_coop(&mem, &dev, mode, grid_for(n, 128), 128, &k);
            let expect: Vec<u32> = (0..n as u32).filter(|&i| data[i as usize] > 50).collect();
            assert_eq!(total as usize, expect.len());
            let out = mem.read_vec(ob);
            assert_eq!(&out[..total as usize], expect.as_slice());
            // One global atomic per block was charged.
            assert!(stats.atomics >= grid_for(n, 128) as u64);
        }
    }

    #[test]
    fn coop_with_zero_grid() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let db = mem.alloc::<u32>(1);
        let ob = mem.alloc::<u32>(1);
        let k = FilterAbove {
            data: db,
            out: ob,
            threshold: 0,
        };
        let (stats, total) = launch_coop(&mem, &dev, ExecMode::Deterministic, 0, 128, &k);
        assert_eq!(total, 0);
        assert!(stats.cycles > 0, "launch overhead still charged");
    }

    #[test]
    fn partial_warp_and_single_thread() {
        let dev = Device::tiny();
        let mut mem = GpuMem::new();
        let x = mem.alloc_from_slice(&[1.0f32; 3]);
        let y = mem.alloc_from_slice(&[0.0f32; 3]);
        let k = Saxpy { a: 2.0, x, y };
        launch(&mem, &dev, ExecMode::Deterministic, 3, 1, &k);
        assert_eq!(mem.read_vec(y), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn grid_for_rounds_up() {
        assert_eq!(grid_for(0, 128), 0);
        assert_eq!(grid_for(1, 128), 1);
        assert_eq!(grid_for(128, 128), 1);
        assert_eq!(grid_for(129, 128), 2);
    }
}

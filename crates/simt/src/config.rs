//! Device configuration: the architectural parameters the timing model
//! consumes. The default preset is the NVIDIA K20c (Kepler GK110) the paper
//! evaluates on; a tiny synthetic device is provided for fast unit tests.

use serde::{Deserialize, Serialize};

/// Architectural description of a simulated GPU.
///
/// Latency numbers follow §III-C of the paper (read-only cache ≈ 30 cycles,
/// DRAM ≈ 300 cycles); capacity/throughput numbers follow the GK110
/// whitepaper and the K20c product specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every CUDA GPU).
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak warp-instruction issue rate per SM per cycle (K20c SMX: 4
    /// schedulers).
    pub issue_width: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Register allocation granularity (registers are allocated per warp in
    /// multiples of this).
    pub reg_alloc_granularity: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Read-only (texture/L1) data cache per SM in bytes.
    pub ro_cache_bytes: u32,
    /// Read-only cache line size in bytes.
    pub ro_line_bytes: u32,
    /// Read-only cache associativity.
    pub ro_ways: u32,
    /// Total L2 cache in bytes (shared by all SMs; the simulator models a
    /// per-SM slice of `l2_bytes / num_sms`).
    pub l2_bytes: u32,
    /// L2 line (sector) size in bytes — Kepler moves 32-byte sectors for
    /// scattered accesses.
    pub l2_line_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Latency of a read-only cache hit, in cycles (§III-C: ~30).
    pub ro_hit_cycles: u32,
    /// Latency of an L2 hit, in cycles.
    pub l2_hit_cycles: u32,
    /// Latency of a DRAM access, in cycles (§III-C: ~300).
    pub dram_cycles: u32,
    /// Latency of a local-memory (register spill / `colorMask`) access; on
    /// Kepler local memory is L1-cached.
    pub local_cycles: u32,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Cycles the Atomic Operation Unit needs per serialized atomic to the
    /// same address.
    pub atomic_serial_cycles: u32,
    /// Independent memory requests one warp can keep in flight (scoreboard
    /// depth): bounds how fast a single long dependence chain — e.g. one
    /// thread scanning a hub vertex's huge adjacency list — can drain.
    pub mem_ilp: f64,
    /// PCIe bandwidth in GB/s (host ↔ device transfers, used by the 3-step
    /// GM baseline).
    pub pcie_bw_gbps: f64,
    /// Fixed per-transfer PCIe latency in microseconds.
    pub pcie_latency_us: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Number of shared-memory banks (32 on Fermi/Kepler).
    pub smem_banks: u32,
    /// Cycles per shared-memory access way: an n-way bank conflict
    /// serializes into n accesses of this cost.
    pub smem_cycles: u32,
    /// Whether plain global loads are cached in the per-SM L1 (Fermi).
    /// On Kepler, global loads bypass L1 and only `__ldg` uses the
    /// read-only cache — the distinction §III-C of the paper builds its
    /// optimization on.
    pub l1_caches_globals: bool,
}

impl Device {
    /// The NVIDIA Tesla K20c (GK110) used in the paper's evaluation.
    pub fn k20c() -> Self {
        Self {
            name: "NVIDIA Tesla K20c (simulated)".into(),
            num_sms: 13,
            warp_size: 32,
            clock_ghz: 0.706,
            issue_width: 4,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_warps_per_sm: 64,
            regs_per_sm: 65536,
            reg_alloc_granularity: 256,
            smem_per_sm: 48 * 1024,
            ro_cache_bytes: 48 * 1024,
            ro_line_bytes: 128,
            ro_ways: 4,
            l2_bytes: 1536 * 1024,
            l2_line_bytes: 32,
            l2_ways: 16,
            ro_hit_cycles: 30,
            l2_hit_cycles: 140,
            dram_cycles: 300,
            local_cycles: 8,
            dram_bw_gbps: 208.0,
            atomic_serial_cycles: 8,
            mem_ilp: 4.0,
            pcie_bw_gbps: 6.0,
            pcie_latency_us: 10.0,
            launch_overhead_us: 5.0,
            smem_banks: 32,
            smem_cycles: 2,
            l1_caches_globals: false,
        }
    }

    /// A Fermi-generation card (Tesla C2075-like): fewer, slower SMs,
    /// smaller L2 — but plain global loads DO go through the L1, so the
    /// `__ldg` distinction disappears. Used by the `archsweep` experiment
    /// to show the paper's Kepler-specific reasoning.
    pub fn fermi_like() -> Self {
        Self {
            name: "Fermi-class GPU (simulated)".into(),
            num_sms: 14,
            warp_size: 32,
            clock_ghz: 1.15,
            issue_width: 2,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 48,
            regs_per_sm: 32768,
            reg_alloc_granularity: 64,
            smem_per_sm: 48 * 1024,
            ro_cache_bytes: 16 * 1024, // the configurable L1 split
            ro_line_bytes: 128,
            ro_ways: 4,
            l2_bytes: 768 * 1024,
            l2_line_bytes: 32,
            l2_ways: 16,
            ro_hit_cycles: 30,
            l2_hit_cycles: 180,
            dram_cycles: 400,
            local_cycles: 8,
            dram_bw_gbps: 144.0,
            atomic_serial_cycles: 20, // Fermi atomics were far slower
            mem_ilp: 3.0,
            pcie_bw_gbps: 5.0,
            pcie_latency_us: 10.0,
            launch_overhead_us: 6.0,
            smem_banks: 32,
            smem_cycles: 2,
            l1_caches_globals: true,
        }
    }

    /// A deliberately tiny device (2 SMs, small caches) so unit tests can
    /// exercise capacity effects with small inputs.
    pub fn tiny() -> Self {
        Self {
            name: "tiny-test-gpu".into(),
            num_sms: 2,
            warp_size: 32,
            clock_ghz: 1.0,
            issue_width: 2,
            max_threads_per_sm: 256,
            max_blocks_per_sm: 4,
            max_warps_per_sm: 8,
            regs_per_sm: 8192,
            reg_alloc_granularity: 64,
            smem_per_sm: 8 * 1024,
            ro_cache_bytes: 1024,
            ro_line_bytes: 128,
            ro_ways: 2,
            l2_bytes: 8 * 1024,
            l2_line_bytes: 32,
            l2_ways: 4,
            ro_hit_cycles: 30,
            l2_hit_cycles: 140,
            dram_cycles: 300,
            local_cycles: 8,
            dram_bw_gbps: 16.0,
            atomic_serial_cycles: 8,
            mem_ilp: 4.0,
            pcie_bw_gbps: 4.0,
            pcie_latency_us: 10.0,
            launch_overhead_us: 5.0,
            smem_banks: 32,
            smem_cycles: 2,
            l1_caches_globals: false,
        }
    }

    /// Cycles per second.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Converts a cycle count on this device to milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz() * 1e3
    }

    /// DRAM bytes per core cycle (whole chip).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_gbps * 1e9 / self.clock_hz()
    }

    /// Peak warp-instructions per cycle for the whole chip.
    pub fn peak_issue_per_cycle(&self) -> f64 {
        (self.num_sms * self.issue_width) as f64
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::k20c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20c_parameters_are_kepler_shaped() {
        let d = Device::k20c();
        assert_eq!(d.num_sms, 13);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.max_warps_per_sm * d.warp_size, d.max_threads_per_sm);
        assert!(d.ro_hit_cycles < d.l2_hit_cycles);
        assert!(d.l2_hit_cycles < d.dram_cycles);
    }

    #[test]
    fn unit_conversions() {
        let d = Device::k20c();
        // 706 MHz: 706_000 cycles is 1 ms.
        assert!((d.cycles_to_ms(706_000) - 1.0).abs() < 1e-9);
        assert!((d.dram_bytes_per_cycle() - 208e9 / 0.706e9).abs() < 1e-6);
    }

    #[test]
    fn tiny_device_is_small() {
        let d = Device::tiny();
        assert!(d.l2_bytes < Device::k20c().l2_bytes);
        assert!(d.num_sms < Device::k20c().num_sms);
    }
}

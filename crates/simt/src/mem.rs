//! Simulated device global memory.
//!
//! One flat arena of 32-bit words backed by `AtomicU32`. Plain loads and
//! stores are relaxed atomic word operations and `atomic_*` map to RMW
//! fetch-ops, so the *speculative races* of the GM scheme (two adjacent
//! vertices colored concurrently by different blocks) happen for real, with
//! GPU-like word-tearing-free semantics, while the code stays 100% safe
//! Rust.
//!
//! Buffers carry their base *word address*, so the timing model sees
//! realistic addresses for coalescing and cache indexing (byte address =
//! 4 × word address).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};

/// A 32-bit plain-old-data type that can live in device memory.
pub trait Word: Copy + 'static {
    /// Bit-cast to a raw word.
    fn to_bits(self) -> u32;
    /// Bit-cast from a raw word.
    fn from_bits(bits: u32) -> Self;
}

impl Word for u32 {
    fn to_bits(self) -> u32 {
        self
    }
    fn from_bits(bits: u32) -> Self {
        bits
    }
}

impl Word for i32 {
    fn to_bits(self) -> u32 {
        self as u32
    }
    fn from_bits(bits: u32) -> Self {
        bits as i32
    }
}

impl Word for f32 {
    fn to_bits(self) -> u32 {
        self.to_bits()
    }
    fn from_bits(bits: u32) -> Self {
        f32::from_bits(bits)
    }
}

/// A typed handle to a device allocation: base word address + length.
/// Copyable, like a raw device pointer, and only meaningful together with
/// the `GpuMem` it was allocated from.
pub struct Buffer<T: Word> {
    base: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Word> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Word> Copy for Buffer<T> {}

impl<T: Word> std::fmt::Debug for Buffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Buffer {{ base: {}, len: {} }}", self.base, self.len)
    }
}

impl<T: Word> Buffer<T> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Word address of element `i` (also its cache/coalescing address unit).
    #[inline]
    pub fn addr(&self, i: usize) -> u32 {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        (self.base + i) as u32
    }

    /// Base word address of the allocation: element 0's [`Buffer::addr`]
    /// without the bounds assertion, so shadow tooling (the sanitizer)
    /// can resolve raw addresses and candidate indices against the
    /// allocation without tripping the debug bounds check.
    #[inline]
    pub fn base_addr(&self) -> u32 {
        self.base as u32
    }
}

/// Metadata for one arena allocation. `GpuMem` records every allocation
/// (cold path, `&mut self`) so analysis layers — the sanitizer's race and
/// bounds findings — can resolve a raw word address back to a buffer and
/// a human-readable name.
#[derive(Debug, Clone)]
pub struct AllocInfo {
    /// Base word address of the allocation.
    pub base: usize,
    /// Length in words.
    pub len: usize,
    /// Name for reports; `"alloc#k"` until [`GpuMem::set_label`] renames
    /// it.
    pub label: String,
}

/// Device global memory: a growable arena of words. Allocation requires
/// `&mut self` (between kernels); kernels access it through `&self` with
/// atomic word operations.
#[derive(Default)]
pub struct GpuMem {
    words: Vec<AtomicU32>,
    allocs: Vec<AllocInfo>,
    /// Shadow initialized-word map, one flag word per arena word. `None`
    /// until the first [`GpuMem::alloc_uninit`] — the common case — so
    /// default runs pay only a never-taken branch per store. Created
    /// lazily with every pre-existing word marked initialized.
    init: Option<Vec<AtomicU32>>,
}

/// Alignment (in words) of every allocation: 256 bytes like `cudaMalloc`,
/// so distinct buffers never share a cache line.
const ALLOC_ALIGN_WORDS: usize = 64;

impl GpuMem {
    /// An empty device memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.words.len() * 4
    }

    fn alloc_words(&mut self, len: usize) -> usize {
        let base = self.words.len().next_multiple_of(ALLOC_ALIGN_WORDS);
        self.words.resize_with(base + len, || AtomicU32::new(0));
        // Padding and fresh words default to "initialized"; alloc_uninit
        // clears its own range afterwards.
        if let Some(map) = &mut self.init {
            map.resize_with(base + len, || AtomicU32::new(1));
        }
        self.allocs.push(AllocInfo {
            base,
            len,
            label: format!("alloc#{}", self.allocs.len()),
        });
        base
    }

    /// Allocates a zero-initialized buffer of `len` elements (models
    /// `cudaMalloc` + `cudaMemset(0)`: the sanitizer treats every word as
    /// initialized).
    pub fn alloc<T: Word>(&mut self, len: usize) -> Buffer<T> {
        let base = self.alloc_words(len);
        Buffer {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Allocates a buffer whose words count as *uninitialized* for the
    /// sanitizer's shadow state (a bare `cudaMalloc`): a read of any word
    /// that no host write or kernel store has touched yet is reported as a
    /// read-before-init finding by [`crate::sanitize::SanitizeBackend`].
    /// Functionally the words still read as zero, so default (unsanitized)
    /// runs behave exactly like [`GpuMem::alloc`].
    pub fn alloc_uninit<T: Word>(&mut self, len: usize) -> Buffer<T> {
        if self.init.is_none() {
            // First uninitialized allocation: materialize the shadow map
            // with everything allocated so far marked initialized.
            let map = (0..self.words.len()).map(|_| AtomicU32::new(1)).collect();
            self.init = Some(map);
        }
        let buf = self.alloc::<T>(len);
        let map = self.init.as_ref().expect("init map just created");
        for w in &map[buf.base..buf.base + len] {
            w.store(0, Ordering::Relaxed);
        }
        buf
    }

    /// Renames the allocation backing `buf` for sanitizer reports (e.g.
    /// `"color"`, `"worklist-a"`). No effect on execution or timing.
    pub fn set_label<T: Word>(&mut self, buf: Buffer<T>, label: &str) {
        if let Some(a) = self.allocs.iter_mut().find(|a| a.base == buf.base) {
            a.label = label.to_string();
        }
    }

    /// Resolves a raw word address to the allocation containing it, if
    /// any (addresses in alignment padding belong to no allocation).
    pub fn alloc_info(&self, word_addr: usize) -> Option<&AllocInfo> {
        // Allocations are recorded in increasing base order.
        let idx = self.allocs.partition_point(|a| a.base <= word_addr);
        let a = self.allocs.get(idx.checked_sub(1)?)?;
        (word_addr < a.base + a.len).then_some(a)
    }

    /// Whether a word has been written since allocation. Always `true`
    /// when no [`GpuMem::alloc_uninit`] buffer exists (no shadow map).
    pub fn word_init(&self, word_addr: usize) -> bool {
        match &self.init {
            None => true,
            Some(map) => map
                .get(word_addr)
                .is_none_or(|w| w.load(Ordering::Relaxed) != 0),
        }
    }

    /// Marks a word initialized in the shadow map, if one exists. Called
    /// on every store path; a predictable never-taken branch when no
    /// `alloc_uninit` buffer exists.
    #[inline]
    fn mark_init(&self, word_addr: usize) {
        if let Some(map) = &self.init {
            map[word_addr].store(1, Ordering::Relaxed);
        }
    }

    /// Allocates a buffer filled with `value`.
    pub fn alloc_filled<T: Word>(&mut self, len: usize, value: T) -> Buffer<T> {
        let buf = self.alloc(len);
        for i in 0..len {
            self.store(buf, i, value);
        }
        buf
    }

    /// Allocates a buffer holding a copy of `data` (host-to-device copy;
    /// the *timing* of the transfer is charged separately via
    /// [`crate::xfer`]). The words are constructed from `data` directly
    /// rather than zero-filled and overwritten — graph uploads are the
    /// largest allocations every run makes, and this is their hot path.
    pub fn alloc_from_slice<T: Word>(&mut self, data: &[T]) -> Buffer<T> {
        let base = self.words.len().next_multiple_of(ALLOC_ALIGN_WORDS);
        self.words.resize_with(base, || AtomicU32::new(0));
        self.words
            .extend(data.iter().map(|&v| AtomicU32::new(v.to_bits())));
        if let Some(map) = &mut self.init {
            map.resize_with(base + data.len(), || AtomicU32::new(1));
        }
        self.allocs.push(AllocInfo {
            base,
            len: data.len(),
            label: format!("alloc#{}", self.allocs.len()),
        });
        Buffer {
            base,
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Relaxed store to a raw word address (used by the executor to flush
    /// warp-deferred stores).
    #[inline]
    pub(crate) fn store_raw(&self, word_addr: usize, bits: u32) {
        self.mark_init(word_addr);
        self.words[word_addr].store(bits, Ordering::Relaxed);
    }

    /// Relaxed word load.
    #[inline]
    pub fn load<T: Word>(&self, buf: Buffer<T>, i: usize) -> T {
        debug_assert!(i < buf.len, "load out of bounds: {i} >= {}", buf.len);
        T::from_bits(self.words[buf.base + i].load(Ordering::Relaxed))
    }

    /// Relaxed word store.
    #[inline]
    pub fn store<T: Word>(&self, buf: Buffer<T>, i: usize, v: T) {
        debug_assert!(i < buf.len, "store out of bounds: {i} >= {}", buf.len);
        self.mark_init(buf.base + i);
        self.words[buf.base + i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// `atomicAdd` returning the old value.
    #[inline]
    pub fn fetch_add(&self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        debug_assert!(i < buf.len);
        self.mark_init(buf.base + i);
        self.words[buf.base + i].fetch_add(v, Ordering::Relaxed)
    }

    /// `atomicMax` returning the old value.
    #[inline]
    pub fn fetch_max(&self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        debug_assert!(i < buf.len);
        self.mark_init(buf.base + i);
        self.words[buf.base + i].fetch_max(v, Ordering::Relaxed)
    }

    /// `atomicMin` returning the old value.
    #[inline]
    pub fn fetch_min(&self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        debug_assert!(i < buf.len);
        self.mark_init(buf.base + i);
        self.words[buf.base + i].fetch_min(v, Ordering::Relaxed)
    }

    /// `atomicCAS` returning the old value.
    #[inline]
    pub fn compare_exchange(&self, buf: Buffer<u32>, i: usize, expected: u32, new: u32) -> u32 {
        debug_assert!(i < buf.len);
        // Marked regardless of CAS success: a failed CAS still proves the
        // thread brought the word into a register, so "init" is the
        // conservative shadow state.
        self.mark_init(buf.base + i);
        match self.words[buf.base + i].compare_exchange(
            expected,
            new,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(old) | Err(old) => old,
        }
    }

    /// Copies a buffer's contents back to the host.
    pub fn read_vec<T: Word>(&self, buf: Buffer<T>) -> Vec<T> {
        (0..buf.len).map(|i| self.load(buf, i)).collect()
    }

    /// Overwrites a buffer from a host slice (device-to-device reuse).
    pub fn write_slice<T: Word>(&self, buf: Buffer<T>, data: &[T]) {
        assert!(data.len() <= buf.len, "write_slice larger than buffer");
        for (i, &v) in data.iter().enumerate() {
            self.store(buf, i, v);
        }
    }

    /// Fills a buffer with a value (like `cudaMemset`).
    pub fn fill<T: Word>(&self, buf: Buffer<T>, value: T) {
        for i in 0..buf.len {
            self.store(buf, i, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_i32_f32() {
        let mut mem = GpuMem::new();
        let a = mem.alloc_from_slice(&[1u32, 2, 3]);
        let b = mem.alloc_from_slice(&[-1i32, 7]);
        let c = mem.alloc_from_slice(&[1.5f32, -0.25]);
        assert_eq!(mem.read_vec(a), vec![1, 2, 3]);
        assert_eq!(mem.read_vec(b), vec![-1, 7]);
        assert_eq!(mem.read_vec(c), vec![1.5, -0.25]);
    }

    #[test]
    fn buffers_do_not_alias() {
        let mut mem = GpuMem::new();
        let a = mem.alloc::<u32>(10);
        let b = mem.alloc::<u32>(10);
        mem.fill(a, 7);
        mem.fill(b, 9);
        assert!(mem.read_vec(a).iter().all(|&x| x == 7));
        assert!(mem.read_vec(b).iter().all(|&x| x == 9));
    }

    #[test]
    fn alignment_is_256_bytes() {
        let mut mem = GpuMem::new();
        let a = mem.alloc::<u32>(3);
        let b = mem.alloc::<u32>(3);
        assert_eq!(a.addr(0) % 64, 0);
        assert_eq!(b.addr(0) % 64, 0);
        assert!(b.addr(0) >= a.addr(0) + 64);
    }

    #[test]
    fn atomics_work() {
        let mut mem = GpuMem::new();
        let a = mem.alloc::<u32>(1);
        assert_eq!(mem.fetch_add(a, 0, 5), 0);
        assert_eq!(mem.fetch_add(a, 0, 5), 5);
        assert_eq!(mem.fetch_max(a, 0, 3), 10);
        assert_eq!(mem.load(a, 0), 10);
        assert_eq!(mem.fetch_min(a, 0, 2), 10);
        assert_eq!(mem.load(a, 0), 2);
        assert_eq!(mem.compare_exchange(a, 0, 2, 99), 2);
        assert_eq!(mem.load(a, 0), 99);
        assert_eq!(mem.compare_exchange(a, 0, 2, 55), 99);
        assert_eq!(mem.load(a, 0), 99);
    }

    #[test]
    fn alloc_filled() {
        let mut mem = GpuMem::new();
        let a = mem.alloc_filled(4, 0xDEAD_BEEFu32);
        assert_eq!(mem.read_vec(a), vec![0xDEAD_BEEF; 4]);
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        use rayon::prelude::*;
        let mut mem = GpuMem::new();
        let a = mem.alloc::<u32>(1);
        (0..10_000).into_par_iter().for_each(|_| {
            mem.fetch_add(a, 0, 1);
        });
        assert_eq!(mem.load(a, 0), 10_000);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_load_panics_in_debug() {
        let mut mem = GpuMem::new();
        let a = mem.alloc::<u32>(2);
        mem.load(a, 2);
    }

    #[test]
    fn alloc_info_resolves_addresses_and_labels() {
        let mut mem = GpuMem::new();
        let a = mem.alloc::<u32>(3);
        let b = mem.alloc::<u32>(5);
        mem.set_label(b, "color");
        let ia = mem.alloc_info(a.addr(2) as usize).expect("a resolves");
        assert_eq!((ia.base, ia.len, ia.label.as_str()), (0, 3, "alloc#0"));
        let ib = mem.alloc_info(b.addr(0) as usize).expect("b resolves");
        assert_eq!(ib.label, "color");
        assert_eq!(ib.base, b.base_addr() as usize);
        // Alignment padding between the two belongs to no allocation.
        assert!(mem.alloc_info(3).is_none());
        assert!(mem.alloc_info(b.base_addr() as usize + 5).is_none());
    }

    #[test]
    fn init_map_tracks_stores_lazily() {
        let mut mem = GpuMem::new();
        let a = mem.alloc::<u32>(2);
        // No alloc_uninit yet: everything reads as initialized.
        assert!(mem.word_init(a.addr(0) as usize));
        let b = mem.alloc_uninit::<u32>(4);
        // Pre-existing words stay initialized; b's words start clear.
        assert!(mem.word_init(a.addr(1) as usize));
        assert!(!mem.word_init(b.addr(0) as usize));
        mem.store(b, 0, 7u32);
        assert!(mem.word_init(b.addr(0) as usize));
        assert!(!mem.word_init(b.addr(3) as usize));
        mem.fetch_add(b, 3, 1);
        assert!(mem.word_init(b.addr(3) as usize));
        // Functionally an uninit buffer still reads as zero.
        assert_eq!(mem.load(b, 1), 0u32);
        // A later zeroed alloc is fully initialized even with a live map.
        let c = mem.alloc::<u32>(3);
        assert!(mem.word_init(c.addr(2) as usize));
    }

    #[test]
    fn write_slice_and_fill_mark_init() {
        let mut mem = GpuMem::new();
        let a = mem.alloc_uninit::<u32>(4);
        mem.write_slice(a, &[1, 2]);
        assert!(mem.word_init(a.addr(1) as usize));
        assert!(!mem.word_init(a.addr(2) as usize));
        mem.fill(a, 9);
        assert!(mem.word_init(a.addr(3) as usize));
    }
}

//! The native execution path: runs the *same* [`Kernel`] / [`CoopKernel`]
//! impls at full host speed, with zero trace or timing machinery.
//!
//! This is the production backend the ROADMAP's "run huge graphs fast, not
//! just modeled" goal asks for. Blocks are distributed over rayon workers;
//! within a block the executor keeps the simulator's SIMT structure —
//! warps of 32 lanes executed in lane order, with `st_warp` stores
//! deferred until the warp completes — so warp-synchronous kernels keep
//! their semantics and, on a single worker, results match the
//! Deterministic simulator exactly. Across blocks the algorithm's own
//! races are real, exactly as on hardware.

use crate::kernel::{CoopKernel, Kernel, KernelCtx};
use crate::mem::{Buffer, GpuMem, Word};
use rayon::prelude::*;

/// Fixed warp width of the native executor (matches every [`crate::Device`]).
const WARP: u32 = 32;

/// [`KernelCtx`] implementation that touches memory directly: loads and
/// stores go straight to the arena, `alu` is free, nothing is recorded.
pub struct NativeCtx<'a> {
    mem: &'a GpuMem,
    tid: u32,
    bid: u32,
    bdim: u32,
    gdim: u32,
    scratch: Vec<u32>,
    deferred: Vec<(u32, u32)>,
    smem: Vec<u32>,
}

impl<'a> NativeCtx<'a> {
    fn new(mem: &'a GpuMem) -> Self {
        Self {
            mem,
            tid: 0,
            bid: 0,
            bdim: 0,
            gdim: 0,
            scratch: Vec::new(),
            deferred: Vec::new(),
            smem: Vec::new(),
        }
    }

    fn flush_deferred(&mut self) {
        for (addr, bits) in self.deferred.drain(..) {
            self.mem.store_raw(addr as usize, bits);
        }
    }
}

impl KernelCtx for NativeCtx<'_> {
    #[inline]
    fn tid(&self) -> u32 {
        self.tid
    }

    #[inline]
    fn bid(&self) -> u32 {
        self.bid
    }

    #[inline]
    fn bdim(&self) -> u32 {
        self.bdim
    }

    #[inline]
    fn gdim(&self) -> u32 {
        self.gdim
    }

    #[inline]
    fn ld<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        self.mem.load(buf, i)
    }

    #[inline]
    fn ldg<T: Word>(&mut self, buf: Buffer<T>, i: usize) -> T {
        self.mem.load(buf, i)
    }

    #[inline]
    fn st<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        self.mem.store(buf, i, v);
    }

    #[inline]
    fn st_warp<T: Word>(&mut self, buf: Buffer<T>, i: usize, v: T) {
        self.deferred.push((buf.addr(i), v.to_bits()));
    }

    #[inline]
    fn atomic_add(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.mem.fetch_add(buf, i, v)
    }

    #[inline]
    fn atomic_max(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.mem.fetch_max(buf, i, v)
    }

    #[inline]
    fn atomic_min(&mut self, buf: Buffer<u32>, i: usize, v: u32) -> u32 {
        self.mem.fetch_min(buf, i, v)
    }

    #[inline]
    fn atomic_cas(&mut self, buf: Buffer<u32>, i: usize, expected: u32, new: u32) -> u32 {
        self.mem.compare_exchange(buf, i, expected, new)
    }

    #[inline]
    fn alu(&mut self, _n: u32) {}

    #[inline]
    fn local_reserve(&mut self, n: usize) {
        if self.scratch.len() < n {
            self.scratch.resize(n, u32::MAX);
        }
    }

    #[inline]
    fn local_ld(&mut self, i: usize) -> u32 {
        self.scratch[i]
    }

    #[inline]
    fn local_st(&mut self, i: usize, v: u32) {
        self.scratch[i] = v;
    }

    #[inline]
    fn smem_ld(&mut self, i: usize) -> u32 {
        self.smem[i]
    }

    #[inline]
    fn smem_st(&mut self, i: usize, v: u32) {
        self.smem[i] = v;
    }
}

/// Runs one block: warps of 32 lanes in lane order, deferred stores
/// flushed after each warp (the `st_warp` contract).
fn run_block_native<K: Kernel>(
    kernel: &K,
    bid: u32,
    grid: u32,
    block_threads: u32,
    ctx: &mut NativeCtx<'_>,
) {
    ctx.bid = bid;
    ctx.bdim = block_threads;
    ctx.gdim = grid;
    ctx.smem.clear();
    ctx.smem.resize(kernel.smem_per_block() as usize / 4, 0);
    let mut warp_start = 0;
    while warp_start < block_threads {
        let active = WARP.min(block_threads - warp_start);
        for lane in 0..active {
            ctx.tid = warp_start + lane;
            kernel.run(ctx);
        }
        ctx.flush_deferred();
        warp_start += WARP;
    }
}

/// Launches a [`Kernel`] natively: blocks over rayon workers, no timing.
pub fn launch_native<K: Kernel>(mem: &GpuMem, grid: u32, block_threads: u32, kernel: &K) {
    assert!((1..=1024).contains(&block_threads), "bad block size");
    (0..grid).into_par_iter().for_each_init(
        || NativeCtx::new(mem),
        |ctx, bid| run_block_native(kernel, bid, grid, block_threads, ctx),
    );
}

/// Per-block count-phase result (mirrors the simulator's coop plumbing).
struct BlockCount<C> {
    entries: Vec<(C, u32)>,
    total: u32,
}

/// Launches a [`CoopKernel`] natively: parallel count phase, host-side
/// exclusive scan over block totals (the semantic equivalent of the
/// per-block `atomicAdd`), parallel emit phase. Output positions follow
/// block-id order, identical to the simulator's layout. Returns the total
/// number of emitted items.
pub fn launch_coop_native<K: CoopKernel>(
    mem: &GpuMem,
    grid: u32,
    block_threads: u32,
    kernel: &K,
) -> u32 {
    assert!((1..=1024).contains(&block_threads), "bad block size");

    let count_block = |ctx: &mut NativeCtx<'_>, bid: u32| -> BlockCount<K::Carry> {
        ctx.bid = bid;
        ctx.bdim = block_threads;
        ctx.gdim = grid;
        ctx.smem.clear();
        ctx.smem.resize(kernel.smem_per_block() as usize / 4, 0);
        let mut entries = Vec::with_capacity(block_threads as usize);
        let mut running = 0u32;
        let mut warp_start = 0;
        while warp_start < block_threads {
            let active = WARP.min(block_threads - warp_start);
            for lane in 0..active {
                ctx.tid = warp_start + lane;
                let (carry, req) = kernel.count(ctx);
                entries.push((carry, running));
                running += req;
            }
            ctx.flush_deferred();
            warp_start += WARP;
        }
        BlockCount {
            entries,
            total: running,
        }
    };

    let counts: Vec<BlockCount<K::Carry>> = (0..grid)
        .into_par_iter()
        .map_init(|| NativeCtx::new(mem), |ctx, bid| count_block(ctx, bid))
        .collect();

    let mut bases = Vec::with_capacity(grid as usize);
    let mut total = 0u32;
    for bc in &counts {
        bases.push(total);
        total += bc.total;
    }

    counts.into_par_iter().enumerate().for_each_init(
        || NativeCtx::new(mem),
        |ctx, (bid, bc)| {
            let bid = bid as u32;
            ctx.bid = bid;
            ctx.bdim = block_threads;
            ctx.gdim = grid;
            ctx.smem.clear();
            ctx.smem.resize(kernel.smem_per_block() as usize / 4, 0);
            let base = bases[bid as usize];
            let mut it = bc.entries.into_iter();
            let mut warp_start = 0;
            while warp_start < block_threads {
                let active = WARP.min(block_threads - warp_start);
                for lane in 0..active {
                    ctx.tid = warp_start + lane;
                    let (carry, offset) = it.next().expect("one entry per thread");
                    kernel.emit(ctx, carry, base + offset);
                }
                ctx.flush_deferred();
                warp_start += WARP;
            }
        },
    );

    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{grid_for, launch, launch_coop, ExecMode};
    use crate::Device;

    struct Saxpy {
        a: f32,
        x: Buffer<f32>,
        y: Buffer<f32>,
    }

    impl Kernel for Saxpy {
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            if i < self.x.len() {
                let xi = t.ldg(self.x, i);
                let yi = t.ld(self.y, i);
                t.alu(2);
                t.st(self.y, i, self.a * xi + yi);
            }
        }
    }

    #[test]
    fn native_saxpy_matches_reference() {
        let mut mem = GpuMem::new();
        let n = 1500;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| (3 * i) as f32).collect();
        let xb = mem.alloc_from_slice(&x);
        let yb = mem.alloc_from_slice(&y);
        launch_native(
            &mem,
            grid_for(n, 128),
            128,
            &Saxpy {
                a: 2.0,
                x: xb,
                y: yb,
            },
        );
        let out = mem.read_vec(yb);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + 3.0 * i as f32);
        }
    }

    /// A warp-synchronous kernel: every lane reads its left neighbor's slot
    /// and writes its own via `st_warp`. Lockstep semantics say each lane
    /// must observe the *pre-warp* value. The native executor must agree
    /// with the simulator.
    struct WarpShift {
        data: Buffer<u32>,
    }

    impl Kernel for WarpShift {
        fn run(&self, t: &mut impl KernelCtx) {
            let i = t.global_id() as usize;
            if i >= self.data.len() {
                return;
            }
            let left = if i == 0 { 0 } else { t.ld(self.data, i - 1) };
            t.st_warp(self.data, i, left + 1);
        }
    }

    #[test]
    fn st_warp_defers_like_the_simulator() {
        let run_native = || {
            let mut mem = GpuMem::new();
            let d = mem.alloc::<u32>(256);
            launch_native(&mem, grid_for(256, 128), 128, &WarpShift { data: d });
            mem.read_vec(d)
        };
        let run_simt = || {
            let mut mem = GpuMem::new();
            let d = mem.alloc::<u32>(256);
            let dev = Device::tiny();
            launch(
                &mem,
                &dev,
                ExecMode::Deterministic,
                grid_for(256, 128),
                128,
                &WarpShift { data: d },
            );
            mem.read_vec(d)
        };
        assert_eq!(run_native(), run_simt());
    }

    struct FilterAbove {
        data: Buffer<u32>,
        out: Buffer<u32>,
        threshold: u32,
    }

    impl CoopKernel for FilterAbove {
        type Carry = u32;
        fn count(&self, t: &mut impl KernelCtx) -> (u32, u32) {
            let i = t.global_id() as usize;
            if i >= self.data.len() {
                return (0, 0);
            }
            let v = t.ld(self.data, i);
            (i as u32, (v > self.threshold) as u32)
        }
        fn emit(&self, t: &mut impl KernelCtx, carry: u32, dst: u32) {
            let i = carry as usize;
            if i < self.data.len() && t.ld(self.data, i) > self.threshold {
                t.st(self.out, dst as usize, carry);
            }
        }
    }

    #[test]
    fn native_coop_matches_simulator_layout() {
        let n = 4000;
        let data: Vec<u32> = (0..n as u32).map(|i| i * 13 % 97).collect();

        let mut mem_n = GpuMem::new();
        let dn = mem_n.alloc_from_slice(&data);
        let on = mem_n.alloc::<u32>(n);
        let total_n = launch_coop_native(
            &mem_n,
            grid_for(n, 128),
            128,
            &FilterAbove {
                data: dn,
                out: on,
                threshold: 48,
            },
        );

        let mut mem_s = GpuMem::new();
        let ds = mem_s.alloc_from_slice(&data);
        let os = mem_s.alloc::<u32>(n);
        let dev = Device::tiny();
        let (_, total_s) = launch_coop(
            &mem_s,
            &dev,
            ExecMode::Deterministic,
            grid_for(n, 128),
            128,
            &FilterAbove {
                data: ds,
                out: os,
                threshold: 48,
            },
        );

        assert_eq!(total_n, total_s);
        assert_eq!(
            mem_n.read_vec(on)[..total_n as usize],
            mem_s.read_vec(os)[..total_s as usize]
        );
    }

    #[test]
    fn native_coop_zero_grid() {
        let mut mem = GpuMem::new();
        let d = mem.alloc::<u32>(1);
        let o = mem.alloc::<u32>(1);
        let total = launch_coop_native(
            &mem,
            0,
            128,
            &FilterAbove {
                data: d,
                out: o,
                threshold: 0,
            },
        );
        assert_eq!(total, 0);
    }
}

//! CUDA-style occupancy calculator.
//!
//! Fig. 8 of the paper sweeps the thread-block size and finds performance
//! peaks at 128/256 threads: small blocks under-populate the SM (too few
//! warps to hide memory latency), very large blocks over-commit resources
//! ("resource oversaturation"). Both effects fall out of this calculator:
//! resident blocks per SM are limited by the thread / block / register /
//! shared-memory budgets, and the timing model converts resident warps
//! into latency-hiding capability.

use crate::config::Device;
use serde::{Deserialize, Serialize};

/// Which resource bound the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// `max_threads_per_sm / block_threads`.
    Threads,
    /// `max_blocks_per_sm`.
    Blocks,
    /// Register file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
    /// Fewer blocks were launched than one SM could host.
    GridSize,
}

/// Result of the occupancy computation for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub resident_blocks: u32,
    /// Warps resident per SM.
    pub resident_warps: u32,
    /// `resident_warps / max_warps_per_sm`.
    pub fraction: f64,
    /// The binding resource.
    pub limiter: Limiter,
}

/// Computes occupancy for a launch of `grid_blocks` blocks of
/// `block_threads` threads, where each thread uses `regs_per_thread`
/// registers and each block `smem_per_block` bytes of shared memory.
///
/// ```
/// use gcol_simt::{occupancy, Device};
/// let dev = Device::k20c();
/// // The paper's default 128-thread blocks fill the SM...
/// assert_eq!(occupancy(&dev, 1 << 16, 128, 32, 0).resident_warps, 64);
/// // ...while 32-thread blocks leave it three-quarters empty (Fig. 8).
/// assert_eq!(occupancy(&dev, 1 << 16, 32, 32, 0).resident_warps, 16);
/// ```
pub fn occupancy(
    dev: &Device,
    grid_blocks: u32,
    block_threads: u32,
    regs_per_thread: u32,
    smem_per_block: u32,
) -> Occupancy {
    assert!(block_threads >= 1, "empty blocks are not launchable");
    let warps_per_block = block_threads.div_ceil(dev.warp_size);

    let by_threads = dev.max_threads_per_sm / block_threads.max(1);
    let by_blocks = dev.max_blocks_per_sm;
    // Registers are allocated per warp with a granularity.
    let regs_per_warp =
        (regs_per_thread * dev.warp_size).next_multiple_of(dev.reg_alloc_granularity.max(1));
    let regs_per_block = regs_per_warp * warps_per_block;
    let by_regs = dev
        .regs_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_smem = dev
        .smem_per_sm
        .checked_div(smem_per_block)
        .unwrap_or(u32::MAX);
    // Blocks the grid can actually supply per SM (ceil: the busiest SM).
    let by_grid = grid_blocks.div_ceil(dev.num_sms).max(1);

    let candidates = [
        (by_threads, Limiter::Threads),
        (by_blocks, Limiter::Blocks),
        (by_regs, Limiter::Registers),
        (by_smem, Limiter::SharedMemory),
        (by_grid, Limiter::GridSize),
    ];
    let (mut blocks, mut limiter) = (u32::MAX, Limiter::Blocks);
    for (b, l) in candidates {
        if b < blocks {
            blocks = b;
            limiter = l;
        }
    }
    let blocks = blocks.max(1).min(dev.max_blocks_per_sm);
    let warps = (blocks * warps_per_block).min(dev.max_warps_per_sm);
    Occupancy {
        resident_blocks: blocks,
        resident_warps: warps,
        fraction: warps as f64 / dev.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k20c() -> Device {
        Device::k20c()
    }

    /// Large grid so GridSize never binds.
    const BIG_GRID: u32 = 1 << 16;

    #[test]
    fn small_blocks_are_block_count_limited() {
        // 32-thread blocks: 16 resident blocks = 16 warps = 25% — the
        // paper's "few warps running simultaneously" regime.
        let o = occupancy(&k20c(), BIG_GRID, 32, 32, 0);
        assert_eq!(o.resident_blocks, 16);
        assert_eq!(o.resident_warps, 16);
        assert_eq!(o.limiter, Limiter::Blocks);
        assert!((o.fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    fn block_128_reaches_high_occupancy_with_modest_regs() {
        let o = occupancy(&k20c(), BIG_GRID, 128, 32, 0);
        // 128 * 32 regs = 4096/block → 16 blocks, thread-limited to 16,
        // 64 warps = 100%.
        assert_eq!(o.resident_warps, 64);
        assert!((o.fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn register_pressure_limits_big_blocks() {
        // 36 regs/thread: 512-thread block needs 512*36≈18.4K regs →
        // 3 blocks → 48 warps = 75% (the paper's >256 degradation).
        let o = occupancy(&k20c(), BIG_GRID, 512, 36, 0);
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.resident_blocks, 3);
        assert_eq!(o.resident_warps, 48);
    }

    #[test]
    fn shared_memory_limits() {
        let o = occupancy(&k20c(), BIG_GRID, 128, 16, 16 * 1024);
        assert_eq!(o.limiter, Limiter::SharedMemory);
        assert_eq!(o.resident_blocks, 3);
    }

    #[test]
    fn tiny_grid_underfills_sms() {
        // 13 SMs, 13 blocks → 1 block per SM regardless of resources.
        let o = occupancy(&k20c(), 13, 128, 16, 0);
        assert_eq!(o.resident_blocks, 1);
        assert_eq!(o.limiter, Limiter::GridSize);
    }

    #[test]
    fn warps_capped_by_max_warps() {
        let d = k20c();
        let o = occupancy(&d, BIG_GRID, 2048, 16, 0);
        assert!(o.resident_warps <= d.max_warps_per_sm);
    }

    #[test]
    fn occupancy_monotone_in_register_use() {
        let d = k20c();
        let lo = occupancy(&d, BIG_GRID, 256, 16, 0);
        let hi = occupancy(&d, BIG_GRID, 256, 64, 0);
        assert!(hi.resident_warps <= lo.resident_warps);
    }
}

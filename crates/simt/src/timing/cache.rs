//! Set-associative LRU cache model, used for both the per-SM read-only
//! data cache and the per-SM L2 slice.
//!
//! The model is deterministic and content-free: it tracks line *addresses*
//! only. The paper's `__ldg` optimization (Fig. 4) is reproduced by giving
//! `Ldg` ops a probe path through this cache before L2, while plain `ld`
//! ops bypass it — exactly the Kepler behavior §III-C describes.

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// log2(line size in bytes).
    line_shift: u32,
    num_sets: usize,
    ways: usize,
    /// `tags[set * ways + way]` — tag + valid bit packed as Option.
    tags: Vec<Option<u64>>,
    /// LRU stamps, same layout; larger = more recent.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `line_bytes` lines and `ways`
    /// associativity. Sizes are rounded down to the nearest valid
    /// power-of-two set count; a degenerate size yields a 1-set cache.
    pub fn new(size_bytes: u32, line_bytes: u32, ways: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways >= 1);
        let lines = (size_bytes / line_bytes).max(1);
        let desired = (lines / ways).max(1);
        // Largest power of two ≤ desired (sets must be a power of two for
        // mask indexing).
        let sets = if desired.is_power_of_two() {
            desired
        } else {
            desired.next_power_of_two() / 2
        };
        let num_sets = sets.max(1) as usize;
        let ways = ways as usize;
        Self {
            line_shift: line_bytes.trailing_zeros(),
            num_sets,
            ways,
            tags: vec![None; num_sets * ways],
            stamps: vec![0; num_sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line address (byte address >> line_shift).
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        1u64 << self.line_shift
    }

    /// Probes (and on miss, fills) the line containing `byte_addr`.
    /// Returns `true` on hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let line = self.line_of(byte_addr);
        let set = (line as usize) & (self.num_sets - 1);
        let base = set * self.ways;
        self.tick += 1;
        // Hit?
        for w in 0..self.ways {
            if self.tags[base + w] == Some(line) {
                self.stamps[base + w] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        // Miss: fill LRU way.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let s = if self.tags[base + w].is_none() {
                0 // invalid lines are always the first choice
            } else {
                self.stamps[base + w]
            };
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = Some(line);
        self.stamps[base + victim] = self.tick;
        false
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total capacity in bytes actually modeled (after rounding).
    pub fn capacity_bytes(&self) -> u64 {
        (self.num_sets * self.ways) as u64 * self.line_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(1024, 128, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(64)); // same 128B line
        assert!(!c.access(128)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets x 2 ways of 128B lines = 512B. Lines mapping to set 0:
        // byte addresses 0, 256, 512, ...
        let mut c = Cache::new(512, 128, 2);
        assert_eq!(c.capacity_bytes(), 512);
        assert!(!c.access(0)); // set 0, line 0
        assert!(!c.access(256)); // set 0, line 2
        assert!(c.access(0)); // refresh line 0
        assert!(!c.access(512)); // set 0, line 4 — evicts line 2 (LRU)
        assert!(c.access(0)); // line 0 still resident
        assert!(!c.access(256)); // line 2 was evicted
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(1024, 32, 4);
        // Stream 4 KiB twice: second pass still misses (capacity).
        for pass in 0..2 {
            for addr in (0..4096u64).step_by(32) {
                let hit = c.access(addr);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0, "LRU streaming working set 4x capacity never hits");
        assert_eq!(misses, 256);
    }

    #[test]
    fn working_set_smaller_than_capacity_hits() {
        let mut c = Cache::new(4096, 32, 4);
        for _ in 0..3 {
            for addr in (0..2048u64).step_by(32) {
                c.access(addr);
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(misses, 64, "only compulsory misses");
        assert_eq!(hits, 128);
    }

    #[test]
    fn degenerate_tiny_cache() {
        let mut c = Cache::new(32, 32, 1);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(!c.access(32));
        assert!(!c.access(0)); // evicted by the single-line cache
    }
}

//! Set-associative LRU cache model, used for both the per-SM read-only
//! data cache and the per-SM L2 slice.
//!
//! The model is deterministic and content-free: it tracks line *addresses*
//! only. The paper's `__ldg` optimization (Fig. 4) is reproduced by giving
//! `Ldg` ops a probe path through this cache before L2, while plain `ld`
//! ops bypass it — exactly the Kepler behavior §III-C describes.
//!
//! ## Representation
//!
//! Recency is encoded *positionally*: each set's ways are stored MRU→LRU
//! in a contiguous run of `u32` tags. A hit rotates the line to the front
//! of its set; a miss evicts the last (= least recently used) way and
//! inserts at the front. This is observably identical to the classic
//! stamp-based true-LRU formulation (same hit/miss sequence for any
//! access stream — see the `matches_stamp_based_reference` test) but a
//! 16-way set is a single 64-byte host cache line, so the simulator-side
//! probe — the hottest operation in warp replay — touches one line where
//! the tags+stamps layout touched three.

/// Tag value of an empty way. Real line addresses stay below it: device
/// byte addresses come from u32 *word* addresses (< 2^34 bytes) and lines
/// are ≥ 32 bytes, so line numbers fit in well under 30 bits.
const INVALID_TAG: u32 = u32::MAX;

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// log2(line size in bytes).
    line_shift: u32,
    num_sets: usize,
    ways: usize,
    /// `tags[set * ways ..][..ways]`, each set ordered MRU→LRU;
    /// [`INVALID_TAG`] marks an empty way (empty ways sink to the back and
    /// are always evicted before any valid line).
    tags: Vec<u32>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `line_bytes` lines and `ways`
    /// associativity. Sizes are rounded down to the nearest valid
    /// power-of-two set count; a degenerate size yields a 1-set cache.
    pub fn new(size_bytes: u32, line_bytes: u32, ways: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways >= 1);
        let lines = (size_bytes / line_bytes).max(1);
        let desired = (lines / ways).max(1);
        // Largest power of two ≤ desired (sets must be a power of two for
        // mask indexing).
        let sets = if desired.is_power_of_two() {
            desired
        } else {
            desired.next_power_of_two() / 2
        };
        let num_sets = sets.max(1) as usize;
        let ways = ways as usize;
        Self {
            line_shift: line_bytes.trailing_zeros(),
            num_sets,
            ways,
            tags: vec![INVALID_TAG; num_sets * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Line address (byte address >> line_shift).
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        1u64 << self.line_shift
    }

    /// Probes (and on miss, fills) the line containing `byte_addr`.
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let line64 = self.line_of(byte_addr);
        debug_assert!(line64 < INVALID_TAG as u64, "address beyond tag range");
        let line = line64 as u32;
        let set = (line64 as usize) & (self.num_sets - 1);
        let ways = self.ways;
        let set_tags = &mut self.tags[set * ways..set * ways + ways];
        // MRU-first scan (a contiguous u32 run the compiler vectorizes).
        let mut w = 0;
        while w < ways && set_tags[w] != line {
            w += 1;
        }
        let hit = w < ways;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            w = ways - 1; // evict the LRU (last) way
        }
        // Rotate ways 0..w one step back and put `line` at the MRU front.
        set_tags.copy_within(0..w, 1);
        set_tags[0] = line;
        hit
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total capacity in bytes actually modeled (after rounding).
    pub fn capacity_bytes(&self) -> u64 {
        (self.num_sets * self.ways) as u64 * self.line_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(1024, 128, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(64)); // same 128B line
        assert!(!c.access(128)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets x 2 ways of 128B lines = 512B. Lines mapping to set 0:
        // byte addresses 0, 256, 512, ...
        let mut c = Cache::new(512, 128, 2);
        assert_eq!(c.capacity_bytes(), 512);
        assert!(!c.access(0)); // set 0, line 0
        assert!(!c.access(256)); // set 0, line 2
        assert!(c.access(0)); // refresh line 0
        assert!(!c.access(512)); // set 0, line 4 — evicts line 2 (LRU)
        assert!(c.access(0)); // line 0 still resident
        assert!(!c.access(256)); // line 2 was evicted
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(1024, 32, 4);
        // Stream 4 KiB twice: second pass still misses (capacity).
        for pass in 0..2 {
            for addr in (0..4096u64).step_by(32) {
                let hit = c.access(addr);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0, "LRU streaming working set 4x capacity never hits");
        assert_eq!(misses, 256);
    }

    #[test]
    fn working_set_smaller_than_capacity_hits() {
        let mut c = Cache::new(4096, 32, 4);
        for _ in 0..3 {
            for addr in (0..2048u64).step_by(32) {
                c.access(addr);
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(misses, 64, "only compulsory misses");
        assert_eq!(hits, 128);
    }

    #[test]
    fn degenerate_tiny_cache() {
        let mut c = Cache::new(32, 32, 1);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(!c.access(32));
        assert!(!c.access(0)); // evicted by the single-line cache
    }

    /// The stamp-based true-LRU formulation this cache used before recency
    /// became positional; kept as the reference the fast path must match.
    struct StampLru {
        line_shift: u32,
        num_sets: usize,
        ways: usize,
        tags: Vec<Option<u64>>,
        stamps: Vec<u64>,
        tick: u64,
    }

    impl StampLru {
        fn like(c: &Cache) -> Self {
            Self {
                line_shift: c.line_shift,
                num_sets: c.num_sets,
                ways: c.ways,
                tags: vec![None; c.num_sets * c.ways],
                stamps: vec![0; c.num_sets * c.ways],
                tick: 0,
            }
        }

        fn access(&mut self, byte_addr: u64) -> bool {
            let line = byte_addr >> self.line_shift;
            let set = (line as usize) & (self.num_sets - 1);
            let base = set * self.ways;
            self.tick += 1;
            for w in 0..self.ways {
                if self.tags[base + w] == Some(line) {
                    self.stamps[base + w] = self.tick;
                    return true;
                }
            }
            let mut victim = 0;
            let mut oldest = u64::MAX;
            for w in 0..self.ways {
                let s = if self.tags[base + w].is_none() {
                    0
                } else {
                    self.stamps[base + w]
                };
                if s < oldest {
                    oldest = s;
                    victim = w;
                }
            }
            self.tags[base + victim] = Some(line);
            self.stamps[base + victim] = self.tick;
            false
        }
    }

    /// splitmix64, to keep this test dependency-free.
    fn rng(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn matches_stamp_based_reference() {
        for (size, line, ways, addr_space) in [
            (1 << 15, 32, 16, 1u64 << 17), // L2-slice-like, thrashing
            (48 << 10, 128, 4, 1 << 16),   // RO-cache-like, mostly hitting
            (512, 32, 2, 1 << 12),
            (32, 32, 1, 1 << 8),
        ] {
            let mut fast = Cache::new(size, line, ways);
            let mut reference = StampLru::like(&fast);
            let mut state = 0xC0FFEEu64 ^ (size as u64);
            // Mix of random and strided (warp-like) addresses.
            for i in 0..200_000u64 {
                let a = if i % 3 == 0 {
                    (i * 4) % addr_space
                } else {
                    rng(&mut state) % addr_space
                };
                assert_eq!(
                    fast.access(a),
                    reference.access(a),
                    "diverged at access {i} (addr {a}, geometry {size}/{line}/{ways})"
                );
            }
        }
    }
}

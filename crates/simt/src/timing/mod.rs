//! The analytic timing model.
//!
//! Per warp, the i-th memory operations of the 32 lanes are replayed as one
//! warp-level access: a coalescer groups lane addresses into cache-line
//! transactions, each transaction probes the read-only cache (`ldg` only)
//! and the SM's L2 slice, and the warp is charged the worst transaction's
//! latency. Per SM, totals feed a simplified Hong–Kim MWP/CWP model: the
//! SM's busy time is the maximum of its compute-issue time, its exposed
//! memory latency after overlap across resident warps, and its share of
//! DRAM bandwidth. The kernel's time is the slowest SM, floored by the
//! chip-wide bandwidth bound — which is how the model reproduces the
//! paper's "highly memory latency bound" characterization (Fig. 3).
//!
//! ## Replay hot path
//!
//! [`SmState::account_warp`] consumes a flat [`WarpTrace`]. Each op slot
//! carries a kind-summary bitmask built during tracing, so the replay
//! charges the (overwhelmingly common) kind-uniform slot with a single
//! pass over the lanes; only genuinely divergent slots fall back to the
//! serialized per-kind replay. All replay scratch (the ≤32-entry lane
//! address buffer and the per-bank conflict counters) lives in a
//! `WarpScratch` owned by the `SmState`, so steady-state replay performs
//! zero heap allocations (see `tests/alloc_free_replay.rs`).

pub mod cache;
pub mod occupancy;

use crate::config::Device;
use crate::trace::{OpKind, WarpTrace, KIND_ORDER, MAX_WARP_LANES};
use cache::Cache;
use occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// Fraction-of-stalls breakdown in the style of Fig. 3(b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StallBreakdown {
    /// Waiting on outstanding memory (the dominant reason in the paper).
    pub memory_dependency: f64,
    /// Waiting on in-pipe arithmetic results.
    pub execution_dependency: f64,
    /// Block-wide barriers (`__syncthreads` in the scan kernels).
    pub synchronization: f64,
    /// Instruction fetch.
    pub instruction_fetch: f64,
    /// Everything else.
    pub other: f64,
}

/// Aggregate result of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Blocks launched.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Modeled duration in core cycles (including launch overhead).
    pub cycles: u64,
    /// Modeled duration in milliseconds.
    pub time_ms: f64,
    /// Warp-level instructions issued.
    pub instructions: u64,
    /// Memory transactions issued (after coalescing).
    pub mem_transactions: u64,
    /// Bytes transferred from/to DRAM.
    pub dram_bytes: u64,
    /// Read-only cache hits (ldg path).
    pub ro_hits: u64,
    /// Read-only cache misses.
    pub ro_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Atomic operations executed (lane-level).
    pub atomics: u64,
    /// Cycles lost to same-address atomic serialization.
    pub atomic_serial_cycles: u64,
    /// Occupancy achieved by this launch.
    pub occupancy: Occupancy,
    /// Achieved DRAM bandwidth as a fraction of peak (Fig. 3a).
    pub achieved_bw_frac: f64,
    /// Achieved issue rate as a fraction of peak (Fig. 3a).
    pub achieved_ipc_frac: f64,
    /// SIMD (branch) efficiency: fraction of issued lane slots that did
    /// useful work — 1.0 for divergence-free kernels, low when loop trip
    /// counts vary inside warps (degree skew).
    pub simd_efficiency: f64,
    /// Stall-reason fractions (Fig. 3b).
    pub stalls: StallBreakdown,
}

/// Reusable replay scratch owned by an [`SmState`]: a fixed lane-address
/// buffer for coalescing/dedup and the shared-memory per-bank counters.
/// Sized once (at `SmState::new` / first use) and reused for every warp,
/// so the replay loop never touches the heap.
struct WarpScratch {
    /// Lane byte addresses gathered for the current op slot, already
    /// line-aligned for global-memory kinds (see [`gather_mask`]).
    addrs: [u64; MAX_WARP_LANES],
    /// Number of valid entries in `addrs`.
    n: usize,
    /// Whether `addrs[..n]` came out of the gather in ascending order.
    /// Coalesced kernels emit ascending lane addresses, so tracking this
    /// during the gather makes the replay's sort a no-op in the common
    /// case.
    sorted: bool,
    /// Shared-memory bank occupancy counters (`Device::smem_banks` wide).
    per_bank: Vec<u64>,
}

impl WarpScratch {
    fn new(dev: &Device) -> Self {
        Self {
            addrs: [0; MAX_WARP_LANES],
            n: 0,
            sorted: true,
            per_bank: vec![0; dev.smem_banks.max(1) as usize],
        }
    }
}

/// Per-SM accumulation state: the private read-only cache plus
/// cycle/traffic counters. The L2 cache is owned by the executor and
/// passed in per access: in `Deterministic` mode one cache shared by all
/// SMs models GK110's address-partitioned chip-wide L2 exactly; in
/// `Parallel` mode each SM task probes a private `l2_bytes / num_sms`
/// slice (a documented approximation that keeps SM simulation
/// data-race-free).
pub struct SmState {
    ro: Cache,
    scratch: WarpScratch,
    /// Warp-level instructions issued (compute + memory issue slots).
    pub issue: u64,
    /// Sum over warp memory instructions of their (worst-transaction)
    /// latency — the latency the SM must hide.
    pub mem_lat: u64,
    /// Number of warp-level memory instructions.
    pub mem_insts: u64,
    /// Coalesced transactions.
    pub transactions: u64,
    /// Bytes moved between L2 and DRAM.
    pub dram_bytes: u64,
    /// Lane-level atomics.
    pub atomics: u64,
    /// Serialization cycles from same-address atomics.
    pub atomic_serial: u64,
    /// Barrier/scan synchronization cycles.
    pub sync_cycles: u64,
    /// Longest single-warp memory-latency chain seen (bounds how much of
    /// the total latency can actually overlap).
    pub max_warp_lat: u64,
    /// Lane-level op slots actually used (Σ per-lane trace lengths).
    pub simd_useful: u64,
    /// Lane-level op slots issued (Σ warps: max lane length × active
    /// lanes) — the denominator of SIMD/branch efficiency.
    pub simd_slots: u64,
}

impl SmState {
    /// Fresh per-SM state for one kernel launch on `dev`.
    pub fn new(dev: &Device) -> Self {
        Self {
            ro: Cache::new(dev.ro_cache_bytes, dev.ro_line_bytes, dev.ro_ways),
            scratch: WarpScratch::new(dev),
            issue: 0,
            mem_lat: 0,
            mem_insts: 0,
            transactions: 0,
            dram_bytes: 0,
            atomics: 0,
            atomic_serial: 0,
            sync_cycles: 0,
            max_warp_lat: 0,
            simd_useful: 0,
            simd_slots: 0,
        }
    }

    /// Read-only cache hit-miss counters.
    pub fn ro_stats(&self) -> (u64, u64) {
        self.ro.stats()
    }

    /// Accounts one warp's trace (positional SIMT alignment: the k-th op
    /// of every active lane forms one warp access; lanes that have
    /// exhausted their trace are masked off, approximating loop-bound
    /// divergence).
    ///
    /// Single pass per op slot: the slot's kind summary (built during
    /// tracing) says whether all lanes issued the same kind — if so the
    /// addresses are gathered without per-op kind tests and charged once.
    /// A divergent slot replays one kind at a time in [`KIND_ORDER`]
    /// (serialized replay), exactly as the pre-SoA accounting did.
    pub fn account_warp(&mut self, dev: &Device, l2: &mut Cache, warp: &WarpTrace) {
        let lanes = warp.lanes();
        debug_assert!(lanes <= dev.warp_size as usize);
        // SIMT compute issue: the warp executes until its longest lane is
        // done.
        self.issue += warp.max_alu();
        let mut warp_lat = 0u64;

        let max_ops = warp.max_ops();
        self.simd_useful += warp.total_ops() as u64;
        self.simd_slots += (max_ops * lanes) as u64;

        // Per-lane cursors into the flat op vector (stack-resident).
        let flat = warp.flat_ops();
        let mut start = [0usize; MAX_WARP_LANES];
        let mut len = [0usize; MAX_WARP_LANES];
        for l in 0..lanes {
            let (s, e) = warp.lane_span(l);
            start[l] = s;
            len[l] = e - s;
        }

        for k in 0..max_ops {
            let mask = warp.slot_kind_mask(k);
            if mask == OpKind::Local.bit() {
                // Local ops are charged address-free (fixed L1 latency);
                // skip the gather outright for the all-local slot — the
                // single most common slot kind in the coloring kernels
                // (the per-thread `colorMask` traffic).
                self.scratch.n = 1;
                warp_lat += self.charge_slot(dev, l2, OpKind::Local);
            } else if mask.count_ones() == 1 {
                // Kind-uniform slot (the common case): one fused pass
                // gathers, line-aligns and order-checks the lane
                // addresses, with no per-op kind tests.
                let kind = OpKind::from_bit(mask);
                let amask = gather_mask(dev, kind);
                let mut n = 0;
                let mut prev = 0u64;
                let mut sorted = true;
                for l in 0..lanes {
                    if k < len[l] {
                        let a = (flat[start[l] + k].addr as u64 * 4) & amask;
                        sorted &= a >= prev;
                        prev = a;
                        self.scratch.addrs[n] = a;
                        n += 1;
                    }
                }
                self.scratch.n = n;
                self.scratch.sorted = sorted;
                warp_lat += self.charge_slot(dev, l2, kind);
            } else {
                // Divergent slot (rare): serialized replay, one warp
                // access per kind present, in canonical order.
                for kind in KIND_ORDER {
                    if mask & kind.bit() == 0 {
                        continue;
                    }
                    let amask = gather_mask(dev, kind);
                    let mut n = 0;
                    let mut prev = 0u64;
                    let mut sorted = true;
                    for l in 0..lanes {
                        if k < len[l] {
                            let op = flat[start[l] + k];
                            if op.kind == kind {
                                let a = (op.addr as u64 * 4) & amask;
                                sorted &= a >= prev;
                                prev = a;
                                self.scratch.addrs[n] = a;
                                n += 1;
                            }
                        }
                    }
                    self.scratch.n = n;
                    self.scratch.sorted = sorted;
                    warp_lat += self.charge_slot(dev, l2, kind);
                }
            }
        }
        self.max_warp_lat = self.max_warp_lat.max(warp_lat);
    }

    /// Charges one warp-level access of `kind` over the addresses
    /// currently in the scratch buffer. Returns the warp-visible latency
    /// (also added to `mem_lat`).
    fn charge_slot(&mut self, dev: &Device, l2: &mut Cache, kind: OpKind) -> u64 {
        debug_assert!(self.scratch.n > 0, "empty slot charge");
        let lat = match kind {
            OpKind::Smem => {
                // Bank conflicts: lanes hitting distinct words in the same
                // bank serialize; same-word access is a broadcast. The
                // scratch holds byte-scaled word indices (the line-dedup
                // byte convention does not apply).
                let banks = dev.smem_banks.max(1) as u64;
                if self.scratch.per_bank.len() != banks as usize {
                    // Only reachable if a warp is accounted against a
                    // different device than `SmState::new` saw.
                    self.scratch.per_bank.resize(banks as usize, 0);
                }
                self.scratch.per_bank.fill(0);
                let n = self.dedup_scratch(); // same word broadcasts
                for i in 0..n {
                    // Addresses were scaled to bytes during the gather;
                    // undo to recover the word index.
                    let a = self.scratch.addrs[i];
                    self.scratch.per_bank[((a / 4) % banks) as usize] += 1;
                }
                let ways = self
                    .scratch
                    .per_bank
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(1)
                    .max(1);
                self.issue += ways;
                ways * dev.smem_cycles as u64
            }
            OpKind::Local => {
                // L1-speed, fully pipelined: issue slots only.
                self.issue += 1;
                dev.local_cycles as u64
            }
            OpKind::Ld if dev.l1_caches_globals => {
                // Fermi path: plain loads are L1-cached, so they behave
                // like Kepler's ldg path.
                let lat = self.ldg_access(dev, l2);
                self.issue += 1;
                lat
            }
            OpKind::Ld | OpKind::St => {
                let lat = self.global_access(dev, l2);
                self.issue += 1;
                lat
            }
            OpKind::Ldg => {
                let lat = self.ldg_access(dev, l2);
                self.issue += 1;
                lat
            }
            OpKind::Atomic => {
                let lat = self.atomic_access(dev, l2);
                self.issue += 1;
                lat
            }
        };
        self.mem_lat += lat;
        self.mem_insts += 1;
        lat
    }

    /// Sorts the scratch (skipped when the gather already saw ascending
    /// addresses) and dedups it in place; returns the deduped length.
    #[inline]
    fn dedup_scratch(&mut self) -> usize {
        let addrs = &mut self.scratch.addrs[..self.scratch.n];
        if !self.scratch.sorted {
            addrs.sort_unstable();
        }
        let n = dedup_sorted(addrs);
        self.scratch.n = n;
        n
    }

    /// Coalesces the scratch addresses (line-aligned by the gather) into
    /// L2-line transactions, probes the L2 slice, returns the
    /// warp-visible latency (worst transaction).
    fn global_access(&mut self, dev: &Device, l2: &mut Cache) -> u64 {
        let line = dev.l2_line_bytes as u64;
        let n = self.dedup_scratch();
        self.transactions += n as u64;
        // Additional transactions occupy the LSU pipe: charge issue slots.
        self.issue += n as u64 - 1;
        let mut worst = 0u64;
        for i in 0..n {
            let a = self.scratch.addrs[i];
            let lat = if l2.access(a) {
                dev.l2_hit_cycles as u64
            } else {
                self.dram_bytes += line;
                dev.dram_cycles as u64
            };
            worst = worst.max(lat);
        }
        worst
    }

    /// `__ldg` path: read-only cache first (128-byte lines), L2 slice on
    /// miss.
    fn ldg_access(&mut self, dev: &Device, l2: &mut Cache) -> u64 {
        let line = dev.ro_line_bytes as u64;
        let n = self.dedup_scratch();
        self.transactions += n as u64;
        self.issue += n as u64 - 1;
        let mut worst = 0u64;
        for i in 0..n {
            let a = self.scratch.addrs[i];
            let lat = if self.ro.access(a) {
                dev.ro_hit_cycles as u64
            } else if l2.access(a) {
                (dev.ro_hit_cycles + dev.l2_hit_cycles) as u64
            } else {
                self.dram_bytes += line;
                (dev.ro_hit_cycles + dev.dram_cycles) as u64
            };
            worst = worst.max(lat);
        }
        worst
    }

    /// Atomics resolve at the L2/AOU; lanes hitting the same word
    /// serialize.
    fn atomic_access(&mut self, dev: &Device, l2: &mut Cache) -> u64 {
        let n0 = self.scratch.n;
        self.atomics += n0 as u64;
        // Group by exact address: count the worst same-address burst.
        if !self.scratch.sorted {
            self.scratch.addrs[..n0].sort_unstable();
        }
        let mut groups = 0u64;
        let mut worst_burst = 0u64;
        let mut i = 0;
        while i < n0 {
            let mut j = i + 1;
            while j < n0 && self.scratch.addrs[j] == self.scratch.addrs[i] {
                j += 1;
            }
            groups += 1;
            worst_burst = worst_burst.max((j - i) as u64);
            i = j;
        }
        let serial = worst_burst.saturating_sub(1) * dev.atomic_serial_cycles as u64;
        self.atomic_serial += serial;
        self.transactions += groups;
        self.issue += groups - 1;
        // The L2/AOU sees one access per distinct address.
        let n = dedup_sorted(&mut self.scratch.addrs[..n0]);
        self.scratch.n = n;
        let mut worst = 0u64;
        for i in 0..n {
            let a = self.scratch.addrs[i];
            if l2.access(a) {
                worst = worst.max(dev.l2_hit_cycles as u64);
            } else {
                self.dram_bytes += dev.l2_line_bytes as u64;
                worst = worst.max(dev.dram_cycles as u64);
            }
        }
        worst + serial
    }

    /// Charges a block-wide barrier + scan: `steps` barrier rounds over
    /// `warps_in_block` warps (Hillis–Steele shared-memory scan).
    pub fn charge_block_scan(&mut self, dev: &Device, block_threads: u32) {
        let steps = 32 - (block_threads.max(1) - 1).leading_zeros(); // ceil log2
        let warps = block_threads.div_ceil(dev.warp_size) as u64;
        // Each step: one smem read+write+add per warp, plus a barrier.
        let per_warp_instr = 3 * steps as u64;
        self.issue += per_warp_instr * warps;
        // Barrier cost: all warps rendezvous; charge ~20 cycles per step.
        let sync = 20 * steps as u64;
        self.sync_cycles += sync;
    }

    /// Charges the one global `atomicAdd` a cooperative block issues to
    /// reserve its output range (Fig. 5). Modeled as an L2-resident
    /// counter round trip with no serialization: blocks arrive spread in
    /// time, unlike lanes of one warp.
    pub fn charge_block_base_atomic(&mut self, dev: &Device) {
        self.atomics += 1;
        self.mem_lat += dev.l2_hit_cycles as u64;
        self.mem_insts += 1;
        self.issue += 1;
    }
}

/// In-place dedup of sorted values; returns the deduped length.
#[inline]
fn dedup_sorted(addrs: &mut [u64]) -> usize {
    let mut w = 0usize;
    for i in 0..addrs.len() {
        if w == 0 || addrs[i] != addrs[w - 1] {
            addrs[w] = addrs[i];
            w += 1;
        }
    }
    w
}

/// Address mask applied during the gather for `kind`: global
/// loads/stores are line-aligned up front (32-byte L2 lines; 128-byte
/// read-only lines for `__ldg` and for plain loads on devices whose L1
/// caches globals), so the charge path needn't re-walk the buffer.
/// Atomics and shared-memory ops keep exact byte addresses — they dedup
/// and bank by word, not by line.
#[inline]
fn gather_mask(dev: &Device, kind: OpKind) -> u64 {
    match kind {
        OpKind::Ldg => !(dev.ro_line_bytes as u64 - 1),
        OpKind::Ld if dev.l1_caches_globals => !(dev.ro_line_bytes as u64 - 1),
        OpKind::Ld | OpKind::St => !(dev.l2_line_bytes as u64 - 1),
        _ => !0,
    }
}

/// Combines per-SM states into the final kernel statistics.
pub fn finalize(
    dev: &Device,
    name: &str,
    grid: u32,
    block: u32,
    occ: Occupancy,
    sms: &[SmState],
    l2_stats: (u64, u64),
) -> KernelStats {
    let mut worst_sm_cycles = 0f64;
    let mut total_issue = 0u64;
    let mut total_txn = 0u64;
    let mut total_dram = 0u64;
    let mut total_atomics = 0u64;
    let mut total_atomic_serial = 0u64;
    let mut total_mem_lat = 0u64;
    let mut total_sync = 0u64;
    let (mut ro_h, mut ro_m) = (0u64, 0u64);
    let (l2_h, l2_m) = l2_stats;
    let (mut simd_useful, mut simd_slots) = (0u64, 0u64);

    let per_sm_bw = dev.dram_bytes_per_cycle() / dev.num_sms as f64;
    // Memory-level parallelism grows sublinearly with resident warps:
    // outstanding requests contend for MSHRs, DRAM banks and the memory
    // queue, so doubling warps does not double overlap (the same
    // diminishing-returns term analytic models like Hong–Kim capture with
    // an MWP bound). Exponent 0.8 keeps hiding strictly monotone in
    // occupancy — which Fig. 8's block-size ordering depends on — while
    // matching the latency-bound character of Fig. 3.
    // Blocks retire at CTA granularity: a finishing block's warp slots sit
    // idle until its slowest warp drains, so larger blocks waste a bigger
    // slice of the resident-warp budget — the "resource oversaturation"
    // that makes >256-thread blocks suboptimal in Fig. 8.
    let warps_per_block = block.div_ceil(dev.warp_size) as f64;
    let drain = (1.0 - warps_per_block / (2.0 * occ.resident_warps.max(1) as f64)).max(0.5);

    let hiding = ((occ.resident_warps.max(1) as f64).powf(0.8) * drain).max(1.0);

    for sm in sms {
        let comp = sm.issue as f64 / dev.issue_width as f64;
        // The longest single-warp dependence chain (e.g. one thread
        // walking a hub vertex's adjacency, or a lone busy warp in a late
        // sparse pass) is a serial critical path: other resident warps
        // cannot shorten it — only the warp's own scoreboard depth
        // (`mem_ilp` outstanding requests) can.
        let chain_floor = sm.max_warp_lat as f64 / dev.mem_ilp;
        let exposed = (sm.mem_lat as f64 / hiding).max(chain_floor);
        let bw = sm.dram_bytes as f64 / per_sm_bw;
        let busy = comp.max(exposed).max(bw) + sm.sync_cycles as f64 + sm.atomic_serial as f64;
        worst_sm_cycles = worst_sm_cycles.max(busy);
        total_issue += sm.issue;
        total_txn += sm.transactions;
        total_dram += sm.dram_bytes;
        total_atomics += sm.atomics;
        total_atomic_serial += sm.atomic_serial;
        total_mem_lat += sm.mem_lat;
        total_sync += sm.sync_cycles;
        let (rh, rm) = sm.ro_stats();
        ro_h += rh;
        ro_m += rm;
        simd_useful += sm.simd_useful;
        simd_slots += sm.simd_slots;
    }

    // Chip-wide DRAM bandwidth floor.
    let bw_floor = total_dram as f64 / dev.dram_bytes_per_cycle();
    let overhead = dev.launch_overhead_us * 1e-6 * dev.clock_hz();
    let cycles = worst_sm_cycles.max(bw_floor) + overhead;
    let cycles_u = cycles.ceil() as u64;
    let time_ms = dev.cycles_to_ms(cycles_u);

    // Achieved fractions of peak (Fig. 3a).
    let achieved_bw_frac = (total_dram as f64 / cycles) / dev.dram_bytes_per_cycle();
    let achieved_ipc_frac = (total_issue as f64 / cycles) / dev.peak_issue_per_cycle();

    // Stall attribution (Fig. 3b): heuristic mapping from the model's
    // components to profiler categories. Memory dependency is the exposed
    // latency; execution dependency scales with issued compute (dependent
    // back-to-back issues); synchronization and atomic serialization are
    // explicit; fetch/other are small constants of the issue stream.
    // Stall attribution mimics nvprof's sampling: a stalled warp is
    // sampled once per issue opportunity, not once per latency cycle, so
    // only a bounded window of each memory wait is attributed (factor
    // 0.1 ≈ sampling period / average wait).
    let mem_dep = total_mem_lat as f64 * 0.1;
    let exec_dep = total_issue as f64 * 0.35;
    let sync = (total_sync + total_atomic_serial) as f64;
    let fetch = total_issue as f64 * 0.06;
    let other = total_issue as f64 * 0.08;
    let sum = (mem_dep + exec_dep + sync + fetch + other).max(1.0);
    let stalls = StallBreakdown {
        memory_dependency: mem_dep / sum,
        execution_dependency: exec_dep / sum,
        synchronization: sync / sum,
        instruction_fetch: fetch / sum,
        other: other / sum,
    };

    KernelStats {
        name: name.to_string(),
        grid,
        block,
        cycles: cycles_u,
        time_ms,
        instructions: total_issue,
        mem_transactions: total_txn,
        dram_bytes: total_dram,
        ro_hits: ro_h,
        ro_misses: ro_m,
        l2_hits: l2_h,
        l2_misses: l2_m,
        atomics: total_atomics,
        atomic_serial_cycles: total_atomic_serial,
        occupancy: occ,
        achieved_bw_frac,
        achieved_ipc_frac,
        simd_efficiency: if simd_slots > 0 {
            simd_useful as f64 / simd_slots as f64
        } else {
            1.0
        },
        stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;

    /// Builds a [`WarpTrace`] from per-lane (ops, alu) pairs — the shape
    /// the old per-lane `LaneTrace` API exposed.
    fn warp(lanes: &[(Vec<Op>, u64)]) -> WarpTrace {
        let mut t = WarpTrace::default();
        for (ops, alu) in lanes {
            t.begin_lane();
            for &o in ops {
                t.push(o);
            }
            t.add_alu(*alu);
        }
        t
    }

    /// A chip-wide L2 like the Deterministic executor uses.
    fn l2_of(dev: &Device) -> Cache {
        Cache::new(dev.l2_bytes, dev.l2_line_bytes, dev.l2_ways)
    }

    fn op(kind: OpKind, addr: u32) -> Op {
        Op { kind, addr }
    }

    #[test]
    fn coalesced_warp_load_is_one_transaction_per_line() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        // 32 lanes loading consecutive words: 32 * 4B = 128B = 4 L2
        // sectors of 32B.
        let lanes: Vec<(Vec<Op>, u64)> = (0..32).map(|i| (vec![op(OpKind::Ld, i)], 0)).collect();
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        assert_eq!(sm.transactions, 4);
        assert_eq!(sm.mem_insts, 1);
        assert_eq!(sm.dram_bytes, 4 * 32);
    }

    #[test]
    fn scattered_warp_load_is_many_transactions() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        // 32 lanes loading words 1000 apart: no two share a 32B sector.
        let lanes: Vec<(Vec<Op>, u64)> = (0..32)
            .map(|i| (vec![op(OpKind::Ld, i * 1000)], 0))
            .collect();
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        assert_eq!(sm.transactions, 32);
        assert_eq!(sm.dram_bytes, 32 * 32);
    }

    #[test]
    fn repeated_ld_hits_l2() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes = vec![(vec![op(OpKind::Ld, 0), op(OpKind::Ld, 0)], 0)];
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        let (l2_hits, l2_misses) = l2.stats();
        assert_eq!(l2_misses, 1);
        assert_eq!(l2_hits, 1);
        // First access paid DRAM latency, second the (cheaper) L2 latency.
        assert_eq!(sm.mem_lat, (dev.dram_cycles + dev.l2_hit_cycles) as u64);
    }

    #[test]
    fn ldg_hit_is_cheapest() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes = vec![(vec![op(OpKind::Ldg, 0), op(OpKind::Ldg, 0)], 0)];
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        let (ro_hits, ro_misses) = sm.ro_stats();
        assert_eq!(ro_misses, 1);
        assert_eq!(ro_hits, 1);
        // Second access: 30-cycle read-only hit, far below DRAM.
        assert!(sm.mem_lat < 2 * dev.dram_cycles as u64);
    }

    #[test]
    fn ldg_second_warp_reuses_line_ld_does_not_cache_in_ro() {
        // The Fig. 4 distinction: data loaded with ld is not in the RO
        // cache afterwards.
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes = vec![(vec![op(OpKind::Ld, 0)], 0)];
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        let (ro_hits, ro_misses) = sm.ro_stats();
        assert_eq!((ro_hits, ro_misses), (0, 0), "ld bypasses the RO cache");
    }

    #[test]
    fn same_address_atomics_serialize() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes: Vec<(Vec<Op>, u64)> =
            (0..32).map(|_| (vec![op(OpKind::Atomic, 7)], 0)).collect();
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        assert_eq!(sm.atomics, 32);
        assert_eq!(sm.atomic_serial, 31 * dev.atomic_serial_cycles as u64);
    }

    #[test]
    fn distinct_address_atomics_do_not_serialize() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes: Vec<(Vec<Op>, u64)> = (0..32)
            .map(|i| (vec![op(OpKind::Atomic, i * 64)], 0))
            .collect();
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        assert_eq!(sm.atomic_serial, 0);
        assert_eq!(sm.atomics, 32);
    }

    #[test]
    fn divergence_charges_max_lane() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let mut lanes = vec![(vec![], 2u64); 32];
        lanes[0].1 = 100; // one long lane dominates the warp
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        assert_eq!(sm.issue, 100);
    }

    #[test]
    fn mixed_kind_slot_replays_serially() {
        // Lanes diverge at slot 0: half load, half store, same line. The
        // divergent fallback charges one warp access per kind.
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes: Vec<(Vec<Op>, u64)> = (0..32)
            .map(|i| {
                let kind = if i % 2 == 0 { OpKind::Ld } else { OpKind::St };
                (vec![op(kind, i)], 0)
            })
            .collect();
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        assert_eq!(sm.mem_insts, 2, "one warp access per kind present");
        // 16 even words cover words 0..30 → 128B → 4 lines; odd same.
        assert_eq!(sm.transactions, 8);
    }

    #[test]
    fn finalize_is_bandwidth_floored() {
        let dev = Device::k20c();
        let occ = occupancy::occupancy(&dev, 1 << 16, 128, 32, 0);
        let mut sms: Vec<SmState> = (0..dev.num_sms).map(|_| SmState::new(&dev)).collect();
        // Give every SM a huge DRAM byte count with negligible latency sum.
        for sm in &mut sms {
            sm.dram_bytes = 1 << 28;
        }
        let stats = finalize(&dev, "bw-test", 100, 128, occ, &sms, (0, 0));
        let bytes = (dev.num_sms as u64) << 28;
        let floor = bytes as f64 / dev.dram_bytes_per_cycle();
        assert!(stats.cycles as f64 >= floor);
        assert!(stats.achieved_bw_frac > 0.9, "bw-bound kernel near peak");
    }

    #[test]
    fn stall_fractions_sum_to_one() {
        let dev = Device::k20c();
        let occ = occupancy::occupancy(&dev, 1 << 16, 128, 32, 0);
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes: Vec<(Vec<Op>, u64)> = (0..32)
            .map(|i| (vec![op(OpKind::Ld, i * 512)], 5))
            .collect();
        sm.account_warp(&dev, &mut l2, &warp(&lanes));
        let stats = finalize(&dev, "t", 1, 32, occ, &[sm], l2.stats());
        let s = stats.stalls;
        let sum = s.memory_dependency
            + s.execution_dependency
            + s.synchronization
            + s.instruction_fetch
            + s.other;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(
            s.memory_dependency > 0.4,
            "latency-bound kernel: memory stalls dominate, got {}",
            s.memory_dependency
        );
    }

    #[test]
    fn higher_occupancy_hides_more_latency() {
        let dev = Device::k20c();
        let mk = |warps: u32| Occupancy {
            resident_blocks: 1,
            resident_warps: warps,
            fraction: warps as f64 / 64.0,
            limiter: occupancy::Limiter::Blocks,
        };
        let mut sm_lo = SmState::new(&dev);
        sm_lo.mem_lat = 1_000_000;
        let mut sm_hi = SmState::new(&dev);
        sm_hi.mem_lat = 1_000_000;
        let t_lo = finalize(&dev, "lo", 1, 32, mk(8), &[sm_lo], (0, 0));
        let t_hi = finalize(&dev, "hi", 1, 32, mk(64), &[sm_hi], (0, 0));
        assert!(t_hi.cycles < t_lo.cycles);
    }

    #[test]
    fn block_scan_charge_grows_with_block_size() {
        let dev = Device::k20c();
        let mut a = SmState::new(&dev);
        let mut b = SmState::new(&dev);
        a.charge_block_scan(&dev, 64);
        b.charge_block_scan(&dev, 1024);
        assert!(b.issue > a.issue);
        assert!(b.sync_cycles > a.sync_cycles);
    }

    #[test]
    fn block_base_atomic_helper_charges_one_atomic() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        sm.charge_block_base_atomic(&dev);
        assert_eq!(sm.atomics, 1);
        assert_eq!(sm.mem_insts, 1);
        assert_eq!(sm.issue, 1);
        assert_eq!(sm.mem_lat, dev.l2_hit_cycles as u64);
    }

    // ------------------------------------------------------------------
    // Oracle equivalence: the pre-SoA accounting, kept verbatim as a
    // reference implementation, must agree bit-for-bit with the
    // single-pass replay on randomized traces.
    // ------------------------------------------------------------------

    /// The old per-lane trace accounting (exact copy of the pre-refactor
    /// `account_warp` and its heap-allocating helpers), used as the
    /// equivalence oracle.
    mod oracle {
        use super::super::*;
        use crate::trace::Op;

        pub fn account_warp(
            sm: &mut SmState,
            dev: &Device,
            l2: &mut Cache,
            lanes: &[(Vec<Op>, u64)],
        ) {
            debug_assert!(lanes.len() <= dev.warp_size as usize);
            sm.issue += lanes.iter().map(|l| l.1).max().unwrap_or(0);
            let mut warp_lat = 0u64;

            let max_ops = lanes.iter().map(|l| l.0.len()).max().unwrap_or(0);
            sm.simd_useful += lanes.iter().map(|l| l.0.len() as u64).sum::<u64>();
            sm.simd_slots += (max_ops * lanes.len()) as u64;
            let mut addrs: Vec<u64> = Vec::with_capacity(32);
            for k in 0..max_ops {
                for kind in KIND_ORDER {
                    addrs.clear();
                    for l in lanes {
                        if let Some(op) = l.0.get(k) {
                            if op.kind == kind {
                                addrs.push(op.addr as u64 * 4);
                            }
                        }
                    }
                    if addrs.is_empty() {
                        continue;
                    }
                    match kind {
                        OpKind::Smem => {
                            let banks = dev.smem_banks.max(1) as u64;
                            let mut per_bank = vec![0u64; banks as usize];
                            addrs.sort_unstable();
                            addrs.dedup();
                            for &a in addrs.iter() {
                                per_bank[((a / 4) % banks) as usize] += 1;
                            }
                            let ways = per_bank.iter().copied().max().unwrap_or(1).max(1);
                            let lat = ways * dev.smem_cycles as u64;
                            sm.issue += ways;
                            sm.mem_lat += lat;
                            warp_lat += lat;
                            sm.mem_insts += 1;
                        }
                        OpKind::Local => {
                            sm.issue += 1;
                            sm.mem_lat += dev.local_cycles as u64;
                            warp_lat += dev.local_cycles as u64;
                            sm.mem_insts += 1;
                        }
                        OpKind::Ld if dev.l1_caches_globals => {
                            let lat = ldg_access(sm, dev, l2, &mut addrs);
                            sm.issue += 1;
                            sm.mem_lat += lat;
                            warp_lat += lat;
                            sm.mem_insts += 1;
                        }
                        OpKind::Ld | OpKind::St => {
                            let lat = global_access(sm, dev, l2, &mut addrs);
                            sm.issue += 1;
                            sm.mem_lat += lat;
                            warp_lat += lat;
                            sm.mem_insts += 1;
                        }
                        OpKind::Ldg => {
                            let lat = ldg_access(sm, dev, l2, &mut addrs);
                            sm.issue += 1;
                            sm.mem_lat += lat;
                            warp_lat += lat;
                            sm.mem_insts += 1;
                        }
                        OpKind::Atomic => {
                            let lat = atomic_access(sm, dev, l2, &mut addrs);
                            sm.issue += 1;
                            sm.mem_lat += lat;
                            warp_lat += lat;
                            sm.mem_insts += 1;
                        }
                    }
                }
            }
            sm.max_warp_lat = sm.max_warp_lat.max(warp_lat);
        }

        fn dedup_lines_vec(addrs: &mut Vec<u64>, line: u64) {
            for a in addrs.iter_mut() {
                *a -= *a % line;
            }
            addrs.sort_unstable();
            addrs.dedup();
        }

        fn global_access(
            sm: &mut SmState,
            dev: &Device,
            l2: &mut Cache,
            addrs: &mut Vec<u64>,
        ) -> u64 {
            let line = dev.l2_line_bytes as u64;
            dedup_lines_vec(addrs, line);
            let mut worst = 0u64;
            for &a in addrs.iter() {
                let hit = l2.access(a);
                let lat = if hit {
                    dev.l2_hit_cycles as u64
                } else {
                    sm.dram_bytes += line;
                    dev.dram_cycles as u64
                };
                worst = worst.max(lat);
                sm.transactions += 1;
            }
            sm.issue += addrs.len() as u64 - 1;
            worst
        }

        fn ldg_access(sm: &mut SmState, dev: &Device, l2: &mut Cache, addrs: &mut Vec<u64>) -> u64 {
            let line = dev.ro_line_bytes as u64;
            dedup_lines_vec(addrs, line);
            let mut worst = 0u64;
            for &a in addrs.iter() {
                let lat = if sm.ro.access(a) {
                    dev.ro_hit_cycles as u64
                } else if l2.access(a) {
                    (dev.ro_hit_cycles + dev.l2_hit_cycles) as u64
                } else {
                    sm.dram_bytes += line;
                    (dev.ro_hit_cycles + dev.dram_cycles) as u64
                };
                worst = worst.max(lat);
                sm.transactions += 1;
            }
            sm.issue += addrs.len() as u64 - 1;
            worst
        }

        fn atomic_access(
            sm: &mut SmState,
            dev: &Device,
            l2: &mut Cache,
            addrs: &mut Vec<u64>,
        ) -> u64 {
            sm.atomics += addrs.len() as u64;
            addrs.sort_unstable();
            let mut groups = 0u64;
            let mut worst_burst = 0u64;
            let mut i = 0;
            while i < addrs.len() {
                let mut j = i + 1;
                while j < addrs.len() && addrs[j] == addrs[i] {
                    j += 1;
                }
                groups += 1;
                worst_burst = worst_burst.max((j - i) as u64);
                i = j;
            }
            let serial = worst_burst.saturating_sub(1) * dev.atomic_serial_cycles as u64;
            sm.atomic_serial += serial;
            sm.transactions += groups;
            sm.issue += groups - 1;
            addrs.dedup();
            let mut worst = 0u64;
            for &a in addrs.iter() {
                if l2.access(a) {
                    worst = worst.max(dev.l2_hit_cycles as u64);
                } else {
                    sm.dram_bytes += dev.l2_line_bytes as u64;
                    worst = worst.max(dev.dram_cycles as u64);
                }
            }
            worst + serial
        }
    }

    /// splitmix64 — deterministic, dependency-free randomness for the
    /// equivalence fuzz loop.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Generates one random warp: mostly kind-uniform slots with a
    /// sprinkling of divergent ones, variable lane counts and lengths,
    /// clustered addresses (cache hits + bank conflicts + shared lines).
    fn random_warp(rng: &mut Rng) -> Vec<(Vec<Op>, u64)> {
        let lanes = 1 + rng.below(32) as usize;
        let base_len = rng.below(8) as usize;
        // Choose a per-slot "majority" kind up front so most slots are
        // uniform, as real kernels are.
        let slot_kind: Vec<OpKind> = (0..base_len + 4)
            .map(|_| KIND_ORDER[rng.below(6) as usize])
            .collect();
        (0..lanes)
            .map(|_| {
                // Lane lengths vary around base_len (loop divergence).
                let len = match rng.below(4) {
                    0 => base_len.saturating_sub(rng.below(3) as usize),
                    1 => base_len + rng.below(3) as usize,
                    _ => base_len,
                };
                let ops = (0..len)
                    .map(|k| {
                        // 10% of ops diverge from the slot's majority kind.
                        let kind = if rng.below(10) == 0 {
                            KIND_ORDER[rng.below(6) as usize]
                        } else {
                            slot_kind[k]
                        };
                        // Clustered addresses: small word space so lines,
                        // banks and atomic targets collide frequently.
                        let addr = rng.below(4096) as u32;
                        Op { kind, addr }
                    })
                    .collect();
                (ops, rng.below(64))
            })
            .collect()
    }

    fn assert_sm_eq(new: &SmState, old: &SmState, trial: usize) {
        assert_eq!(new.issue, old.issue, "issue, trial {trial}");
        assert_eq!(new.mem_lat, old.mem_lat, "mem_lat, trial {trial}");
        assert_eq!(new.mem_insts, old.mem_insts, "mem_insts, trial {trial}");
        assert_eq!(
            new.transactions, old.transactions,
            "transactions, trial {trial}"
        );
        assert_eq!(new.dram_bytes, old.dram_bytes, "dram_bytes, trial {trial}");
        assert_eq!(new.atomics, old.atomics, "atomics, trial {trial}");
        assert_eq!(
            new.atomic_serial, old.atomic_serial,
            "atomic_serial, trial {trial}"
        );
        assert_eq!(
            new.max_warp_lat, old.max_warp_lat,
            "max_warp_lat, trial {trial}"
        );
        assert_eq!(
            new.simd_useful, old.simd_useful,
            "simd_useful, trial {trial}"
        );
        assert_eq!(new.simd_slots, old.simd_slots, "simd_slots, trial {trial}");
        assert_eq!(new.ro_stats(), old.ro_stats(), "ro stats, trial {trial}");
    }

    #[test]
    fn single_pass_replay_matches_oracle_on_random_traces() {
        for (seed, dev) in [
            (0x1234u64, Device::k20c()),
            (0x5678, Device::k20c()),
            (0x9ABC, Device::fermi_like()), // exercises the l1_caches_globals arm
        ] {
            let mut rng = Rng(seed);
            let mut sm_new = SmState::new(&dev);
            let mut sm_old = SmState::new(&dev);
            let mut l2_new = Cache::new(dev.l2_bytes, dev.l2_line_bytes, dev.l2_ways);
            let mut l2_old = Cache::new(dev.l2_bytes, dev.l2_line_bytes, dev.l2_ways);
            for trial in 0..500 {
                let lanes = random_warp(&mut rng);
                sm_new.account_warp(&dev, &mut l2_new, &warp(&lanes));
                oracle::account_warp(&mut sm_old, &dev, &mut l2_old, &lanes);
                assert_sm_eq(&sm_new, &sm_old, trial);
                assert_eq!(l2_new.stats(), l2_old.stats(), "l2 stats, trial {trial}");
            }
        }
    }

    #[test]
    fn empty_and_single_lane_warps_match_oracle() {
        let dev = Device::k20c();
        let mut sm_new = SmState::new(&dev);
        let mut sm_old = SmState::new(&dev);
        let mut l2_new = l2_of(&dev);
        let mut l2_old = l2_of(&dev);
        let cases: Vec<Vec<(Vec<Op>, u64)>> = vec![
            vec![(vec![], 0)],                       // one empty lane
            vec![(vec![], 3); 32],                   // all lanes empty, alu only
            vec![(vec![op(OpKind::Atomic, 9)], 1)],  // single-lane atomic
            vec![(vec![op(OpKind::Smem, 5)], 0); 7], // partial warp, smem broadcast
        ];
        for (trial, lanes) in cases.into_iter().enumerate() {
            sm_new.account_warp(&dev, &mut l2_new, &warp(&lanes));
            oracle::account_warp(&mut sm_old, &dev, &mut l2_old, &lanes);
            assert_sm_eq(&sm_new, &sm_old, trial);
            assert_eq!(l2_new.stats(), l2_old.stats(), "l2 stats, trial {trial}");
        }
    }
}

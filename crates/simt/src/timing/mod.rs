//! The analytic timing model.
//!
//! Per warp, the i-th memory operations of the 32 lanes are replayed as one
//! warp-level access: a coalescer groups lane addresses into cache-line
//! transactions, each transaction probes the read-only cache (`ldg` only)
//! and the SM's L2 slice, and the warp is charged the worst transaction's
//! latency. Per SM, totals feed a simplified Hong–Kim MWP/CWP model: the
//! SM's busy time is the maximum of its compute-issue time, its exposed
//! memory latency after overlap across resident warps, and its share of
//! DRAM bandwidth. The kernel's time is the slowest SM, floored by the
//! chip-wide bandwidth bound — which is how the model reproduces the
//! paper's "highly memory latency bound" characterization (Fig. 3).

pub mod cache;
pub mod occupancy;

use crate::config::Device;
use crate::trace::{LaneTrace, OpKind};
use cache::Cache;
use occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// Fraction-of-stalls breakdown in the style of Fig. 3(b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StallBreakdown {
    /// Waiting on outstanding memory (the dominant reason in the paper).
    pub memory_dependency: f64,
    /// Waiting on in-pipe arithmetic results.
    pub execution_dependency: f64,
    /// Block-wide barriers (`__syncthreads` in the scan kernels).
    pub synchronization: f64,
    /// Instruction fetch.
    pub instruction_fetch: f64,
    /// Everything else.
    pub other: f64,
}

/// Aggregate result of one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Blocks launched.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Modeled duration in core cycles (including launch overhead).
    pub cycles: u64,
    /// Modeled duration in milliseconds.
    pub time_ms: f64,
    /// Warp-level instructions issued.
    pub instructions: u64,
    /// Memory transactions issued (after coalescing).
    pub mem_transactions: u64,
    /// Bytes transferred from/to DRAM.
    pub dram_bytes: u64,
    /// Read-only cache hits (ldg path).
    pub ro_hits: u64,
    /// Read-only cache misses.
    pub ro_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Atomic operations executed (lane-level).
    pub atomics: u64,
    /// Cycles lost to same-address atomic serialization.
    pub atomic_serial_cycles: u64,
    /// Occupancy achieved by this launch.
    pub occupancy: Occupancy,
    /// Achieved DRAM bandwidth as a fraction of peak (Fig. 3a).
    pub achieved_bw_frac: f64,
    /// Achieved issue rate as a fraction of peak (Fig. 3a).
    pub achieved_ipc_frac: f64,
    /// SIMD (branch) efficiency: fraction of issued lane slots that did
    /// useful work — 1.0 for divergence-free kernels, low when loop trip
    /// counts vary inside warps (degree skew).
    pub simd_efficiency: f64,
    /// Stall-reason fractions (Fig. 3b).
    pub stalls: StallBreakdown,
}

/// Per-SM accumulation state: the private read-only cache plus
/// cycle/traffic counters. The L2 cache is owned by the executor and
/// passed in per access: in `Deterministic` mode one cache shared by all
/// SMs models GK110's address-partitioned chip-wide L2 exactly; in
/// `Parallel` mode each SM task probes a private `l2_bytes / num_sms`
/// slice (a documented approximation that keeps SM simulation
/// data-race-free).
pub struct SmState {
    ro: Cache,
    /// Warp-level instructions issued (compute + memory issue slots).
    pub issue: u64,
    /// Sum over warp memory instructions of their (worst-transaction)
    /// latency — the latency the SM must hide.
    pub mem_lat: u64,
    /// Number of warp-level memory instructions.
    pub mem_insts: u64,
    /// Coalesced transactions.
    pub transactions: u64,
    /// Bytes moved between L2 and DRAM.
    pub dram_bytes: u64,
    /// Lane-level atomics.
    pub atomics: u64,
    /// Serialization cycles from same-address atomics.
    pub atomic_serial: u64,
    /// Barrier/scan synchronization cycles.
    pub sync_cycles: u64,
    /// Longest single-warp memory-latency chain seen (bounds how much of
    /// the total latency can actually overlap).
    pub max_warp_lat: u64,
    /// Lane-level op slots actually used (Σ per-lane trace lengths).
    pub simd_useful: u64,
    /// Lane-level op slots issued (Σ warps: max lane length × active
    /// lanes) — the denominator of SIMD/branch efficiency.
    pub simd_slots: u64,
}

impl SmState {
    /// Fresh per-SM state for one kernel launch on `dev`.
    pub fn new(dev: &Device) -> Self {
        Self {
            ro: Cache::new(dev.ro_cache_bytes, dev.ro_line_bytes, dev.ro_ways),
            issue: 0,
            mem_lat: 0,
            mem_insts: 0,
            transactions: 0,
            dram_bytes: 0,
            atomics: 0,
            atomic_serial: 0,
            sync_cycles: 0,
            max_warp_lat: 0,
            simd_useful: 0,
            simd_slots: 0,
        }
    }

    /// Read-only cache hit-miss counters.
    pub fn ro_stats(&self) -> (u64, u64) {
        self.ro.stats()
    }

    /// Accounts one warp's lane traces (positional SIMT alignment: the
    /// k-th op of every active lane forms one warp access; lanes that have
    /// exhausted their trace are masked off, approximating loop-bound
    /// divergence).
    pub fn account_warp(&mut self, dev: &Device, l2: &mut Cache, lanes: &[LaneTrace]) {
        debug_assert!(lanes.len() <= dev.warp_size as usize);
        // SIMT compute issue: the warp executes until its longest lane is
        // done.
        self.issue += lanes.iter().map(|l| l.alu).max().unwrap_or(0);
        let mut warp_lat = 0u64;

        let max_ops = lanes.iter().map(|l| l.ops.len()).max().unwrap_or(0);
        self.simd_useful += lanes.iter().map(|l| l.ops.len() as u64).sum::<u64>();
        self.simd_slots += (max_ops * lanes.len()) as u64;
        // Scratch reused across op slots: (addr, count) pairs, ≤ 32 lanes.
        let mut addrs: Vec<u64> = Vec::with_capacity(32);
        for k in 0..max_ops {
            // Kinds present at this slot; handled one kind at a time so a
            // divergent slot (rare) is charged as a serialized replay.
            for kind in [
                OpKind::Ld,
                OpKind::Ldg,
                OpKind::St,
                OpKind::Atomic,
                OpKind::Local,
                OpKind::Smem,
            ] {
                addrs.clear();
                for l in lanes {
                    if let Some(op) = l.ops.get(k) {
                        if op.kind == kind {
                            addrs.push(op.addr as u64 * 4); // byte address
                        }
                    }
                }
                if addrs.is_empty() {
                    continue;
                }
                match kind {
                    OpKind::Smem => {
                        // Bank conflicts: lanes hitting distinct words in
                        // the same bank serialize; same-word access is a
                        // broadcast. addrs hold word indices here (the
                        // dedup_lines byte convention does not apply).
                        let banks = dev.smem_banks.max(1) as u64;
                        let mut per_bank = vec![0u64; banks as usize];
                        addrs.sort_unstable();
                        addrs.dedup(); // same word broadcasts
                        for &a in addrs.iter() {
                            // addrs were scaled to bytes in the collection
                            // loop; undo to recover the word index.
                            per_bank[((a / 4) % banks) as usize] += 1;
                        }
                        let ways =
                            per_bank.iter().copied().max().unwrap_or(1).max(1);
                        let lat = ways * dev.smem_cycles as u64;
                        self.issue += ways;
                        self.mem_lat += lat;
                        warp_lat += lat;
                        self.mem_insts += 1;
                    }
                    OpKind::Local => {
                        // L1-speed, fully pipelined: issue slots only.
                        self.issue += 1;
                        self.mem_lat += dev.local_cycles as u64;
                        warp_lat += dev.local_cycles as u64;
                        self.mem_insts += 1;
                    }
                    OpKind::Ld if dev.l1_caches_globals => {
                        // Fermi path: plain loads are L1-cached, so they
                        // behave like Kepler's ldg path.
                        let lat = self.ldg_access(dev, l2, &mut addrs);
                        self.issue += 1;
                        self.mem_lat += lat;
                        warp_lat += lat;
                        self.mem_insts += 1;
                    }
                    OpKind::Ld | OpKind::St => {
                        let lat = self.global_access(dev, l2, &mut addrs);
                        self.issue += 1;
                        self.mem_lat += lat;
                        warp_lat += lat;
                        self.mem_insts += 1;
                    }
                    OpKind::Ldg => {
                        let lat = self.ldg_access(dev, l2, &mut addrs);
                        self.issue += 1;
                        self.mem_lat += lat;
                        warp_lat += lat;
                        self.mem_insts += 1;
                    }
                    OpKind::Atomic => {
                        let lat = self.atomic_access(dev, l2, &mut addrs);
                        self.issue += 1;
                        self.mem_lat += lat;
                        warp_lat += lat;
                        self.mem_insts += 1;
                    }
                }
            }
        }
        self.max_warp_lat = self.max_warp_lat.max(warp_lat);
    }

    /// Coalesces `addrs` into L2-line transactions, probes the L2 slice,
    /// returns the warp-visible latency (worst transaction).
    fn global_access(&mut self, dev: &Device, l2: &mut Cache, addrs: &mut Vec<u64>) -> u64 {
        let line = dev.l2_line_bytes as u64;
        dedup_lines(addrs, line);
        let mut worst = 0u64;
        for &a in addrs.iter() {
            let hit = l2.access(a);
            let lat = if hit {
                dev.l2_hit_cycles as u64
            } else {
                self.dram_bytes += line;
                dev.dram_cycles as u64
            };
            worst = worst.max(lat);
            self.transactions += 1;
        }
        // Additional transactions occupy the LSU pipe: charge issue slots.
        self.issue += addrs.len() as u64 - 1;
        worst
    }

    /// `__ldg` path: read-only cache first (128-byte lines), L2 slice on
    /// miss.
    fn ldg_access(&mut self, dev: &Device, l2: &mut Cache, addrs: &mut Vec<u64>) -> u64 {
        let line = dev.ro_line_bytes as u64;
        dedup_lines(addrs, line);
        let mut worst = 0u64;
        for &a in addrs.iter() {
            let lat = if self.ro.access(a) {
                dev.ro_hit_cycles as u64
            } else if l2.access(a) {
                (dev.ro_hit_cycles + dev.l2_hit_cycles) as u64
            } else {
                self.dram_bytes += line;
                (dev.ro_hit_cycles + dev.dram_cycles) as u64
            };
            worst = worst.max(lat);
            self.transactions += 1;
        }
        self.issue += addrs.len() as u64 - 1;
        worst
    }

    /// Atomics resolve at the L2/AOU; lanes hitting the same word
    /// serialize.
    fn atomic_access(&mut self, dev: &Device, l2: &mut Cache, addrs: &mut Vec<u64>) -> u64 {
        self.atomics += addrs.len() as u64;
        // Group by exact address: count the worst same-address burst.
        addrs.sort_unstable();
        let mut groups = 0u64;
        let mut worst_burst = 0u64;
        let mut i = 0;
        while i < addrs.len() {
            let mut j = i + 1;
            while j < addrs.len() && addrs[j] == addrs[i] {
                j += 1;
            }
            groups += 1;
            worst_burst = worst_burst.max((j - i) as u64);
            i = j;
        }
        let serial = worst_burst.saturating_sub(1) * dev.atomic_serial_cycles as u64;
        self.atomic_serial += serial;
        self.transactions += groups;
        self.issue += groups - 1;
        // The L2/AOU sees one access per distinct address.
        addrs.dedup();
        let mut worst = 0u64;
        for &a in addrs.iter() {
            if l2.access(a) {
                worst = worst.max(dev.l2_hit_cycles as u64);
            } else {
                self.dram_bytes += dev.l2_line_bytes as u64;
                worst = worst.max(dev.dram_cycles as u64);
            }
        }
        worst + serial
    }

    /// Charges a block-wide barrier + scan: `steps` barrier rounds over
    /// `warps_in_block` warps (Hillis–Steele shared-memory scan).
    pub fn charge_block_scan(&mut self, dev: &Device, block_threads: u32) {
        let steps = 32 - (block_threads.max(1) - 1).leading_zeros(); // ceil log2
        let warps = block_threads.div_ceil(dev.warp_size) as u64;
        // Each step: one smem read+write+add per warp, plus a barrier.
        let per_warp_instr = 3 * steps as u64;
        self.issue += per_warp_instr * warps;
        // Barrier cost: all warps rendezvous; charge ~20 cycles per step.
        let sync = 20 * steps as u64;
        self.sync_cycles += sync;
    }
}

/// In-place dedup of byte addresses to distinct line base addresses.
fn dedup_lines(addrs: &mut Vec<u64>, line: u64) {
    for a in addrs.iter_mut() {
        *a -= *a % line;
    }
    addrs.sort_unstable();
    addrs.dedup();
}

/// Combines per-SM states into the final kernel statistics.
pub fn finalize(
    dev: &Device,
    name: &str,
    grid: u32,
    block: u32,
    occ: Occupancy,
    sms: &[SmState],
    l2_stats: (u64, u64),
) -> KernelStats {
    let mut worst_sm_cycles = 0f64;
    let mut total_issue = 0u64;
    let mut total_txn = 0u64;
    let mut total_dram = 0u64;
    let mut total_atomics = 0u64;
    let mut total_atomic_serial = 0u64;
    let mut total_mem_lat = 0u64;
    let mut total_sync = 0u64;
    let (mut ro_h, mut ro_m) = (0u64, 0u64);
    let (l2_h, l2_m) = l2_stats;
    let (mut simd_useful, mut simd_slots) = (0u64, 0u64);

    let per_sm_bw = dev.dram_bytes_per_cycle() / dev.num_sms as f64;
    // Memory-level parallelism grows sublinearly with resident warps:
    // outstanding requests contend for MSHRs, DRAM banks and the memory
    // queue, so doubling warps does not double overlap (the same
    // diminishing-returns term analytic models like Hong–Kim capture with
    // an MWP bound). Exponent 0.8 keeps hiding strictly monotone in
    // occupancy — which Fig. 8's block-size ordering depends on — while
    // matching the latency-bound character of Fig. 3.
    // Blocks retire at CTA granularity: a finishing block's warp slots sit
    // idle until its slowest warp drains, so larger blocks waste a bigger
    // slice of the resident-warp budget — the "resource oversaturation"
    // that makes >256-thread blocks suboptimal in Fig. 8.
    let warps_per_block = block.div_ceil(dev.warp_size) as f64;
    let drain = (1.0 - warps_per_block / (2.0 * occ.resident_warps.max(1) as f64)).max(0.5);

    let hiding = ((occ.resident_warps.max(1) as f64).powf(0.8) * drain).max(1.0);

    for sm in sms {
        let comp = sm.issue as f64 / dev.issue_width as f64;
        // The longest single-warp dependence chain (e.g. one thread
        // walking a hub vertex's adjacency, or a lone busy warp in a late
        // sparse pass) is a serial critical path: other resident warps
        // cannot shorten it — only the warp's own scoreboard depth
        // (`mem_ilp` outstanding requests) can.
        let chain_floor = sm.max_warp_lat as f64 / dev.mem_ilp;
        let exposed = (sm.mem_lat as f64 / hiding).max(chain_floor);
        let bw = sm.dram_bytes as f64 / per_sm_bw;
        let busy = comp.max(exposed).max(bw) + sm.sync_cycles as f64 + sm.atomic_serial as f64;
        worst_sm_cycles = worst_sm_cycles.max(busy);
        total_issue += sm.issue;
        total_txn += sm.transactions;
        total_dram += sm.dram_bytes;
        total_atomics += sm.atomics;
        total_atomic_serial += sm.atomic_serial;
        total_mem_lat += sm.mem_lat;
        total_sync += sm.sync_cycles;
        let (rh, rm) = sm.ro_stats();
        ro_h += rh;
        ro_m += rm;
        simd_useful += sm.simd_useful;
        simd_slots += sm.simd_slots;
    }

    // Chip-wide DRAM bandwidth floor.
    let bw_floor = total_dram as f64 / dev.dram_bytes_per_cycle();
    let overhead = dev.launch_overhead_us * 1e-6 * dev.clock_hz();
    let cycles = worst_sm_cycles.max(bw_floor) + overhead;
    let cycles_u = cycles.ceil() as u64;
    let time_ms = dev.cycles_to_ms(cycles_u);

    // Achieved fractions of peak (Fig. 3a).
    let achieved_bw_frac = (total_dram as f64 / cycles) / dev.dram_bytes_per_cycle();
    let achieved_ipc_frac = (total_issue as f64 / cycles) / dev.peak_issue_per_cycle();

    // Stall attribution (Fig. 3b): heuristic mapping from the model's
    // components to profiler categories. Memory dependency is the exposed
    // latency; execution dependency scales with issued compute (dependent
    // back-to-back issues); synchronization and atomic serialization are
    // explicit; fetch/other are small constants of the issue stream.
    // Stall attribution mimics nvprof's sampling: a stalled warp is
    // sampled once per issue opportunity, not once per latency cycle, so
    // only a bounded window of each memory wait is attributed (factor
    // 0.1 ≈ sampling period / average wait).
    let mem_dep = total_mem_lat as f64 * 0.1;
    let _ = drain;
    let exec_dep = total_issue as f64 * 0.35;
    let sync = (total_sync + total_atomic_serial) as f64;
    let fetch = total_issue as f64 * 0.06;
    let other = total_issue as f64 * 0.08;
    let sum = (mem_dep + exec_dep + sync + fetch + other).max(1.0);
    let stalls = StallBreakdown {
        memory_dependency: mem_dep / sum,
        execution_dependency: exec_dep / sum,
        synchronization: sync / sum,
        instruction_fetch: fetch / sum,
        other: other / sum,
    };

    KernelStats {
        name: name.to_string(),
        grid,
        block,
        cycles: cycles_u,
        time_ms,
        instructions: total_issue,
        mem_transactions: total_txn,
        dram_bytes: total_dram,
        ro_hits: ro_h,
        ro_misses: ro_m,
        l2_hits: l2_h,
        l2_misses: l2_m,
        atomics: total_atomics,
        atomic_serial_cycles: total_atomic_serial,
        occupancy: occ,
        achieved_bw_frac,
        achieved_ipc_frac,
        simd_efficiency: if simd_slots > 0 {
            simd_useful as f64 / simd_slots as f64
        } else {
            1.0
        },
        stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;

    fn lane(ops: Vec<Op>, alu: u64) -> LaneTrace {
        LaneTrace { ops, alu }
    }

    /// A chip-wide L2 like the Deterministic executor uses.
    fn l2_of(dev: &Device) -> Cache {
        Cache::new(dev.l2_bytes, dev.l2_line_bytes, dev.l2_ways)
    }

    fn op(kind: OpKind, addr: u32) -> Op {
        Op { kind, addr }
    }

    #[test]
    fn coalesced_warp_load_is_one_transaction_per_line() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        // 32 lanes loading consecutive words: 32 * 4B = 128B = 4 L2
        // sectors of 32B.
        let lanes: Vec<LaneTrace> = (0..32).map(|i| lane(vec![op(OpKind::Ld, i)], 0)).collect();
        sm.account_warp(&dev, &mut l2, &lanes);
        assert_eq!(sm.transactions, 4);
        assert_eq!(sm.mem_insts, 1);
        assert_eq!(sm.dram_bytes, 4 * 32);
    }

    #[test]
    fn scattered_warp_load_is_many_transactions() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        // 32 lanes loading words 1000 apart: no two share a 32B sector.
        let lanes: Vec<LaneTrace> = (0..32)
            .map(|i| lane(vec![op(OpKind::Ld, i * 1000)], 0))
            .collect();
        sm.account_warp(&dev, &mut l2, &lanes);
        assert_eq!(sm.transactions, 32);
        assert_eq!(sm.dram_bytes, 32 * 32);
    }

    #[test]
    fn repeated_ld_hits_l2() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes = vec![lane(vec![op(OpKind::Ld, 0), op(OpKind::Ld, 0)], 0)];
        sm.account_warp(&dev, &mut l2, &lanes);
        let (l2_hits, l2_misses) = l2.stats();
        assert_eq!(l2_misses, 1);
        assert_eq!(l2_hits, 1);
        // First access paid DRAM latency, second the (cheaper) L2 latency.
        assert_eq!(sm.mem_lat, (dev.dram_cycles + dev.l2_hit_cycles) as u64);
    }

    #[test]
    fn ldg_hit_is_cheapest() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes = vec![lane(vec![op(OpKind::Ldg, 0), op(OpKind::Ldg, 0)], 0)];
        sm.account_warp(&dev, &mut l2, &lanes);
        let (ro_hits, ro_misses) = sm.ro_stats();
        assert_eq!(ro_misses, 1);
        assert_eq!(ro_hits, 1);
        // Second access: 30-cycle read-only hit, far below DRAM.
        assert!(sm.mem_lat < 2 * dev.dram_cycles as u64);
    }

    #[test]
    fn ldg_second_warp_reuses_line_ld_does_not_cache_in_ro() {
        // The Fig. 4 distinction: data loaded with ld is not in the RO
        // cache afterwards.
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes = vec![lane(vec![op(OpKind::Ld, 0)], 0)];
        sm.account_warp(&dev, &mut l2, &lanes);
        let (ro_hits, ro_misses) = sm.ro_stats();
        assert_eq!((ro_hits, ro_misses), (0, 0), "ld bypasses the RO cache");
    }

    #[test]
    fn same_address_atomics_serialize() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes: Vec<LaneTrace> = (0..32)
            .map(|_| lane(vec![op(OpKind::Atomic, 7)], 0))
            .collect();
        sm.account_warp(&dev, &mut l2, &lanes);
        assert_eq!(sm.atomics, 32);
        assert_eq!(sm.atomic_serial, 31 * dev.atomic_serial_cycles as u64);
    }

    #[test]
    fn distinct_address_atomics_do_not_serialize() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes: Vec<LaneTrace> = (0..32)
            .map(|i| lane(vec![op(OpKind::Atomic, i * 64)], 0))
            .collect();
        sm.account_warp(&dev, &mut l2, &lanes);
        assert_eq!(sm.atomic_serial, 0);
        assert_eq!(sm.atomics, 32);
    }

    #[test]
    fn divergence_charges_max_lane() {
        let dev = Device::k20c();
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let mut lanes = vec![lane(vec![], 2); 32];
        lanes[0].alu = 100; // one long lane dominates the warp
        sm.account_warp(&dev, &mut l2, &lanes);
        assert_eq!(sm.issue, 100);
    }

    #[test]
    fn finalize_is_bandwidth_floored() {
        let dev = Device::k20c();
        let occ = occupancy::occupancy(&dev, 1 << 16, 128, 32, 0);
        let mut sms: Vec<SmState> = (0..dev.num_sms).map(|_| SmState::new(&dev)).collect();
        // Give every SM a huge DRAM byte count with negligible latency sum.
        for sm in &mut sms {
            sm.dram_bytes = 1 << 28;
        }
        let stats = finalize(&dev, "bw-test", 100, 128, occ, &sms, (0, 0));
        let bytes = (dev.num_sms as u64) << 28;
        let floor = bytes as f64 / dev.dram_bytes_per_cycle();
        assert!(stats.cycles as f64 >= floor);
        assert!(stats.achieved_bw_frac > 0.9, "bw-bound kernel near peak");
    }

    #[test]
    fn stall_fractions_sum_to_one() {
        let dev = Device::k20c();
        let occ = occupancy::occupancy(&dev, 1 << 16, 128, 32, 0);
        let mut sm = SmState::new(&dev);
        let mut l2 = l2_of(&dev);
        let lanes: Vec<LaneTrace> = (0..32)
            .map(|i| lane(vec![op(OpKind::Ld, i * 512)], 5))
            .collect();
        sm.account_warp(&dev, &mut l2, &lanes);
        let stats = finalize(&dev, "t", 1, 32, occ, &[sm], l2.stats());
        let s = stats.stalls;
        let sum = s.memory_dependency
            + s.execution_dependency
            + s.synchronization
            + s.instruction_fetch
            + s.other;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(
            s.memory_dependency > 0.4,
            "latency-bound kernel: memory stalls dominate, got {}",
            s.memory_dependency
        );
    }

    #[test]
    fn higher_occupancy_hides_more_latency() {
        let dev = Device::k20c();
        let mk = |warps: u32| Occupancy {
            resident_blocks: 1,
            resident_warps: warps,
            fraction: warps as f64 / 64.0,
            limiter: occupancy::Limiter::Blocks,
        };
        let mut sm_lo = SmState::new(&dev);
        sm_lo.mem_lat = 1_000_000;
        let mut sm_hi = SmState::new(&dev);
        sm_hi.mem_lat = 1_000_000;
        let t_lo = finalize(&dev, "lo", 1, 32, mk(8), &[sm_lo], (0, 0));
        let t_hi = finalize(&dev, "hi", 1, 32, mk(64), &[sm_hi], (0, 0));
        assert!(t_hi.cycles < t_lo.cycles);
    }

    #[test]
    fn block_scan_charge_grows_with_block_size() {
        let dev = Device::k20c();
        let mut a = SmState::new(&dev);
        let mut b = SmState::new(&dev);
        a.charge_block_scan(&dev, 64);
        b.charge_block_scan(&dev, 1024);
        assert!(b.issue > a.issue);
        assert!(b.sync_cycles > a.sync_cycles);
    }
}

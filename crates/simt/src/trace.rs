//! Per-warp memory operation traces.
//!
//! The executor runs each thread functionally while recording the memory
//! operations it issues; the timing model then replays the warp's lanes
//! side by side to model coalescing, caching and atomic serialization.
//!
//! Traces are stored as one flat structure-of-arrays per warp
//! ([`WarpTrace`]): a single `ops` vector holding every lane's operations
//! back to back, per-lane start offsets, and per-lane ALU counters. This
//! replaces the earlier per-lane `LaneTrace` vectors: one allocation
//! instead of 32, no per-thread buffer swapping in the executor, and
//! slot-major replay walks memory that was written contiguously. While
//! tracing, a per-slot *kind summary* is maintained so the replay can
//! detect kind-uniform slots (the overwhelmingly common case) in O(1) and
//! charge them in a single pass. Traces live only for the duration of one
//! warp and their allocations are reused, so memory stays O(warp work),
//! not O(kernel work).

/// Upper bound on lanes per warp supported by the trace/replay scratch
/// buffers. Every modeled device uses 32-lane warps.
pub const MAX_WARP_LANES: usize = 32;

/// The kind of a traced device-memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Normal global load (`ld`): DRAM → L2 → registers (Kepler does not
    /// cache global loads in L1).
    Ld,
    /// Read-only cache load (`__ldg`): DRAM → L2 → read-only L1 →
    /// registers.
    Ldg,
    /// Global store (write-through to L2).
    St,
    /// Atomic read-modify-write performed at the L2 / Atomic Operation
    /// Unit.
    Atomic,
    /// Local-memory access (register spill / the per-thread `colorMask`
    /// array); L1-cached on Kepler.
    Local,
    /// Shared-memory (scratchpad) access; banked, conflict-prone.
    Smem,
}

/// Replay order of op kinds at a divergent slot. The serialized-replay
/// fallback charges one warp access per kind present, in this order; it
/// must stay stable because cache state (and therefore modeled cycles)
/// depends on probe order.
pub const KIND_ORDER: [OpKind; 6] = [
    OpKind::Ld,
    OpKind::Ldg,
    OpKind::St,
    OpKind::Atomic,
    OpKind::Local,
    OpKind::Smem,
];

impl OpKind {
    /// This kind's bit in a slot summary mask (`KIND_ORDER` position).
    #[inline]
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// Inverse of [`OpKind::bit`] for single-bit masks.
    #[inline]
    pub fn from_bit(mask: u8) -> OpKind {
        debug_assert_eq!(mask.count_ones(), 1);
        KIND_ORDER[mask.trailing_zeros() as usize]
    }
}

/// One traced operation: kind + word address (byte address = 4 × addr).
/// Local ops carry a meaningless address (0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Word address in the global arena.
    pub addr: u32,
}

/// The trace of one warp: every lane's memory ops in one flat vector
/// (lane-major), per-lane offsets and ALU counts, plus a per-slot kind
/// summary maintained during tracing.
///
/// The executor drives it as: [`WarpTrace::reset`] at warp start, then per
/// thread [`WarpTrace::begin_lane`] followed by the thread's
/// [`WarpTrace::push`] / [`WarpTrace::add_alu`] calls. All buffers keep
/// their capacity across resets, so steady-state tracing allocates
/// nothing.
#[derive(Debug, Default, Clone)]
pub struct WarpTrace {
    /// Every lane's ops, concatenated in lane order.
    ops: Vec<Op>,
    /// `starts[l]` = offset of lane `l`'s first op in `ops`.
    starts: Vec<u32>,
    /// Arithmetic (non-memory) instructions executed, per lane.
    alu: Vec<u64>,
    /// `slot_kinds[k]` = OR of [`OpKind::bit`] over every lane's k-th op.
    slot_kinds: Vec<u8>,
}

impl WarpTrace {
    /// Clears the trace for reuse without freeing its allocations.
    #[inline]
    pub fn reset(&mut self) {
        self.ops.clear();
        self.starts.clear();
        self.alu.clear();
        self.slot_kinds.clear();
    }

    /// Starts recording the next lane. Subsequent [`WarpTrace::push`] /
    /// [`WarpTrace::add_alu`] calls account to this lane.
    #[inline]
    pub fn begin_lane(&mut self) {
        assert!(self.alu.len() < MAX_WARP_LANES, "warp has at most 32 lanes");
        self.starts.push(self.ops.len() as u32);
        self.alu.push(0);
    }

    /// Records one memory op for the current lane.
    #[inline]
    pub fn push(&mut self, op: Op) {
        debug_assert!(!self.starts.is_empty(), "push before begin_lane");
        // Slot index of this op within its lane = ops recorded by the
        // current lane so far.
        let k = self.ops.len() - *self.starts.last().unwrap() as usize;
        if k == self.slot_kinds.len() {
            self.slot_kinds.push(op.kind.bit());
        } else {
            self.slot_kinds[k] |= op.kind.bit();
        }
        self.ops.push(op);
    }

    /// Charges `n` ALU instructions to the current lane.
    #[inline]
    pub fn add_alu(&mut self, n: u64) {
        debug_assert!(!self.alu.is_empty(), "add_alu before begin_lane");
        *self.alu.last_mut().unwrap() += n;
    }

    /// Number of lanes recorded so far.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.alu.len()
    }

    /// Lane `l`'s ops in program order.
    #[inline]
    pub fn lane_ops(&self, l: usize) -> &[Op] {
        let (start, end) = self.lane_span(l);
        &self.ops[start..end]
    }

    /// Lane `l`'s `[start, end)` range within [`WarpTrace::flat_ops`].
    #[inline]
    pub fn lane_span(&self, l: usize) -> (usize, usize) {
        let start = self.starts[l] as usize;
        let end = self
            .starts
            .get(l + 1)
            .map_or(self.ops.len(), |&s| s as usize);
        (start, end)
    }

    /// All lanes' ops as one flat lane-major slice (replay hot path;
    /// index it with [`WarpTrace::lane_span`] offsets).
    #[inline]
    pub fn flat_ops(&self) -> &[Op] {
        &self.ops
    }

    /// Lane `l`'s ALU instruction count.
    #[inline]
    pub fn lane_alu(&self, l: usize) -> u64 {
        self.alu[l]
    }

    /// The warp's compute issue cost: the longest lane runs to completion
    /// while shorter lanes are masked off (SIMT lockstep).
    #[inline]
    pub fn max_alu(&self) -> u64 {
        self.alu.iter().copied().max().unwrap_or(0)
    }

    /// Longest lane's op count — the number of warp-level op slots.
    #[inline]
    pub fn max_ops(&self) -> usize {
        self.slot_kinds.len()
    }

    /// Total ops across all lanes (the SIMD-efficiency numerator).
    #[inline]
    pub fn total_ops(&self) -> usize {
        self.ops.len()
    }

    /// OR of [`OpKind::bit`] over the k-th op of every lane that has one.
    /// A single set bit means the slot is kind-uniform.
    #[inline]
    pub fn slot_kind_mask(&self, k: usize) -> u8 {
        self.slot_kinds[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, addr: u32) -> Op {
        Op { kind, addr }
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut t = WarpTrace::default();
        t.begin_lane();
        for i in 0..100 {
            t.push(op(OpKind::Ld, i));
        }
        t.add_alu(5);
        let cap = (
            t.ops.capacity(),
            t.starts.capacity(),
            t.alu.capacity(),
            t.slot_kinds.capacity(),
        );
        t.reset();
        assert_eq!(t.lanes(), 0);
        assert_eq!(t.total_ops(), 0);
        assert_eq!(t.max_ops(), 0);
        assert_eq!(
            (
                t.ops.capacity(),
                t.starts.capacity(),
                t.alu.capacity(),
                t.slot_kinds.capacity(),
            ),
            cap
        );
    }

    #[test]
    fn lane_boundaries_and_alu() {
        let mut t = WarpTrace::default();
        t.begin_lane();
        t.push(op(OpKind::Ld, 10));
        t.push(op(OpKind::St, 11));
        t.add_alu(3);
        t.begin_lane();
        t.push(op(OpKind::Ld, 20));
        t.add_alu(2);
        t.add_alu(1);
        t.begin_lane(); // empty lane (early-returning thread)

        assert_eq!(t.lanes(), 3);
        assert_eq!(t.lane_ops(0), &[op(OpKind::Ld, 10), op(OpKind::St, 11)]);
        assert_eq!(t.lane_ops(1), &[op(OpKind::Ld, 20)]);
        assert_eq!(t.lane_ops(2), &[]);
        assert_eq!(t.lane_alu(0), 3);
        assert_eq!(t.lane_alu(1), 3);
        assert_eq!(t.lane_alu(2), 0);
        assert_eq!(t.max_alu(), 3);
        assert_eq!(t.max_ops(), 2);
        assert_eq!(t.total_ops(), 3);
    }

    #[test]
    fn slot_kind_summary_tracks_uniformity() {
        let mut t = WarpTrace::default();
        t.begin_lane();
        t.push(op(OpKind::Ld, 0));
        t.push(op(OpKind::St, 1));
        t.begin_lane();
        t.push(op(OpKind::Ld, 2));
        t.push(op(OpKind::Atomic, 3));

        // Slot 0: both lanes issued Ld — uniform.
        assert_eq!(t.slot_kind_mask(0), OpKind::Ld.bit());
        // Slot 1: St in lane 0, Atomic in lane 1 — divergent.
        assert_eq!(t.slot_kind_mask(1), OpKind::St.bit() | OpKind::Atomic.bit());
    }

    #[test]
    fn kind_bits_roundtrip() {
        for kind in KIND_ORDER {
            assert_eq!(OpKind::from_bit(kind.bit()), kind);
        }
    }

    #[test]
    fn kind_bits_match_kind_order_positions() {
        // The sanitizer (and the replay fallback) rely on the exact
        // bit-per-kind layout: bit k of a slot mask is KIND_ORDER[k].
        assert_eq!(OpKind::Ld.bit(), 0b000001);
        assert_eq!(OpKind::Ldg.bit(), 0b000010);
        assert_eq!(OpKind::St.bit(), 0b000100);
        assert_eq!(OpKind::Atomic.bit(), 0b001000);
        assert_eq!(OpKind::Local.bit(), 0b010000);
        assert_eq!(OpKind::Smem.bit(), 0b100000);
        // Every kind maps to a distinct single bit.
        let mut seen = 0u8;
        for kind in KIND_ORDER {
            assert_eq!(kind.bit().count_ones(), 1);
            assert_eq!(seen & kind.bit(), 0, "duplicate bit for {kind:?}");
            seen |= kind.bit();
        }
        assert_eq!(seen, 0b111111);
    }

    #[test]
    fn slot_kind_summary_mixed_slots_over_many_lanes() {
        let mut t = WarpTrace::default();
        // Lane 0: Ld, Ldg, St   — three slots.
        t.begin_lane();
        t.push(op(OpKind::Ld, 0));
        t.push(op(OpKind::Ldg, 1));
        t.push(op(OpKind::St, 2));
        // Lane 1: Ld, Local     — shorter lane.
        t.begin_lane();
        t.push(op(OpKind::Ld, 3));
        t.push(op(OpKind::Local, 0));
        // Lane 2: Smem, Ldg, Atomic.
        t.begin_lane();
        t.push(op(OpKind::Smem, 0));
        t.push(op(OpKind::Ldg, 4));
        t.push(op(OpKind::Atomic, 5));

        // Slot 0: Ld | Ld | Smem.
        assert_eq!(t.slot_kind_mask(0), OpKind::Ld.bit() | OpKind::Smem.bit());
        // Slot 1: Ldg | Local | Ldg.
        assert_eq!(t.slot_kind_mask(1), OpKind::Ldg.bit() | OpKind::Local.bit());
        // Slot 2: St | (lane 1 ended) | Atomic — absent lanes contribute
        // nothing.
        assert_eq!(t.slot_kind_mask(2), OpKind::St.bit() | OpKind::Atomic.bit());
        // A uniform mask round-trips to its kind; a mixed one is multi-bit.
        assert_eq!(OpKind::from_bit(OpKind::Ld.bit()), OpKind::Ld);
        assert!(t.slot_kind_mask(0).count_ones() > 1);
    }
}

//! Per-thread memory operation traces.
//!
//! The executor runs each thread functionally while recording the memory
//! operations it issues; the timing model then replays each warp's 32 lane
//! traces side by side to model coalescing, caching and atomic
//! serialization. Traces live only for the duration of one warp and their
//! allocations are reused, so memory stays O(warp work), not O(kernel
//! work).

/// The kind of a traced device-memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Normal global load (`ld`): DRAM → L2 → registers (Kepler does not
    /// cache global loads in L1).
    Ld,
    /// Read-only cache load (`__ldg`): DRAM → L2 → read-only L1 →
    /// registers.
    Ldg,
    /// Global store (write-through to L2).
    St,
    /// Atomic read-modify-write performed at the L2 / Atomic Operation
    /// Unit.
    Atomic,
    /// Local-memory access (register spill / the per-thread `colorMask`
    /// array); L1-cached on Kepler.
    Local,
    /// Shared-memory (scratchpad) access; banked, conflict-prone.
    Smem,
}

/// One traced operation: kind + word address (byte address = 4 × addr).
/// Local ops carry a meaningless address (0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Word address in the global arena.
    pub addr: u32,
}

/// The trace of one thread (one lane of a warp): its memory ops plus its
/// arithmetic instruction count.
#[derive(Debug, Default, Clone)]
pub struct LaneTrace {
    /// Memory operations in program order.
    pub ops: Vec<Op>,
    /// Arithmetic (non-memory) instructions executed.
    pub alu: u64,
}

impl LaneTrace {
    /// Clears the trace for reuse without freeing its allocation.
    pub fn reset(&mut self) {
        self.ops.clear();
        self.alu = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_keeps_capacity() {
        let mut t = LaneTrace::default();
        t.ops.extend((0..100).map(|i| Op {
            kind: OpKind::Ld,
            addr: i,
        }));
        t.alu = 5;
        let cap = t.ops.capacity();
        t.reset();
        assert!(t.ops.is_empty());
        assert_eq!(t.alu, 0);
        assert_eq!(t.ops.capacity(), cap);
    }
}

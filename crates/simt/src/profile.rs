//! Run profiles: the modeled timeline of a complete algorithm execution —
//! kernel launches, PCIe transfers and host-side (CPU) phases — matching
//! how the paper times "only the computation part of each program".

use crate::timing::KernelStats;
use serde::{Deserialize, Serialize};

/// One entry of a run's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// A device kernel.
    Kernel(KernelStats),
    /// A PCIe transfer (label, bytes, milliseconds).
    Transfer {
        /// What was moved.
        label: String,
        /// Payload size.
        bytes: usize,
        /// Modeled duration.
        ms: f64,
    },
    /// Host-side sequential work (label, milliseconds).
    Host {
        /// What the CPU did.
        label: String,
        /// Modeled duration.
        ms: f64,
    },
}

impl Phase {
    /// Duration of this phase in milliseconds.
    pub fn ms(&self) -> f64 {
        match self {
            Phase::Kernel(k) => k.time_ms,
            Phase::Transfer { ms, .. } | Phase::Host { ms, .. } => *ms,
        }
    }
}

/// The modeled timeline of one algorithm run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl RunProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a kernel launch.
    pub fn kernel(&mut self, stats: KernelStats) {
        self.phases.push(Phase::Kernel(stats));
    }

    /// Appends a PCIe transfer.
    pub fn transfer(&mut self, label: impl Into<String>, bytes: usize, ms: f64) {
        self.phases.push(Phase::Transfer {
            label: label.into(),
            bytes,
            ms,
        });
    }

    /// Appends host-side work.
    pub fn host(&mut self, label: impl Into<String>, ms: f64) {
        self.phases.push(Phase::Host {
            label: label.into(),
            ms,
        });
    }

    /// Total modeled time.
    pub fn total_ms(&self) -> f64 {
        self.phases.iter().map(Phase::ms).sum()
    }

    /// Number of kernel launches.
    pub fn num_kernels(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p, Phase::Kernel(_)))
            .count()
    }

    /// Sum of kernel time only.
    pub fn kernel_ms(&self) -> f64 {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Kernel(k) => Some(k.time_ms),
                _ => None,
            })
            .sum()
    }

    /// Sum of transfer time only.
    pub fn transfer_ms(&self) -> f64 {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Transfer { ms, .. } => Some(*ms),
                _ => None,
            })
            .sum()
    }

    /// Sum of host time only.
    pub fn host_ms(&self) -> f64 {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Host { ms, .. } => Some(*ms),
                _ => None,
            })
            .sum()
    }

    /// Aggregated kernel statistics (weighted by time) for Fig.-3-style
    /// reporting: (achieved bandwidth fraction, achieved issue fraction,
    /// stall breakdown averaged over kernel time).
    pub fn aggregate_kernel_metrics(&self) -> Option<(f64, f64, crate::timing::StallBreakdown)> {
        let mut t = 0.0f64;
        let (mut bw, mut ipc) = (0.0f64, 0.0f64);
        let mut stalls = crate::timing::StallBreakdown::default();
        for p in &self.phases {
            if let Phase::Kernel(k) = p {
                let w = k.time_ms;
                t += w;
                bw += k.achieved_bw_frac * w;
                ipc += k.achieved_ipc_frac * w;
                stalls.memory_dependency += k.stalls.memory_dependency * w;
                stalls.execution_dependency += k.stalls.execution_dependency * w;
                stalls.synchronization += k.stalls.synchronization * w;
                stalls.instruction_fetch += k.stalls.instruction_fetch * w;
                stalls.other += k.stalls.other * w;
            }
        }
        if t == 0.0 {
            return None;
        }
        stalls.memory_dependency /= t;
        stalls.execution_dependency /= t;
        stalls.synchronization /= t;
        stalls.instruction_fetch /= t;
        stalls.other /= t;
        Some((bw / t, ipc / t, stalls))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut p = RunProfile::new();
        p.transfer("graph h2d", 1000, 0.5);
        p.host("resolve", 2.0);
        p.transfer("colors d2h", 500, 0.25);
        assert_eq!(p.num_kernels(), 0);
        assert!((p.total_ms() - 2.75).abs() < 1e-12);
        assert!((p.transfer_ms() - 0.75).abs() < 1e-12);
        assert!((p.host_ms() - 2.0).abs() < 1e-12);
        assert_eq!(p.kernel_ms(), 0.0);
    }

    #[test]
    fn aggregate_metrics_none_without_kernels() {
        let p = RunProfile::new();
        assert!(p.aggregate_kernel_metrics().is_none());
    }
}

//! Sanitizer audit over every GPU scheme: all 8 schemes (and the sharded
//! driver at P = 2, ghost-exchange rounds included) must run *clean*
//! under shadow-memory launch analysis — no harmful races, no
//! `ldg`-coherence violations, no out-of-bounds or read-before-init —
//! with exactly one expected finding class: the paper's documented
//! benign `st_warp` speculation race on `color[v]`.
//!
//! Because the sanitizer forwards every in-bounds access to the real
//! context unchanged, a sanitized run must also match the plain
//! deterministic simulator bit for bit: same colors, same modeled time.

use gcol_core::{color_sanitized, ColorOptions, ExchangeKind, Scheme};
use gcol_graph::check::verify_coloring;
use gcol_graph::gen::simple::erdos_renyi;
use gcol_graph::gen::{grid2d, StencilKind};
use gcol_graph::Csr;
use gcol_simt::sanitize::FindingKind;
use gcol_simt::{BackendKind, Device, ExecMode, SimtBackend};

fn graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("er", erdos_renyi(400, 2400, 7)),
        ("grid", grid2d(20, 20, StencilKind::NinePoint)),
    ]
}

#[test]
fn all_gpu_schemes_run_clean_single_device() {
    let dev = Device::tiny();
    let opts = ColorOptions::default();
    let simt = SimtBackend::new(&dev, ExecMode::Deterministic);
    for scheme in Scheme::GPU {
        let mut saw_benign = false;
        for (name, g) in graphs() {
            let (coloring, report) = color_sanitized(scheme, &g, &dev, &opts)
                .unwrap_or_else(|e| panic!("{scheme}/{name}: {e}"));
            verify_coloring(&g, &coloring.colors)
                .unwrap_or_else(|e| panic!("{scheme}/{name} improper: {e}"));
            assert!(
                report.is_clean(),
                "{scheme}/{name} has harmful findings:\n{report}"
            );
            saw_benign |= report.benign().any(|f| f.kind == FindingKind::WarpSpecRace);

            // Bit-identical to the unsanitized deterministic simulator:
            // the sanitizer lives off the timing path.
            let plain = scheme
                .try_color_on(&simt, &g, &opts)
                .unwrap_or_else(|e| panic!("{scheme}/{name} plain: {e}"));
            assert_eq!(coloring.colors, plain.colors, "{scheme}/{name} colors");
            assert_eq!(
                coloring.profile.total_ms().to_bits(),
                plain.profile.total_ms().to_bits(),
                "{scheme}/{name} modeled time diverged under the sanitizer"
            );
        }
        // Every speculative scheme exhibits the documented benign race on
        // at least one of the graphs (adjacent vertices in one warp).
        assert!(
            saw_benign,
            "{scheme}: expected the benign st_warp race class to appear"
        );
    }
}

#[test]
fn sharded_p2_runs_clean_including_ghost_exchange() {
    // Both wire encodings go under the sanitizer: the compressed (delta)
    // exchange applies partial frontier updates and launches the scoped
    // CrossResolve/OwnedResolve kernels over dirty worklists — exactly
    // the machinery most likely to read stale or uninitialized ghost
    // slots if the dirty-set bookkeeping were wrong.
    let dev = Device::tiny();
    for kind in ExchangeKind::ALL {
        let opts = ColorOptions::default().with_shards(2).with_exchange(kind);
        for scheme in Scheme::GPU {
            for (name, g) in graphs() {
                let (coloring, report) = color_sanitized(scheme, &g, &dev, &opts)
                    .unwrap_or_else(|e| panic!("{scheme}/{name}/{kind} P=2: {e}"));
                verify_coloring(&g, &coloring.colors)
                    .unwrap_or_else(|e| panic!("{scheme}/{name}/{kind} P=2 improper: {e}"));
                assert!(
                    report.is_clean(),
                    "{scheme}/{name}/{kind} P=2 has harmful findings:\n{report}"
                );

                // Bit-identical to the plain sharded simt run — colors
                // AND modeled time, so the sanitizer provably stays off
                // the exchange timing path too.
                let plain = scheme
                    .try_color(&g, &dev, &opts)
                    .unwrap_or_else(|e| panic!("{scheme}/{name}/{kind} P=2 plain: {e}"));
                assert_eq!(
                    coloring.colors, plain.colors,
                    "{scheme}/{name}/{kind} P=2 colors"
                );
                assert_eq!(
                    coloring.profile.total_ms().to_bits(),
                    plain.profile.total_ms().to_bits(),
                    "{scheme}/{name}/{kind} P=2 modeled time diverged under the sanitizer"
                );
            }
        }
    }
}

#[test]
fn backend_kind_sanitize_routes_through_try_color() {
    let dev = Device::tiny();
    let g = erdos_renyi(300, 1500, 11);
    let sane = ColorOptions::default().with_backend(BackendKind::Sanitize);
    let plain = ColorOptions::default();
    for scheme in [Scheme::TopoBase, Scheme::DataBase] {
        let a = scheme.try_color(&g, &dev, &sane).expect("sanitized run");
        let b = scheme.try_color(&g, &dev, &plain).expect("plain run");
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.num_colors, b.num_colors);
    }
    // Sharded routing also accepts the sanitize backend.
    let sharded = ColorOptions::default()
        .with_backend(BackendKind::Sanitize)
        .with_shards(2);
    let c = Scheme::TopoBase.try_color(&g, &dev, &sharded).expect("P=2");
    verify_coloring(&g, &c.colors).expect("proper");
}

#[test]
fn cpu_schemes_come_back_with_empty_reports() {
    let dev = Device::tiny();
    let g = grid2d(12, 12, StencilKind::FivePoint);
    let opts = ColorOptions::default();
    for scheme in [Scheme::Sequential, Scheme::CpuGm, Scheme::CpuJp] {
        let (coloring, report) =
            color_sanitized(scheme, &g, &dev, &opts).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        verify_coloring(&g, &coloring.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(
            report.findings.is_empty(),
            "{scheme} launches no kernels:\n{report}"
        );
    }
}

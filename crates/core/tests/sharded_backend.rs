//! Differential safety net for the sharded multi-device driver: every GPU
//! scheme, on every graph family, at every shard count must produce a
//! *proper* coloring whose color count stays close to the single-device
//! result — and at one shard the sharded driver must be *label-identical*
//! to the existing single-device path (same subgraph, same kernels, same
//! schedule), which pins the whole exchange machinery to a known anchor.
//!
//! Sharding legitimately changes colors for P > 1: each device speculates
//! against its own interior first and cross-shard conflicts are resolved
//! by global-id priority, a different (but still first-fit greedy)
//! schedule than one device would follow. Color *counts* stay in the same
//! ballpark; properness may never change.

use gcol_core::gpu::color_sharded;
use gcol_core::{ColorError, ColorOptions, ExchangeKind, Scheme};
use gcol_graph::check::verify_coloring;
use gcol_graph::gen::simple::{complete, erdos_renyi, star};
use gcol_graph::gen::{grid2d, rmat, RmatParams, StencilKind};
use gcol_graph::partition::Partitioning;
use gcol_graph::Csr;
use gcol_simt::{BackendKind, Device, ExecMode, NativeBackend, Phase, ShardedBackend, SimtBackend};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("er", erdos_renyi(1100, 6600, 17)),
        ("rmat", rmat(RmatParams::skewed(10, 10), 23)),
        ("grid", grid2d(28, 28, StencilKind::NinePoint)),
        ("star", star(400)),
    ]
}

/// Same ballpark bound the native-vs-simt differential suite uses.
fn assert_close(label: &str, a: usize, b: usize) {
    let (a, b) = (a as i64, b as i64);
    assert!(
        (a - b).abs() <= a.max(b) / 2 + 3,
        "{label}: single-device {a} vs sharded {b} colors"
    );
}

#[test]
fn sharded_is_proper_and_close_for_every_scheme_generator_and_shard_count() {
    let dev = Device::tiny();
    // Native backend: real parallel execution, fast enough for the full
    // schemes × generators × shard-counts cross product.
    let opts = ColorOptions::default().with_backend(BackendKind::Native);
    for (name, g) in graphs() {
        for scheme in Scheme::GPU {
            let single = scheme
                .try_color(&g, &dev, &opts)
                .unwrap_or_else(|e| panic!("{scheme}/{name} single-device: {e}"));
            for p in SHARD_COUNTS {
                let sharded = scheme
                    .try_color(&g, &dev, &opts.clone().with_shards(p))
                    .unwrap_or_else(|e| panic!("{scheme}/{name} P={p}: {e}"));
                verify_coloring(&g, &sharded.colors)
                    .unwrap_or_else(|e| panic!("{scheme}/{name} P={p} improper: {e}"));
                assert_close(
                    &format!("{scheme}/{name} P={p}"),
                    single.num_colors,
                    sharded.num_colors,
                );
            }
        }
    }
}

#[test]
fn one_shard_is_label_identical_to_the_single_device_driver() {
    let dev = Device::tiny();
    let g = erdos_renyi(700, 4200, 29);
    let opts = ColorOptions::default();
    let fleet = ShardedBackend::uniform(1, |_| SimtBackend::new(&dev, ExecMode::Deterministic));
    for scheme in Scheme::GPU {
        let single = scheme
            .try_color(&g, &dev, &opts)
            .unwrap_or_else(|e| panic!("{scheme} single: {e}"));
        let sharded = color_sharded(scheme, &g, &fleet, &opts)
            .unwrap_or_else(|e| panic!("{scheme} P=1: {e}"));
        assert_eq!(single.colors, sharded.colors, "{scheme}: labels drifted");
        assert_eq!(single.num_colors, sharded.num_colors, "{scheme}");
        assert_eq!(single.iterations, sharded.iterations, "{scheme}");
    }
}

#[test]
fn sharded_simt_is_proper_and_charges_the_modeled_frontier() {
    let dev = Device::tiny();
    let g = rmat(RmatParams::skewed(9, 8), 5);
    let total_ghosts: usize = Partitioning::contiguous(&g, 4)
        .extract_shards(&g)
        .iter()
        .map(|s| s.ghost_gids.len())
        .sum();
    assert!(total_ghosts > 0, "graph too sparse to exercise exchanges");
    // The per-round wire bound comes from the encoding, not a magic
    // constant: a dense round ships exactly 4 bytes per ghost, and a
    // delta round can never exceed that (the encoder falls back to the
    // dense payload whenever the bitmask would not pay for itself).
    let dense_round = 4 * total_ghosts;
    for kind in ExchangeKind::ALL {
        let opts = ColorOptions::default().with_shards(4).with_exchange(kind);
        for scheme in [Scheme::TopoBase, Scheme::DataLdg, Scheme::CsrColor] {
            let r = scheme.try_color(&g, &dev, &opts).unwrap();
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}/{kind}: {e}"));
            let frontier_rounds: Vec<(usize, f64)> = r
                .profile
                .phases
                .iter()
                .filter_map(|p| match p {
                    Phase::Transfer { label, bytes, ms } if label.contains("d2d") => {
                        Some((*bytes, *ms))
                    }
                    _ => None,
                })
                .collect();
            assert!(
                !frontier_rounds.is_empty(),
                "{scheme}/{kind}: no d2d exchange"
            );
            for (round, &(bytes, ms)) in frontier_rounds.iter().enumerate() {
                match kind {
                    ExchangeKind::Dense => assert_eq!(bytes, dense_round, "{scheme} round {round}"),
                    ExchangeKind::Delta => assert!(
                        bytes <= dense_round,
                        "{scheme} round {round}: delta frame ({bytes} B) exceeds dense ({dense_round} B)"
                    ),
                }
                assert!(ms >= 0.0, "{scheme}/{kind}: negative d2d transfer time");
            }
            // Round 1 diffs against a never-seen mirror, so every ghost is
            // dirty and delta's dense fallback ships the full frontier.
            assert_eq!(frontier_rounds[0].0, dense_round, "{scheme}/{kind} round 1");
        }
    }
}

#[test]
fn cpu_schemes_ignore_the_shard_count() {
    let dev = Device::tiny();
    let g = erdos_renyi(500, 3000, 3);
    let opts = ColorOptions::default().with_shards(4);
    for scheme in [Scheme::Sequential, Scheme::CpuGm, Scheme::CpuJp] {
        let r = scheme.try_color(&g, &dev, &opts).unwrap();
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}

#[test]
fn single_device_non_convergence_is_a_typed_error() {
    let dev = Device::tiny();
    let g = erdos_renyi(400, 2400, 11);
    // One pass can never confirm convergence: the speculate/detect loop
    // needs a final all-quiet pass on top of any real work.
    for backend in [BackendKind::Simt, BackendKind::Native] {
        let opts = ColorOptions {
            max_iterations: 1,
            backend,
            ..ColorOptions::default()
        };
        let err = Scheme::TopoBase.try_color(&g, &dev, &opts).unwrap_err();
        assert_eq!(
            err,
            ColorError::MaxIterations {
                scheme: Scheme::TopoBase,
                limit: 1
            },
            "{backend}"
        );
        assert!(err.to_string().contains("did not converge"));
    }
}

#[test]
fn sharded_non_convergence_is_a_typed_error() {
    let dev = Device::tiny();
    // K16 over two devices: both shards color their half with the same
    // low colors, so cross-shard conflicts are certain, and resolving any
    // of them needs more than the one allowed iteration. ThreeStepGm runs
    // a *fixed* number of local GPU rounds, so the budget is consumed by
    // the exchange machinery, not by local speculation.
    let g = complete(16);
    for backend in [BackendKind::Simt, BackendKind::Native] {
        let opts = ColorOptions {
            max_iterations: 1,
            backend,
            num_shards: 2,
            ..ColorOptions::default()
        };
        let err = Scheme::ThreeStepGm.try_color(&g, &dev, &opts).unwrap_err();
        assert_eq!(
            err,
            ColorError::MaxIterations {
                scheme: Scheme::ThreeStepGm,
                limit: 1
            },
            "{backend}"
        );
    }
    // The same configuration with a sane budget converges.
    let opts = ColorOptions::default().with_shards(2);
    let r = Scheme::ThreeStepGm.try_color(&g, &dev, &opts).unwrap();
    verify_coloring(&g, &r.colors).unwrap();
    assert_eq!(r.num_colors, 16);
}

#[test]
fn native_fleet_handles_the_acceptance_scale() {
    // Scaled-down rehearsal of the CLI acceptance run (`gcol-bench
    // shardscale --backend native --shards 4` covers scale 17): every GPU
    // scheme, four native shards, a skewed rmat.
    let dev = Device::tiny();
    let g = rmat(RmatParams::skewed(12, 8), 0xACCE);
    let opts = ColorOptions::default()
        .with_backend(BackendKind::Native)
        .with_shards(4);
    for scheme in Scheme::GPU {
        let r = scheme.try_color(&g, &dev, &opts).unwrap();
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.num_colors <= g.max_degree() + 1, "{scheme}");
    }
    // Explicit fleet construction drives the same path the CLI uses.
    let fleet = ShardedBackend::uniform(4, |_| NativeBackend::new());
    let r = color_sharded(Scheme::DataBase, &g, &fleet, &ColorOptions::default()).unwrap();
    verify_coloring(&g, &r.colors).unwrap();
}

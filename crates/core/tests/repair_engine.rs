//! Property tests of the dirty-set repair engine behind
//! [`gcol_core::recolor_delta`]: given a coloring that is proper outside
//! an injected dirty set (dirty vertices carry arbitrary corrupted
//! colors), repair must always reach a proper fixpoint — and must never
//! recolor a vertex outside the dirty closure, on either execution
//! backend.

use gcol_core::{recolor_delta, BackendKind, ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::builder::from_undirected_edges;
use gcol_graph::check::verify_coloring;
use gcol_graph::rng::splitmix64;
use gcol_graph::{Csr, VertexId};
use gcol_simt::Device;
use proptest::prelude::*;

/// Strategy: a vertex count, an edge list over it, a dirty-set selector
/// and a corruption seed.
fn arb_repair_inputs() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>, Vec<bool>, u64)>
{
    (2usize..50).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        (
            Just(n),
            proptest::collection::vec(edge, 0..160),
            proptest::collection::vec(any::<bool>(), n..n + 1),
            any::<u64>(),
        )
    })
}

/// A proper baseline coloring with the dirty vertices' colors replaced
/// by seeded garbage inside the greedy `1..=max_degree + 1` range.
fn corrupted_base(g: &Csr, dirty: &[VertexId], seed: u64) -> Coloring {
    let dev = Device::tiny();
    let base = Scheme::Sequential
        .try_color(g, &dev, &ColorOptions::default())
        .expect("sequential greedy cannot fail");
    let mut colors = base.colors;
    let span = g.max_degree() as u64 + 1;
    for &v in dirty {
        let mut s = seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        colors[v as usize] = (splitmix64(&mut s) % span) as u32 + 1;
    }
    let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
    Coloring {
        scheme: base.scheme,
        colors,
        num_colors,
        iterations: base.iterations,
        profile: gcol_core::RunProfile::new(),
    }
}

proptest! {
    #[test]
    fn repair_reaches_a_proper_fixpoint_and_stays_inside_the_dirty_set(
        (n, edges, mask, seed) in arb_repair_inputs()
    ) {
        let g = from_undirected_edges(n, edges);
        let dirty: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask[v as usize]).collect();
        let base = corrupted_base(&g, &dirty, seed);
        let dev = Device::tiny();
        for backend in [BackendKind::Simt, BackendKind::Native] {
            let opts = ColorOptions::default().with_backend(backend);
            let r = recolor_delta(&g, &base, &dirty, &dev, &opts)
                .unwrap_or_else(|e| panic!("{backend:?}: {e}"));
            // Proper fixpoint, inside the greedy bound.
            verify_coloring(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{backend:?}: improper after repair: {e}"));
            prop_assert!(r.num_colors <= g.max_degree() + 1);
            // The dirty-closure contract: clean vertices bit-identical.
            for v in 0..n as VertexId {
                if !mask[v as usize] {
                    prop_assert_eq!(
                        r.colors[v as usize], base.colors[v as usize],
                        "{:?}: clean vertex {} was recolored", backend, v
                    );
                }
            }
        }
    }

    #[test]
    fn repair_of_an_uncorrupted_coloring_changes_nothing(
        (n, edges, mask, _seed) in arb_repair_inputs()
    ) {
        // A dirty set without actual conflicts must leave every color in
        // place (the detect finds nothing to blame).
        let g = from_undirected_edges(n, edges);
        let dirty: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask[v as usize]).collect();
        let base = corrupted_base(&g, &[], 0);
        let dev = Device::tiny();
        for backend in [BackendKind::Simt, BackendKind::Native] {
            let opts = ColorOptions::default().with_backend(backend);
            let r = recolor_delta(&g, &base, &dirty, &dev, &opts).unwrap();
            prop_assert_eq!(&r.colors, &base.colors);
        }
    }
}

#[test]
fn invalid_inputs_are_typed_errors() {
    let dev = Device::tiny();
    let g = from_undirected_edges(6, [(0, 1), (1, 2), (3, 4)]);
    let base = corrupted_base(&g, &[], 0);
    let opts = ColorOptions::default();
    // Dirty id out of range.
    let err = recolor_delta(&g, &base, &[6], &dev, &opts).unwrap_err();
    assert!(matches!(err, ColorError::InvalidOptions { .. }), "{err}");
    // Base coloring from a different-sized graph.
    let small = from_undirected_edges(3, [(0, 1)]);
    let err = recolor_delta(&small, &base, &[0], &dev, &opts).unwrap_err();
    assert!(matches!(err, ColorError::InvalidOptions { .. }), "{err}");
}

#[test]
fn exhausted_iteration_budget_is_a_typed_max_iterations() {
    let dev = Device::tiny();
    let g = from_undirected_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]);
    let base = corrupted_base(&g, &[0, 1, 2, 3], 7);
    let opts = ColorOptions {
        max_iterations: 0,
        ..ColorOptions::default()
    };
    let err = recolor_delta(&g, &base, &[0, 1, 2, 3], &dev, &opts).unwrap_err();
    assert!(
        matches!(err, ColorError::MaxIterations { limit: 0, .. }),
        "{err}"
    );
}

#[test]
fn empty_dirty_set_returns_the_base_unchanged() {
    let dev = Device::tiny();
    let g = from_undirected_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
    let base = corrupted_base(&g, &[], 0);
    let r = recolor_delta(&g, &base, &[], &dev, &ColorOptions::default()).unwrap();
    assert_eq!(r.colors, base.colors);
    assert_eq!(r.iterations, 0);
    assert_eq!(r.profile.total_ms(), 0.0);
}

//! Property tests for the ghost-frontier wire encodings.
//!
//! The sharded driver's correctness argument leans on one codec fact: a
//! delta frame applied over the previous mirror reconstructs *exactly*
//! the colors a dense frame would have shipped. These properties pin
//! that down for arbitrary (prev, cur) pairs — including the empty
//! frontier, the nothing-changed frame, and the all-dirty fallback —
//! plus the byte-economy claim that a delta frame never costs more than
//! its dense counterpart.

use gcol_core::gpu::{ExchangeKind, FrontierFrame};
use proptest::prelude::*;

/// An arbitrary (prev, cur) mirror pair of equal length. Colors are drawn
/// from a small range so repeats (i.e. clean ghosts) are common.
fn mirror_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (0usize..128).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u32..20, n..n + 1),
            proptest::collection::vec(1u32..20, n..n + 1),
        )
    })
}

proptest! {
    /// Core round-trip equality: decoding the delta frame over the prev
    /// mirror yields the exact array the dense frame ships.
    #[test]
    fn delta_and_dense_decode_identically((prev, cur) in mirror_pair()) {
        let dense = ExchangeKind::Dense.encode(&cur, &prev);
        let delta = ExchangeKind::Delta.encode(&cur, &prev);

        let mut via_dense = prev.clone();
        dense.apply(&mut via_dense);
        let mut via_delta = prev.clone();
        let touched = delta.apply(&mut via_delta);

        prop_assert_eq!(&via_dense, &cur);
        prop_assert_eq!(&via_delta, &cur);
        // The touched set covers every ghost that actually changed.
        for (i, (&p, &c)) in prev.iter().zip(cur.iter()).enumerate() {
            if p != c {
                prop_assert!(touched.contains(&i), "changed ghost {i} not rewritten");
            }
        }
    }

    /// Byte economy: a delta frame never exceeds the dense frame, and its
    /// reported dirty count never exceeds the true number of changes.
    #[test]
    fn delta_never_costs_more_than_dense((prev, cur) in mirror_pair()) {
        let dense = ExchangeKind::Dense.encode(&cur, &prev);
        let delta = ExchangeKind::Delta.encode(&cur, &prev);
        prop_assert!(delta.wire_bytes() <= dense.wire_bytes());

        let changed = prev.iter().zip(cur.iter()).filter(|(p, c)| p != c).count();
        if changed == 0 {
            prop_assert!(delta.is_empty());
        }
    }

    /// The first round seeds `prev` with `u32::MAX`, so everything is
    /// dirty and the encoder must take the dense fallback (no bitmask
    /// overhead on a frame that ships every color anyway).
    #[test]
    fn first_round_all_dirty_falls_back_to_dense(cur in proptest::collection::vec(1u32..20, 1..128)) {
        let prev = vec![u32::MAX; cur.len()];
        let f = ExchangeKind::Delta.encode(&cur, &prev);
        prop_assert!(matches!(f, FrontierFrame::Dense { .. }));
        prop_assert_eq!(f.wire_bytes(), 4 * cur.len());
        let mut mirror = prev;
        f.apply(&mut mirror);
        prop_assert_eq!(mirror, cur);
    }
}

#[test]
fn empty_frontier_round_trips_under_both_kinds() {
    for kind in ExchangeKind::ALL {
        let f = kind.encode(&[], &[]);
        assert_eq!(f.wire_bytes(), 0);
        assert_eq!(f.num_dirty(), 0);
        let mut mirror: Vec<u32> = Vec::new();
        assert!(f.apply(&mut mirror).is_empty());
    }
}

#[test]
fn unchanged_frontier_elides_the_frame() {
    let cur = vec![5u32; 40];
    let f = ExchangeKind::Delta.encode(&cur, &cur);
    assert!(f.is_empty());
    assert_eq!(f.wire_bytes(), 0);
    let mut mirror = cur.clone();
    assert!(f.apply(&mut mirror).is_empty());
    assert_eq!(mirror, cur);
}

//! Golden guard: the Deterministic-mode SIMT backend must keep producing
//! **bit-identical** colorings and modeled profile totals for the paper's
//! seven schemes across refactors of the driver/backend plumbing. The
//! constants below were captured from the pre-backend-refactor drivers
//! (PR 1 tree) and must never drift: any change here is a change to the
//! paper-faithful path, not a refactor.
//!
//! To regenerate after an *intentional* model change, run
//!
//! ```text
//! GCOL_REGEN_GOLDEN=1 cargo test -p gcol-core --test golden_simt -- --nocapture regen --ignored
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use gcol_core::{ColorOptions, Coloring, Scheme};
use gcol_graph::gen::simple::erdos_renyi;
use gcol_graph::gen::{rmat, RmatParams};
use gcol_graph::Csr;
use gcol_simt::{Device, ExecMode, Phase};

/// One scheme's captured fingerprint on one graph.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    graph: &'static str,
    scheme: &'static str,
    /// FNV-1a over the per-vertex colors (order-sensitive).
    colors_fnv: u64,
    num_colors: usize,
    iterations: usize,
    /// Bit patterns of the modeled time totals (exact f64 equality).
    total_ms_bits: u64,
    kernel_ms_bits: u64,
    transfer_ms_bits: u64,
    host_ms_bits: u64,
    /// Sum of the integer hardware counters over all kernel launches.
    cycles: u64,
    instructions: u64,
    mem_transactions: u64,
    dram_bytes: u64,
    atomics: u64,
}

fn fnv1a(colors: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in colors {
        for b in c.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn fingerprint(graph: &'static str, r: &Coloring) -> Golden {
    let (mut cycles, mut instructions, mut txn, mut dram, mut atomics) = (0, 0, 0, 0, 0);
    for p in &r.profile.phases {
        if let Phase::Kernel(k) = p {
            cycles += k.cycles;
            instructions += k.instructions;
            txn += k.mem_transactions;
            dram += k.dram_bytes;
            atomics += k.atomics;
        }
    }
    Golden {
        graph,
        scheme: r.scheme.name(),
        colors_fnv: fnv1a(&r.colors),
        num_colors: r.num_colors,
        iterations: r.iterations,
        total_ms_bits: r.profile.total_ms().to_bits(),
        kernel_ms_bits: r.profile.kernel_ms().to_bits(),
        transfer_ms_bits: r.profile.transfer_ms().to_bits(),
        host_ms_bits: r.profile.host_ms().to_bits(),
        cycles,
        instructions,
        mem_transactions: txn,
        dram_bytes: dram,
        atomics,
    }
}

fn graphs() -> [(&'static str, Csr); 2] {
    [
        ("er-2500", erdos_renyi(2500, 15_000, 42)),
        ("rmat-skew-11", rmat(RmatParams::skewed(11, 8), 7)),
    ]
}

fn opts() -> ColorOptions {
    ColorOptions {
        exec_mode: ExecMode::Deterministic,
        // Exercise the h2d charging path too: its byte accounting is part
        // of the guarded surface.
        charge_h2d: true,
        ..ColorOptions::default()
    }
}

fn capture() -> Vec<Golden> {
    let dev = Device::k20c();
    let opts = opts();
    let mut out = Vec::new();
    for (name, g) in graphs() {
        for scheme in Scheme::paper_seven() {
            out.push(fingerprint(name, &scheme.color(&g, &dev, &opts)));
        }
    }
    out
}

/// One sharded Deterministic run's captured fingerprint: colors, rounds
/// and the modeled ghost-frontier traffic must stay bit-stable for the
/// pinned rmat graph at 2 and 4 devices.
#[derive(Debug, PartialEq, Eq)]
struct GoldenSharded {
    shards: usize,
    scheme: &'static str,
    colors_fnv: u64,
    num_colors: usize,
    /// Phase-A critical-path iterations plus exchange rounds.
    iterations: usize,
    total_ms_bits: u64,
    transfer_ms_bits: u64,
    /// Total d2d ghost-frontier bytes (frontier size × rounds).
    transfer_bytes: u64,
}

fn capture_sharded() -> Vec<GoldenSharded> {
    let dev = Device::k20c();
    let opts = opts();
    let g = rmat(RmatParams::skewed(11, 8), 7);
    let mut out = Vec::new();
    for shards in [2usize, 4] {
        for scheme in Scheme::proposed_four() {
            let r = scheme.color(&g, &dev, &opts.clone().with_shards(shards));
            let bytes: u64 = r
                .profile
                .phases
                .iter()
                .filter_map(|p| match p {
                    Phase::Transfer { bytes, .. } => Some(*bytes as u64),
                    _ => None,
                })
                .sum();
            out.push(GoldenSharded {
                shards,
                scheme: scheme.name(),
                colors_fnv: fnv1a(&r.colors),
                num_colors: r.num_colors,
                iterations: r.iterations,
                total_ms_bits: r.profile.total_ms().to_bits(),
                transfer_ms_bits: r.profile.transfer_ms().to_bits(),
                transfer_bytes: bytes,
            });
        }
    }
    out
}

#[test]
#[ignore = "regeneration helper, run with GCOL_REGEN_GOLDEN=1"]
fn regen() {
    if std::env::var("GCOL_REGEN_GOLDEN").is_err() {
        return;
    }
    for g in capture_sharded() {
        println!(
            "    GoldenSharded {{ shards: {}, scheme: {:?}, colors_fnv: 0x{:016x}, \
             num_colors: {}, iterations: {}, total_ms_bits: 0x{:016x}, \
             transfer_ms_bits: 0x{:016x}, transfer_bytes: {} }},",
            g.shards,
            g.scheme,
            g.colors_fnv,
            g.num_colors,
            g.iterations,
            g.total_ms_bits,
            g.transfer_ms_bits,
            g.transfer_bytes
        );
    }
    for g in capture() {
        println!(
            "    Golden {{ graph: {:?}, scheme: {:?}, colors_fnv: 0x{:016x}, num_colors: {}, \
             iterations: {}, total_ms_bits: 0x{:016x}, kernel_ms_bits: 0x{:016x}, \
             transfer_ms_bits: 0x{:016x}, host_ms_bits: 0x{:016x}, cycles: {}, \
             instructions: {}, mem_transactions: {}, dram_bytes: {}, atomics: {} }},",
            g.graph,
            g.scheme,
            g.colors_fnv,
            g.num_colors,
            g.iterations,
            g.total_ms_bits,
            g.kernel_ms_bits,
            g.transfer_ms_bits,
            g.host_ms_bits,
            g.cycles,
            g.instructions,
            g.mem_transactions,
            g.dram_bytes,
            g.atomics
        );
    }
}

#[test]
fn deterministic_simt_path_is_bit_stable_across_refactors() {
    let measured = capture();
    assert_eq!(measured.len(), GOLDEN.len());
    for (m, g) in measured.iter().zip(GOLDEN.iter()) {
        assert_eq!(m, g, "paper-path drift on {} / {}", g.graph, g.scheme);
    }
}

#[test]
fn deterministic_sharded_profiles_are_bit_stable() {
    let measured = capture_sharded();
    assert_eq!(measured.len(), GOLDEN_SHARDED.len());
    for (m, g) in measured.iter().zip(GOLDEN_SHARDED.iter()) {
        assert_eq!(m, g, "sharded-path drift on {} at P={}", g.scheme, g.shards);
    }
}

/// Captured from the compressed-exchange sharded driver (delta frontier
/// frames, fused cross/owned resolve, palette rotation) on the pinned
/// `rmat-skew-11` graph; regenerate like `GOLDEN` (see module docs).
const GOLDEN_SHARDED: &[GoldenSharded] = &[
    GoldenSharded {
        shards: 2,
        scheme: "T-base",
        colors_fnv: 0x17e7c6cddba11678,
        num_colors: 13,
        iterations: 7,
        total_ms_bits: 0x3fe247cf29812b8b,
        transfer_ms_bits: 0x3f9532dc84891f80,
        transfer_bytes: 7499,
    },
    GoldenSharded {
        shards: 2,
        scheme: "T-ldg",
        colors_fnv: 0x17e7c6cddba11678,
        num_colors: 13,
        iterations: 7,
        total_ms_bits: 0x3fe0e23d26979502,
        transfer_ms_bits: 0x3f9532dc84891f80,
        transfer_bytes: 7499,
    },
    GoldenSharded {
        shards: 2,
        scheme: "D-base",
        colors_fnv: 0x9c182c19fc76870e,
        num_colors: 13,
        iterations: 7,
        total_ms_bits: 0x3fe1ba3d169757db,
        transfer_ms_bits: 0x3f9531a357d01240,
        transfer_bytes: 7471,
    },
    GoldenSharded {
        shards: 2,
        scheme: "D-ldg",
        colors_fnv: 0x9c182c19fc76870e,
        num_colors: 13,
        iterations: 7,
        total_ms_bits: 0x3fdfee560e1bc45c,
        transfer_ms_bits: 0x3f9531a357d01240,
        transfer_bytes: 7471,
    },
    GoldenSharded {
        shards: 4,
        scheme: "T-base",
        colors_fnv: 0xd9f1240d0ab26ac1,
        num_colors: 14,
        iterations: 9,
        total_ms_bits: 0x3fea42437c7c168f,
        transfer_ms_bits: 0x3f9fbd10debc2a40,
        transfer_bytes: 21716,
    },
    GoldenSharded {
        shards: 4,
        scheme: "T-ldg",
        colors_fnv: 0xd9f1240d0ab26ac1,
        num_colors: 14,
        iterations: 9,
        total_ms_bits: 0x3fe902b4bc463f93,
        transfer_ms_bits: 0x3f9fbd10debc2a40,
        transfer_bytes: 21716,
    },
    GoldenSharded {
        shards: 4,
        scheme: "D-base",
        colors_fnv: 0xea8bfb05e9e845a7,
        num_colors: 13,
        iterations: 7,
        total_ms_bits: 0x3fe53a21da5de4c6,
        transfer_ms_bits: 0x3f9fbc312c8120b0,
        transfer_bytes: 21468,
    },
    GoldenSharded {
        shards: 4,
        scheme: "D-ldg",
        colors_fnv: 0xea8bfb05e9e845a7,
        num_colors: 13,
        iterations: 7,
        total_ms_bits: 0x3fe431048c71b35c,
        transfer_ms_bits: 0x3f9fbc312c8120b0,
        transfer_bytes: 21468,
    },
];

/// Captured on the pre-refactor tree; see module docs.
const GOLDEN: &[Golden] = &[
    Golden {
        graph: "er-2500",
        scheme: "sequential",
        colors_fnv: 0x138f4030c40ef72b,
        num_colors: 9,
        iterations: 1,
        total_ms_bits: 0x3fbdfb2c4b23b932,
        kernel_ms_bits: 0x8000000000000000,
        transfer_ms_bits: 0x8000000000000000,
        host_ms_bits: 0x3fbdfb2c4b23b932,
        cycles: 0,
        instructions: 0,
        mem_transactions: 0,
        dram_bytes: 0,
        atomics: 0,
    },
    Golden {
        graph: "er-2500",
        scheme: "3-step GM",
        colors_fnv: 0xd37fed5ac414516a,
        num_colors: 9,
        iterations: 2,
        total_ms_bits: 0x3fd60ad0af29b646,
        kernel_ms_bits: 0x3fbe6df72587fc6e,
        transfer_ms_bits: 0x3fb2c392023d38b7,
        host_ms_bits: 0x3fc37cdcca70d1fa,
        cycles: 83919,
        instructions: 171929,
        mem_transactions: 153626,
        dram_bytes: 452960,
        atomics: 0,
    },
    Golden {
        graph: "er-2500",
        scheme: "T-base",
        colors_fnv: 0xd37fed5ac414516a,
        num_colors: 9,
        iterations: 3,
        total_ms_bits: 0x3fcc698bb2cd67ec,
        kernel_ms_bits: 0x3fc418c2fbc83bec,
        transfer_ms_bits: 0x3fb0a1916e0a5801,
        host_ms_bits: 0x8000000000000000,
        cycles: 110846,
        instructions: 223854,
        mem_transactions: 200746,
        dram_bytes: 602848,
        atomics: 0,
    },
    Golden {
        graph: "er-2500",
        scheme: "T-ldg",
        colors_fnv: 0xd37fed5ac414516a,
        num_colors: 9,
        iterations: 3,
        total_ms_bits: 0x3fc9b56d16b3ab6b,
        kernel_ms_bits: 0x3fc164a45fae7f6b,
        transfer_ms_bits: 0x3fb0a1916e0a5801,
        host_ms_bits: 0x8000000000000000,
        cycles: 95934,
        instructions: 168947,
        mem_transactions: 145839,
        dram_bytes: 608928,
        atomics: 0,
    },
    Golden {
        graph: "er-2500",
        scheme: "D-base",
        colors_fnv: 0xd37fed5ac414516a,
        num_colors: 9,
        iterations: 2,
        total_ms_bits: 0x3fc77c1c4de75b69,
        kernel_ms_bits: 0x3fc0a9a4466ec123,
        transfer_ms_bits: 0x3fab49e01de26916,
        host_ms_bits: 0x8000000000000000,
        cycles: 91905,
        instructions: 121492,
        mem_transactions: 107489,
        dram_bytes: 333408,
        atomics: 21,
    },
    Golden {
        graph: "er-2500",
        scheme: "D-ldg",
        colors_fnv: 0xd37fed5ac414516a,
        num_colors: 9,
        iterations: 2,
        total_ms_bits: 0x3fc554c3708eaaa0,
        kernel_ms_bits: 0x3fbd0496d22c20b3,
        transfer_ms_bits: 0x3fab49e01de26916,
        host_ms_bits: 0x8000000000000000,
        cycles: 80026,
        instructions: 92792,
        mem_transactions: 78789,
        dram_bytes: 344416,
        atomics: 21,
    },
    Golden {
        graph: "er-2500",
        scheme: "csrcolor",
        colors_fnv: 0x7be5b4f17a60e058,
        num_colors: 26,
        iterations: 7,
        total_ms_bits: 0x3fd597fe236cf8f2,
        kernel_ms_bits: 0x3fcdf701e2b39006,
        transfer_ms_bits: 0x3fba71f4c84cc3b8,
        host_ms_bits: 0x8000000000000000,
        cycles: 165275,
        instructions: 245788,
        mem_transactions: 169147,
        dram_bytes: 575296,
        atomics: 140,
    },
    Golden {
        graph: "rmat-skew-11",
        scheme: "sequential",
        colors_fnv: 0x9a84727179df4434,
        num_colors: 9,
        iterations: 1,
        total_ms_bits: 0x3fb0d2927c4ddca0,
        kernel_ms_bits: 0x8000000000000000,
        transfer_ms_bits: 0x8000000000000000,
        host_ms_bits: 0x3fb0d2927c4ddca0,
        cycles: 0,
        instructions: 0,
        mem_transactions: 0,
        dram_bytes: 0,
        atomics: 0,
    },
    Golden {
        graph: "rmat-skew-11",
        scheme: "3-step GM",
        colors_fnv: 0x447c708a5f7f676b,
        num_colors: 11,
        iterations: 2,
        total_ms_bits: 0x3fd33f4d25a18428,
        kernel_ms_bits: 0x3fc3803f1f5bb224,
        transfer_ms_bits: 0x3faf7712cda9b334,
        host_ms_bits: 0x3fb6412cf0f9d2c0,
        cycles: 107560,
        instructions: 95815,
        mem_transactions: 79146,
        dram_bytes: 280128,
        atomics: 0,
    },
    Golden {
        graph: "rmat-skew-11",
        scheme: "T-base",
        colors_fnv: 0x8ffd1ac5955adebe,
        num_colors: 11,
        iterations: 5,
        total_ms_bits: 0x3fd871ff0a5a9f34,
        kernel_ms_bits: 0x3fd3ab39be8b93ca,
        transfer_ms_bits: 0x3fb31b152f3c2dae,
        host_ms_bits: 0x8000000000000000,
        cycles: 216972,
        instructions: 179380,
        mem_transactions: 150040,
        dram_bytes: 552128,
        atomics: 0,
    },
    Golden {
        graph: "rmat-skew-11",
        scheme: "T-ldg",
        colors_fnv: 0x8ffd1ac5955adebe,
        num_colors: 11,
        iterations: 5,
        total_ms_bits: 0x3fd61f70250346fe,
        kernel_ms_bits: 0x3fd158aad9343b93,
        transfer_ms_bits: 0x3fb31b152f3c2dae,
        host_ms_bits: 0x8000000000000000,
        cycles: 191352,
        instructions: 141256,
        mem_transactions: 111916,
        dram_bytes: 573824,
        atomics: 0,
    },
    Golden {
        graph: "rmat-skew-11",
        scheme: "D-base",
        colors_fnv: 0xbcabb0e968480b07,
        num_colors: 12,
        iterations: 5,
        total_ms_bits: 0x3fdee061914c53d9,
        kernel_ms_bits: 0x3fda2ffae4fe3b00,
        transfer_ms_bits: 0x3fb2c19ab1386366,
        host_ms_bits: 0x8000000000000000,
        cycles: 288880,
        instructions: 76053,
        mem_transactions: 62280,
        dram_bytes: 259968,
        atomics: 21,
    },
    Golden {
        graph: "rmat-skew-11",
        scheme: "D-ldg",
        colors_fnv: 0xbcabb0e968480b07,
        num_colors: 12,
        iterations: 5,
        total_ms_bits: 0x3fdb8414f640e76c,
        kernel_ms_bits: 0x3fd6d3ae49f2ce94,
        transfer_ms_bits: 0x3fb2c19ab1386366,
        host_ms_bits: 0x8000000000000000,
        cycles: 251809,
        instructions: 62577,
        mem_transactions: 48804,
        dram_bytes: 300192,
        atomics: 21,
    },
    Golden {
        graph: "rmat-skew-11",
        scheme: "csrcolor",
        colors_fnv: 0x820e39345b54e7d1,
        num_colors: 25,
        iterations: 7,
        total_ms_bits: 0x3fd66fa4214a3537,
        kernel_ms_bits: 0x3fd07789c8d95ad9,
        transfer_ms_bits: 0x3fb7e06961c36978,
        host_ms_bits: 0x8000000000000000,
        cycles: 181651,
        instructions: 133444,
        mem_transactions: 77868,
        dram_bytes: 330112,
        atomics: 112,
    },
];

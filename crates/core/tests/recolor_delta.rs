//! Differential tests of incremental recoloring: after an edge-edit
//! batch, [`gcol_core::recolor_delta`] must match a from-scratch rerun
//! on properness with a color count inside the usual closeness bound —
//! across all 8 GPU schemes on both the simt and native backends — while
//! leaving every untouched vertex's color bit-identical to the base run.

use gcol_core::{recolor_delta, recolor_delta_sanitized, BackendKind, ColorOptions, Scheme};
use gcol_graph::check::verify_coloring;
use gcol_graph::edit::EdgeEdit;
use gcol_graph::gen::simple::erdos_renyi;
use gcol_graph::{Csr, VertexId};
use gcol_simt::Device;

/// A deterministic mixed edit batch: delete every `stride`-th stored
/// undirected edge, and insert the same number of fresh non-edges.
fn edit_batch(g: &Csr, stride: usize, seed: u64) -> Vec<EdgeEdit> {
    let mut edits: Vec<EdgeEdit> = g
        .edges()
        .filter(|(u, v)| u < v)
        .step_by(stride)
        .map(|(u, v)| EdgeEdit::Delete(u, v))
        .collect();
    let n = g.num_vertices() as u64;
    let deletes = edits.len();
    let mut s = seed;
    while edits.len() < 2 * deletes {
        let u = (gcol_graph::rng::splitmix64(&mut s) % n) as VertexId;
        let v = (gcol_graph::rng::splitmix64(&mut s) % n) as VertexId;
        if u != v && !g.has_edge_sorted(u, v) {
            edits.push(EdgeEdit::Insert(u, v));
        }
    }
    edits
}

fn assert_close(scheme: Scheme, tag: &str, a: usize, b: usize) {
    let (a, b) = (a as i64, b as i64);
    assert!(
        (a - b).abs() <= a.max(b) / 2 + 3,
        "{scheme}/{tag}: delta {a} vs scratch {b} colors"
    );
}

#[test]
fn delta_matches_scratch_for_every_gpu_scheme_on_both_backends() {
    let dev = Device::tiny();
    let g = erdos_renyi(600, 3600, 11);
    for backend in [BackendKind::Simt, BackendKind::Native] {
        let opts = ColorOptions::default().with_backend(backend);
        for scheme in Scheme::GPU {
            let base = scheme
                .try_color(&g, &dev, &opts)
                .unwrap_or_else(|e| panic!("{scheme}: {e}"));
            let (edited, touched) = g.with_edits(&edit_batch(&g, 40, 0xD17)).unwrap();
            assert!(!touched.is_empty(), "edit batch must touch something");
            let delta = recolor_delta(&edited, &base, &touched, &dev, &opts)
                .unwrap_or_else(|e| panic!("{scheme} delta: {e}"));
            let scratch = scheme
                .try_color(&edited, &dev, &opts)
                .unwrap_or_else(|e| panic!("{scheme} scratch: {e}"));
            verify_coloring(&edited, &delta.colors)
                .unwrap_or_else(|e| panic!("{scheme} ({backend:?}) delta improper: {e}"));
            verify_coloring(&edited, &scratch.colors)
                .unwrap_or_else(|e| panic!("{scheme} ({backend:?}) scratch improper: {e}"));
            assert_close(scheme, "colors", delta.num_colors, scratch.num_colors);
            // Untouched vertices keep their base colors bit-for-bit.
            let touched_set: std::collections::HashSet<VertexId> =
                touched.iter().copied().collect();
            for v in 0..edited.num_vertices() {
                if !touched_set.contains(&(v as VertexId)) {
                    assert_eq!(
                        delta.colors[v], base.colors[v],
                        "{scheme} ({backend:?}): untouched vertex {v} was recolored"
                    );
                }
            }
            assert_eq!(delta.scheme, scheme);
        }
    }
}

#[test]
fn cpu_scheme_baselines_repair_too() {
    // The repair engine is scheme-agnostic: a sequential-greedy baseline
    // repairs exactly like a GPU one.
    let dev = Device::tiny();
    let g = erdos_renyi(400, 2400, 3);
    let opts = ColorOptions::default();
    let base = Scheme::Sequential.try_color(&g, &dev, &opts).unwrap();
    let (edited, touched) = g.with_edits(&edit_batch(&g, 25, 0xBEE)).unwrap();
    let delta = recolor_delta(&edited, &base, &touched, &dev, &opts).unwrap();
    verify_coloring(&edited, &delta.colors).unwrap();
    assert_eq!(delta.scheme, Scheme::Sequential);
}

#[test]
fn deterministic_delta_runs_are_reproducible() {
    let dev = Device::tiny();
    let g = erdos_renyi(500, 3000, 8);
    let opts = ColorOptions::default();
    let base = Scheme::TopoBase.try_color(&g, &dev, &opts).unwrap();
    let (edited, touched) = g.with_edits(&edit_batch(&g, 30, 0xABC)).unwrap();
    let a = recolor_delta(&edited, &base, &touched, &dev, &opts).unwrap();
    let b = recolor_delta(&edited, &base, &touched, &dev, &opts).unwrap();
    assert_eq!(a.colors, b.colors);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.total_ms().to_bits(), b.total_ms().to_bits());
}

#[test]
fn sanitized_delta_repair_is_clean_and_label_identical() {
    let dev = Device::tiny();
    let g = erdos_renyi(400, 2800, 17);
    let opts = ColorOptions::default();
    let base = Scheme::DataBase.try_color(&g, &dev, &opts).unwrap();
    let (edited, touched) = g.with_edits(&edit_batch(&g, 20, 0xFACE)).unwrap();
    let plain = recolor_delta(&edited, &base, &touched, &dev, &opts).unwrap();
    let (sanitized, report) =
        recolor_delta_sanitized(&edited, &base, &touched, &dev, &opts).unwrap();
    assert!(report.is_clean(), "harmful findings:\n{report}");
    assert_eq!(plain.colors, sanitized.colors);
    assert_eq!(plain.total_ms().to_bits(), sanitized.total_ms().to_bits());
}

#[test]
fn recolor_after_edits_is_the_one_call_wrapper() {
    let dev = Device::tiny();
    let g = erdos_renyi(300, 1800, 5);
    let opts = ColorOptions::default();
    let base = Scheme::CsrColor.try_color(&g, &dev, &opts).unwrap();
    let edits = edit_batch(&g, 15, 0x5EED);
    let (edited, repaired) =
        gcol_core::recolor_after_edits(&g, &base, &edits, &dev, &opts).unwrap();
    verify_coloring(&edited, &repaired.colors).unwrap();
    let (expected_graph, touched) = g.with_edits(&edits).unwrap();
    assert_eq!(edited, expected_graph);
    let direct = recolor_delta(&edited, &base, &touched, &dev, &opts).unwrap();
    assert_eq!(repaired.colors, direct.colors);
}

#[test]
fn deletions_alone_never_recolor_anything() {
    // Removing edges cannot create a conflict, so the repair must be a
    // no-op on the colors even though the touched set is non-empty.
    let dev = Device::tiny();
    let g = erdos_renyi(300, 2100, 23);
    let opts = ColorOptions::default();
    let base = Scheme::TopoLdg.try_color(&g, &dev, &opts).unwrap();
    let deletes: Vec<EdgeEdit> = g
        .edges()
        .filter(|(u, v)| u < v)
        .step_by(9)
        .map(|(u, v)| EdgeEdit::Delete(u, v))
        .collect();
    let (edited, touched) = g.with_edits(&deletes).unwrap();
    assert!(!touched.is_empty());
    let delta = recolor_delta(&edited, &base, &touched, &dev, &opts).unwrap();
    assert_eq!(delta.colors, base.colors);
}

//! Differential tests of the native rayon backend against the
//! deterministic timing simulator: every GPU scheme on every graph family
//! must produce a *proper* coloring natively, with a color count close to
//! (and, for warp-synchronous-free semantics, often identical to) the
//! simulator's.
//!
//! The native executor preserves the simulator's warp-deferred store
//! semantics (`st_warp` flushes after each 32-lane warp) and runs blocks
//! in a deterministic order under the sequential fallback, but with real
//! rayon the inter-block interleaving differs — so colors may legitimately
//! diverge between backends. Properness may not.

use gcol_core::{ColorOptions, Scheme};
use gcol_graph::check::verify_coloring;
use gcol_graph::gen::simple::{erdos_renyi, star};
use gcol_graph::gen::{grid2d, rmat, RmatParams, StencilKind};
use gcol_graph::Csr;
use gcol_simt::{BackendKind, Device, ExecMode, NativeBackend, SimtBackend};

/// The schemes that launch kernels (everything the backend layer affects).
const GPU_SCHEMES: [Scheme; 8] = Scheme::GPU;

fn graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("er", erdos_renyi(1200, 7200, 42)),
        ("rmat", rmat(RmatParams::skewed(10, 12), 3)),
        ("grid", grid2d(30, 30, StencilKind::NinePoint)),
        ("star", star(500)),
    ]
}

#[test]
fn native_colors_are_proper_and_close_to_simulator() {
    let dev = Device::tiny();
    let simt = SimtBackend::new(&dev, ExecMode::Deterministic);
    let native = NativeBackend::new();
    let opts = ColorOptions::default();
    for (name, g) in graphs() {
        for scheme in GPU_SCHEMES {
            let s = scheme
                .try_color_on(&simt, &g, &opts)
                .unwrap_or_else(|e| panic!("{scheme}/{name} simt: {e}"));
            let n = scheme
                .try_color_on(&native, &g, &opts)
                .unwrap_or_else(|e| panic!("{scheme}/{name} native: {e}"));
            verify_coloring(&g, &n.colors)
                .unwrap_or_else(|e| panic!("{scheme}/{name} native improper: {e}"));
            // Same algorithm, same speculation semantics: color counts stay
            // in the same ballpark even where interleaving differs.
            let (a, b) = (s.num_colors as i64, n.num_colors as i64);
            assert!(
                (a - b).abs() <= a.max(b) / 2 + 3,
                "{scheme}/{name}: simt {a} vs native {b} colors"
            );
        }
    }
}

#[test]
fn backend_selection_through_color_options() {
    let dev = Device::tiny();
    let g = erdos_renyi(800, 4800, 7);
    for scheme in GPU_SCHEMES {
        let r = scheme.color(
            &g,
            &dev,
            &ColorOptions::default().with_backend(BackendKind::Native),
        );
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        // No modeled kernels or transfers on the native path: time is the
        // measured host wall clock.
        assert!(r.profile.kernel_ms() == 0.0, "{scheme} modeled kernel time");
    }
}

#[test]
fn native_is_proper_on_rmat_scale_17() {
    // The acceptance workload: the benchmark graph of the hotpath driver.
    let g = rmat(RmatParams::erdos_renyi(17, 20), 0xE5);
    let native = NativeBackend::new();
    let opts = ColorOptions::default();
    for scheme in [Scheme::TopoBase, Scheme::DataBase] {
        let r = scheme.try_color_on(&native, &g, &opts).unwrap();
        verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.num_colors <= g.max_degree() + 1);
    }
}

#[test]
fn native_profile_records_wall_clock_phases() {
    let dev = Device::tiny();
    let g = erdos_renyi(600, 3600, 9);
    let r = Scheme::TopoBase.color(
        &g,
        &dev,
        &ColorOptions::default().with_backend(BackendKind::Native),
    );
    let hosts = r
        .profile
        .phases
        .iter()
        .filter(|p| matches!(p, gcol_simt::Phase::Host { .. }))
        .count();
    assert!(hosts >= 2, "expected per-kernel host phases, got {hosts}");
}

//! Algorithm 2: the Gebremedhin–Manne speculative greedy scheme on
//! multicore (the rayon equivalent of Catalyürek et al.'s OpenMP
//! implementation, ref. \[10\] of the paper).
//!
//! Each round speculatively first-fit-colors every worklist vertex in
//! parallel — tolerating races — then a parallel detection pass over *all*
//! vertices re-queues the smaller endpoint of every monochromatic edge
//! (line 14 of Algorithm 2: `color[v] = color[w] and v < w`).

use gcol_graph::check::Color;
use gcol_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering as AtOrd};

/// Result of the CPU speculative-greedy run.
#[derive(Debug, Clone)]
pub struct GmResult {
    /// Per-vertex colors, 1-based.
    pub colors: Vec<Color>,
    /// Largest color used.
    pub num_colors: usize,
    /// Number of speculate/detect rounds executed.
    pub rounds: usize,
}

/// Per-worker scratch: the colorMask plus a pass-unique marker base so the
/// mask never needs clearing (marker = pass * n + v + 1 is unique per
/// (pass, vertex), which keeps the no-reinit trick sound across rounds —
/// stale marks from a previous round of the *same* vertex must not forbid
/// colors that have since been freed).
struct Scratch {
    mask: Vec<u64>,
}

/// Speculative greedy coloring with `max_rounds` as a safety valve.
pub fn gm_parallel(g: &Csr, max_rounds: usize) -> GmResult {
    let n = g.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mask_len = g.max_degree() + 2;
    let mut worklist: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;

    while !worklist.is_empty() {
        rounds += 1;
        assert!(
            rounds <= max_rounds,
            "GM did not converge within {max_rounds} rounds"
        );
        let pass = rounds as u64;
        // Speculative coloring of the worklist.
        worklist.par_chunks(1024).for_each_init(
            || Scratch {
                mask: vec![0u64; mask_len],
            },
            |scratch, chunk| {
                for &v in chunk {
                    let marker = pass * n as u64 + v as u64 + 1;
                    for &w in g.neighbors(v) {
                        let cw = colors[w as usize].load(AtOrd::Relaxed);
                        scratch.mask[cw as usize] = marker;
                    }
                    let mut c = 1usize;
                    while scratch.mask[c] == marker {
                        c += 1;
                    }
                    colors[v as usize].store(c as u32, AtOrd::Relaxed);
                }
            },
        );
        // Conflict detection over all vertices (Algorithm 2, lines 12–18).
        worklist = (0..n as VertexId)
            .into_par_iter()
            .filter(|&v| {
                let cv = colors[v as usize].load(AtOrd::Relaxed);
                g.neighbors(v)
                    .iter()
                    .any(|&w| v < w && cv == colors[w as usize].load(AtOrd::Relaxed))
            })
            .collect();
    }

    let colors: Vec<Color> = colors.into_iter().map(AtomicU32::into_inner).collect();
    let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
    GmResult {
        colors,
        num_colors,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{rmat, RmatParams};

    #[test]
    fn produces_valid_colorings() {
        for g in [
            cycle(101),
            complete(20),
            star(500),
            erdos_renyi(2000, 10_000, 1),
            rmat(RmatParams::skewed(11, 8), 2),
        ] {
            let r = gm_parallel(&g, 1000);
            verify_coloring(&g, &r.colors).unwrap();
            assert!(r.num_colors <= g.max_degree() + 1);
            assert!(r.rounds >= 1);
        }
    }

    #[test]
    fn quality_close_to_sequential() {
        let g = rmat(RmatParams::erdos_renyi(12, 16), 9);
        let seq = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::Natural);
        let par = gm_parallel(&g, 1000);
        // The paper's Fig. 6: all SGR schemes land within a few colors of
        // the sequential count.
        assert!(
            (par.num_colors as i64 - seq.num_colors as i64).abs() <= 3,
            "par {} vs seq {}",
            par.num_colors,
            seq.num_colors
        );
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(0);
        let r = gm_parallel(&g, 10);
        assert_eq!(r.num_colors, 0);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn isolated_vertices_need_one_round() {
        let g = Csr::empty(100);
        let r = gm_parallel(&g, 10);
        assert_eq!(r.rounds, 1);
        assert!(r.colors.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn round_guard_fires() {
        // A zero-round budget must trip on any non-empty graph.
        let g = complete(8);
        gm_parallel(&g, 0);
    }
}

//! The multi-hash family used by csrcolor (Naumov et al., NVIDIA TR 2015;
//! §II-C of the paper): instead of stored random numbers, csrcolor derives
//! per-vertex priorities from hash functions of the vertex id, giving `N`
//! independent orderings — and hence `2N` independent sets (one from local
//! maxima, one from local minima) — per kernel sweep.

/// A 32-bit avalanche hash of `(seed, which, v)`: the `which`-th hash
/// function applied to vertex `v`. Distinct `which` values give
/// effectively independent orderings of the vertex set.
#[inline]
pub fn mix_hash(seed: u64, which: u32, v: u32) -> u32 {
    // splitmix64 finalizer over the packed input.
    let mut z = seed ^ ((which as u64) << 32 | v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 16) as u32
}

/// Priority pair with vertex-id tie-break: total order even when two
/// vertices hash equal.
#[inline]
pub fn hash_priority(seed: u64, which: u32, v: u32) -> (u32, u32) {
    (mix_hash(seed, which, v), v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix_hash(1, 2, 3), mix_hash(1, 2, 3));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for v in 0..10_000u32 {
            if !seen.insert(mix_hash(0, 0, v)) {
                collisions += 1;
            }
        }
        assert!(collisions < 30, "collisions = {collisions}");
    }

    #[test]
    fn different_hash_functions_give_different_orderings() {
        // Count inversions between the orderings induced by which=0 and
        // which=1: independent orderings invert about half the pairs.
        let n = 200u32;
        let mut inversions = 0u32;
        let mut pairs = 0u32;
        for a in 0..n {
            for b in (a + 1)..n {
                pairs += 1;
                let o0 = mix_hash(9, 0, a) < mix_hash(9, 0, b);
                let o1 = mix_hash(9, 1, a) < mix_hash(9, 1, b);
                if o0 != o1 {
                    inversions += 1;
                }
            }
        }
        let frac = inversions as f64 / pairs as f64;
        assert!((frac - 0.5).abs() < 0.05, "inversion fraction {frac}");
    }

    #[test]
    fn priority_is_total_order() {
        // Even forcing equal hashes (same inputs), tie-break distinguishes.
        let a = hash_priority(0, 0, 1);
        let b = hash_priority(0, 0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn bits_look_balanced() {
        let mut ones = [0u32; 32];
        let samples = 4096u32;
        for v in 0..samples {
            let h = mix_hash(3, 1, v);
            for (b, count) in ones.iter_mut().enumerate() {
                *count += (h >> b) & 1;
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            let frac = count as f64 / samples as f64;
            assert!((frac - 0.5).abs() < 0.05, "bit {b} biased: {frac}");
        }
    }
}

//! Ordering-heuristic variants of Jones–Plassmann — the line of work the
//! paper cites as refs. \[19\]/\[20\] (Gjertsen et al.'s PLF; Hasenplaugh,
//! Kaler, Schardl & Leiserson's JP-LLF and JP-SL).
//!
//! Plain JP draws *uniform random* priorities. Better priorities give
//! fewer colors at the same parallel depth:
//!
//! * **JP-LLF (largest log-degree first)** — priority = (⌊log2 degree⌋,
//!   hash): high-degree vertices are colored earlier, like the classic
//!   Welsh–Powell order but with randomized tie-breaks inside a log-class.
//! * **JP-SL (smallest degree last)** — priority classes are the k-core
//!   peeling levels (core numbers) with hashed tie-breaks inside a level,
//!   approximating the sequential SDL order while keeping the parallel
//!   depth at O(degeneracy · log n); the strongest quality of the family.
//!
//! Unlike the listing in the survey part of the paper, each vertex here
//! takes the *smallest available color* when it wins (the JP original),
//! so the color count reflects the ordering quality rather than the round
//! count.

use crate::hash::mix_hash;
use gcol_graph::check::Color;
use gcol_graph::ordering::core_numbers;
use gcol_graph::{Csr, VertexId};
use rayon::prelude::*;

/// Which priority function drives the JP rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JpVariant {
    /// Uniform hashed priorities (classic JP).
    Random,
    /// Largest log-degree first.
    LargestLogDegreeFirst,
    /// Smallest degree last (degeneracy order).
    SmallestDegreeLast,
}

/// Result of an ordered JP run.
#[derive(Debug, Clone)]
pub struct OrderedJpResult {
    /// Per-vertex colors, 1-based.
    pub colors: Vec<Color>,
    /// Number of colors used.
    pub num_colors: usize,
    /// Parallel rounds executed.
    pub rounds: usize,
}

/// Runs JP with the selected priority; vertices that win a round take the
/// smallest color not used by any already-colored neighbor.
pub fn jp_ordered(g: &Csr, variant: JpVariant, seed: u64, max_rounds: usize) -> OrderedJpResult {
    let n = g.num_vertices();
    // Priority per vertex: (class, tie-hash, id); larger wins.
    let priorities: Vec<(u32, u32, VertexId)> = match variant {
        JpVariant::Random => (0..n as VertexId)
            .map(|v| (0, mix_hash(seed, 1, v), v))
            .collect(),
        JpVariant::LargestLogDegreeFirst => (0..n as VertexId)
            .map(|v| {
                let d = g.degree(v) as u32;
                let class = 32 - d.leading_zeros(); // ⌊log2⌋ + 1, 0 for d=0
                (class, mix_hash(seed, 1, v), v)
            })
            .collect(),
        JpVariant::SmallestDegreeLast => {
            // Hasenplaugh et al. use the *peeling levels* (core numbers)
            // as the priority classes, with random tie-breaks inside a
            // level — full SDL ranks would chain the rounds sequentially
            // (O(n) parallel depth); coarse levels keep the depth
            // O(degeneracy · log n).
            let cores = core_numbers(g);
            (0..n as VertexId)
                .map(|v| (cores[v as usize], mix_hash(seed, 1, v), v))
                .collect()
        }
    };

    let mut colors = vec![0 as Color; n];
    let mut worklist: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;
    let mut num_colors = 0usize;
    let mut mask: Vec<u64> = vec![0; g.max_degree() + 2];
    while !worklist.is_empty() {
        rounds += 1;
        assert!(
            rounds <= max_rounds,
            "ordered JP did not converge within {max_rounds} rounds"
        );
        let colors_ref = &colors;
        let priorities_ref = &priorities;
        let (winners, losers): (Vec<VertexId>, Vec<VertexId>) =
            worklist.par_iter().partition_map(|&v| {
                let pv = priorities_ref[v as usize];
                let wins = g
                    .neighbors(v)
                    .iter()
                    .all(|&w| colors_ref[w as usize] != 0 || priorities_ref[w as usize] < pv);
                if wins {
                    rayon::iter::Either::Left(v)
                } else {
                    rayon::iter::Either::Right(v)
                }
            });
        // Winners form an independent set w.r.t. the uncolored subgraph,
        // so coloring them sequentially-greedily is race-free and each
        // takes its smallest available color.
        for &v in &winners {
            let marker = rounds as u64 * n as u64 + v as u64 + 1;
            for &w in g.neighbors(v) {
                mask[colors[w as usize] as usize] = marker;
            }
            let mut c = 1usize;
            while mask[c] == marker {
                c += 1;
            }
            colors[v as usize] = c as Color;
            num_colors = num_colors.max(c);
        }
        worklist = losers;
    }
    OrderedJpResult {
        colors,
        num_colors,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{rmat, RmatParams};

    #[test]
    fn all_variants_proper() {
        for g in [
            cycle(99),
            complete(15),
            star(300),
            erdos_renyi(800, 4800, 3),
        ] {
            for variant in [
                JpVariant::Random,
                JpVariant::LargestLogDegreeFirst,
                JpVariant::SmallestDegreeLast,
            ] {
                let r = jp_ordered(&g, variant, 7, 10_000);
                verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            }
        }
    }

    #[test]
    fn smallest_color_rule_beats_round_number_rule() {
        // The per-round-color JP of the paper's Algorithm 3 listing wastes
        // colors; the smallest-available rule here must beat it.
        let g = erdos_renyi(2000, 16_000, 5);
        let listing = crate::jp::jp_parallel(&g, 7, 10_000);
        let ordered = jp_ordered(&g, JpVariant::Random, 7, 10_000);
        assert!(
            ordered.num_colors < listing.num_colors,
            "smallest-color {} vs per-round {}",
            ordered.num_colors,
            listing.num_colors
        );
    }

    #[test]
    fn sl_tracks_the_sdl_greedy_quality() {
        // JP-SL uses coarse peeling levels, so it approximates (not
        // attains) sequential SDL's degeneracy+1; Hasenplaugh et al.
        // report it within a small constant of SL — check that band.
        let g = rmat(RmatParams::erdos_renyi(11, 8), 9);
        let r = jp_ordered(&g, JpVariant::SmallestDegreeLast, 3, 10_000);
        verify_coloring(&g, &r.colors).unwrap();
        let sdl = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::SmallestDegreeLast);
        assert!(
            r.num_colors <= sdl.num_colors + 3,
            "JP-SL {} vs sequential SDL {}",
            r.num_colors,
            sdl.num_colors
        );
    }

    #[test]
    fn better_orderings_do_not_hurt_quality_on_skewed_graphs() {
        let g = rmat(RmatParams::skewed(11, 10), 21);
        let rand = jp_ordered(&g, JpVariant::Random, 3, 10_000);
        let llf = jp_ordered(&g, JpVariant::LargestLogDegreeFirst, 3, 10_000);
        let sl = jp_ordered(&g, JpVariant::SmallestDegreeLast, 3, 10_000);
        assert!(
            llf.num_colors <= rand.num_colors + 1,
            "LLF {} vs random {}",
            llf.num_colors,
            rand.num_colors
        );
        assert!(
            sl.num_colors <= rand.num_colors + 1,
            "SL {} vs random {}",
            sl.num_colors,
            rand.num_colors
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(600, 3600, 11);
        let a = jp_ordered(&g, JpVariant::LargestLogDegreeFirst, 5, 10_000);
        let b = jp_ordered(&g, JpVariant::LargestLogDegreeFirst, 5, 10_000);
        assert_eq!(a.colors, b.colors);
    }

    #[test]
    fn empty_graph() {
        let r = jp_ordered(&Csr::empty(0), JpVariant::Random, 1, 10);
        assert_eq!(r.num_colors, 0);
        assert_eq!(r.rounds, 0);
    }
}

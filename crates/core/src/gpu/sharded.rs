//! Sharded multi-device speculative-greedy coloring.
//!
//! The paper's schemes (§III, Alg. 4/5) are single-device; this module
//! scales them across P modeled devices the way Bogle & Slota ("Parallel
//! Graph Coloring Algorithms for Distributed GPU Environments", 2021)
//! extend speculative greedy to partitioned graphs:
//!
//! 1. **Partition** — the CSR graph is split into P contiguous shards
//!    (reusing [`Partitioning`]), each extended with read-only *ghost*
//!    copies of its out-of-shard neighbors ([`Shard`]).
//! 2. **Local speculation** — every device runs the *unmodified* scheme on
//!    its local subgraph. Interior vertices are final; boundary vertices
//!    (and the ghost copies) are speculative, because each device guessed
//!    its neighbors' colors independently.
//! 3. **Boundary exchange rounds** — devices exchange boundary colors
//!    (the replicated *ghost-color frontier*, charged as modeled
//!    device-to-device transfers), detect cross-shard conflicts against
//!    it, and recolor the losing endpoints with the same speculate/detect
//!    kernels the single-device schemes use — until no cut edge is
//!    monochromatic. Rokos et al. (2015) show this conflict-resolution
//!    loop is where scalability is won or lost; here it only ever touches
//!    boundary vertices, so its cost shrinks with the cut.
//!
//! The cross-shard tie-break is global-id based (the larger global id
//! yields), so both owners of a cut edge reach the same verdict without
//! communicating — exactly one side recolors.
//!
//! With one shard the local subgraph *is* the input graph and there are no
//! ghosts, so the result is label-identical to the single-device driver —
//! the anchor the differential test suite pins down.
//!
//! **Profile semantics.** Devices run concurrently, so the merged
//! [`RunProfile`] records each stage at its *critical path* (max over
//! devices) as a `Host` phase, plus one `Transfer` phase per exchange
//! round carrying the ghost-frontier bytes (`4 * total_ghosts`). Under
//! `ExecMode::Deterministic` on the SIMT backend every number is
//! bit-stable — the golden sharded fingerprints rely on that.

use super::{pass_marker, speculative_first_fit, GpuGraph, SpecGreedyDriver};
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::partition::{Partitioning, Shard};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, Kernel, KernelCtx, RunProfile, ShardedBackend};

/// Clears `colored` for every owned vertex whose color collides with a
/// ghost neighbor of smaller global id. Both shards sharing a cut edge
/// apply the same rule to their own endpoint, so exactly one of them
/// recolors.
struct CrossDetect {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    conflict: Buffer<u32>,
    gid: Buffer<u32>,
    num_owned: u32,
}

impl Kernel for CrossDetect {
    fn name(&self) -> &'static str {
        "shard-cross-detect"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v >= self.num_owned {
            return;
        }
        let cv = t.ld(self.color, v as usize);
        let start = self.g.load_r(t, v as usize, false) as usize;
        let end = self.g.load_r(t, v as usize + 1, false) as usize;
        for e in start..end {
            let w = self.g.load_c(t, e, false);
            t.alu(3); // ghost test, color compare, loop bookkeeping
            if w >= self.num_owned
                && cv == t.ld(self.color, w as usize)
                && t.ld(self.gid, v as usize) > t.ld(self.gid, w as usize)
            {
                t.st(self.colored, v as usize, 0);
                t.st(self.conflict, 0, 1);
                return; // first conflict suffices
            }
        }
    }
}

/// Speculatively recolors every conflicted owned vertex: first-fit over
/// the local colors with the ghost frontier included, exactly the inner
/// loop of the paper's Alg. 4 speculation kernel.
struct ShardRecolor {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    changed: Buffer<u32>,
    pass: u32,
    num_owned: u32,
}

impl Kernel for ShardRecolor {
    fn name(&self) -> &'static str {
        "shard-recolor"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v >= self.num_owned {
            return;
        }
        t.alu(2);
        if t.ld(self.colored, v as usize) != 0 {
            return;
        }
        let marker = pass_marker(self.pass, self.g.n, v);
        let c = speculative_first_fit(t, &self.g, self.color, v, marker, false);
        t.st_warp(self.color, v as usize, c);
        t.st(self.colored, v as usize, 1);
        t.st(self.changed, 0, 1);
    }
}

/// Detects conflicts among concurrently recolored *owned* vertices
/// (owned-owned edges only; cut edges are [`CrossDetect`]'s job, and the
/// ghost frontier never changes mid-round).
struct OwnedDetect {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    num_owned: u32,
}

impl Kernel for OwnedDetect {
    fn name(&self) -> &'static str {
        "shard-owned-detect"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v >= self.num_owned {
            return;
        }
        let cv = t.ld(self.color, v as usize);
        if cv == 0 {
            return;
        }
        let start = self.g.load_r(t, v as usize, false) as usize;
        let end = self.g.load_r(t, v as usize + 1, false) as usize;
        for e in start..end {
            let w = self.g.load_c(t, e, false);
            t.alu(3);
            if w < self.num_owned && v < w && cv == t.ld(self.color, w as usize) {
                t.st(self.colored, v as usize, 0);
                return;
            }
        }
    }
}

/// One device's exchange-round state: the shard, its driver (device
/// memory + profile) and the resident buffers.
struct ShardState<'b, B: Backend> {
    shard: Shard,
    d: SpecGreedyDriver<'b, B>,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    changed: Buffer<u32>,
    conflict: Buffer<u32>,
    gid: Buffer<u32>,
    /// Monotone pass counter, so recolor markers stay distinct across
    /// exchange rounds (see [`pass_marker`]).
    pass_base: u32,
}

impl<'b, B: Backend> ShardState<'b, B> {
    /// Runs the intra-shard speculate/detect loop over the currently
    /// uncolored owned vertices until it converges locally. Returns the
    /// number of passes.
    fn recolor_to_local_fixpoint(&mut self) -> Result<usize, ColorError> {
        let gg = self.d.gg;
        let (color, colored, changed) = (self.color, self.colored, self.changed);
        let (num_owned, base) = (self.shard.num_owned as u32, self.pass_base);
        let n_local = self.shard.num_local();
        let passes = self.d.run_passes(|d, pass| {
            d.mem.store(changed, 0, 0);
            d.launch(
                n_local,
                &ShardRecolor {
                    g: gg,
                    color,
                    colored,
                    changed,
                    pass: base + pass,
                    num_owned,
                },
            );
            d.launch(
                n_local,
                &OwnedDetect {
                    g: gg,
                    color,
                    colored,
                    num_owned,
                },
            );
            d.read_flag("recolor changed flag d2h", changed) != 0
        })?;
        self.pass_base += passes as u32;
        Ok(passes)
    }
}

/// Colors `g` with `scheme` across the fleet's devices: partition, local
/// speculation per shard, then ghost-frontier exchange rounds until no
/// cut edge is monochromatic.
///
/// `Coloring::iterations` is the slowest device's local iteration count
/// plus the number of exchange rounds. Exceeding
/// [`ColorOptions::max_iterations`] exchange rounds yields
/// [`ColorError::MaxIterations`].
pub fn color_sharded<B: Backend>(
    scheme: Scheme,
    g: &Csr,
    fleet: &ShardedBackend<B>,
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    let n = g.num_vertices();
    let plan = Partitioning::contiguous(g, fleet.num_devices());
    let shards = plan.extract_shards(g);
    // Tiny graphs can yield fewer shards than devices; the surplus
    // devices simply idle.
    let p_count = shards.len();
    let mut profile = RunProfile::new();

    // Phase 1+2: independent local speculation per device. Sequential
    // here, concurrent on real hardware — accounted at critical path.
    let mut global_colors = vec![0u32; n];
    let mut local_colorings = Vec::with_capacity(p_count);
    let mut local_ms = 0.0f64;
    let mut local_iters = 0usize;
    for (p, shard) in shards.iter().enumerate() {
        let r = scheme.try_color_on(fleet.device(p), &shard.graph, opts)?;
        let owned = shard.owned_start as usize;
        global_colors[owned..owned + shard.num_owned].copy_from_slice(&r.colors[..shard.num_owned]);
        local_ms = local_ms.max(r.total_ms());
        local_iters = local_iters.max(r.iterations);
        local_colorings.push(r.colors);
    }
    profile.host(
        format!("sharded local coloring: critical path over {p_count} device(s)"),
        local_ms,
    );

    let total_ghosts: usize = shards.iter().map(|s| s.ghost_gids.len()).sum();
    let finish = |profile: RunProfile, colors: Vec<u32>, iterations: usize| {
        let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
        Ok(Coloring {
            scheme,
            colors,
            num_colors,
            iterations,
            profile,
        })
    };
    if total_ghosts == 0 {
        // One shard (or a cut-free partition): the local colorings are
        // already globally proper and label-identical to the
        // single-device driver.
        return finish(profile, global_colors, local_iters);
    }

    // Device-resident exchange state: local graph, colors (owned from the
    // local run, ghosts filled by the first frontier push), global-id map.
    let mut states: Vec<ShardState<'_, B>> = Vec::with_capacity(p_count);
    for (p, shard) in shards.into_iter().enumerate() {
        let mut d = SpecGreedyDriver::new(fleet.device(p), scheme, &shard.graph, opts);
        let color = d.alloc_vertex_buf();
        let colored = d.alloc_vertex_buf();
        let changed = d.alloc_flag();
        let conflict = d.alloc_flag();
        d.label(color, "shard-color");
        d.label(colored, "shard-colored");
        d.label(changed, "shard-changed");
        d.label(conflict, "shard-conflict");
        let gids: Vec<u32> = (0..shard.num_local() as u32)
            .map(|l| shard.global_of(l))
            .collect();
        let gid = d.mem.alloc_from_slice(&gids);
        d.label(gid, "shard-gid");
        d.mem.write_slice(color, &local_colorings[p]);
        d.mem.fill(colored, 1u32);
        states.push(ShardState {
            shard,
            d,
            color,
            colored,
            changed,
            conflict,
            gid,
            pass_base: 0,
        });
    }

    let frontier_bytes = 4 * total_ghosts;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > opts.max_iterations {
            return Err(ColorError::MaxIterations {
                scheme,
                limit: opts.max_iterations,
            });
        }

        // Push the ghost-color frontier to every replica (d2d).
        fleet.exchange(
            "ghost frontier exchange (d2d)",
            frontier_bytes,
            &mut profile,
        );
        for st in &mut states {
            for (k, &gg) in st.shard.ghost_gids.iter().enumerate() {
                st.d.mem
                    .store(st.color, st.shard.num_owned + k, global_colors[gg as usize]);
            }
        }

        // Detect cross-shard conflicts against the frontier.
        let round_t0: Vec<f64> = states.iter().map(|s| s.d.profile.total_ms()).collect();
        let mut conflicted = vec![false; p_count];
        for st in states.iter_mut() {
            st.d.mem.store(st.conflict, 0, 0);
            st.d.launch(
                st.shard.num_local(),
                &CrossDetect {
                    g: st.d.gg,
                    color: st.color,
                    colored: st.colored,
                    conflict: st.conflict,
                    gid: st.gid,
                    num_owned: st.shard.num_owned as u32,
                },
            );
        }
        for (p, st) in states.iter_mut().enumerate() {
            conflicted[p] = st.d.read_flag("cross-conflict flag d2h", st.conflict) != 0;
        }

        // Recolor the losing endpoints to a local fixpoint.
        let any = conflicted.iter().any(|&c| c);
        if any {
            for (p, st) in states.iter_mut().enumerate() {
                if conflicted[p] {
                    st.recolor_to_local_fixpoint()?;
                }
            }
        }
        let round_ms = states
            .iter()
            .zip(&round_t0)
            .map(|(s, t0)| s.d.profile.total_ms() - t0)
            .fold(0.0f64, f64::max);
        profile.host(
            format!(
                "exchange round {rounds}: detect+recolor critical path over {p_count} device(s)"
            ),
            round_ms,
        );
        if !any {
            break;
        }

        // Publish the (possibly) updated owned colors into the global
        // frontier for the next round's push.
        for st in &states {
            let owned = st.shard.owned_start as usize;
            let local = st.d.mem.read_vec(st.color);
            global_colors[owned..owned + st.shard.num_owned]
                .copy_from_slice(&local[..st.shard.num_owned]);
        }
    }

    finish(profile, global_colors, local_iters + rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi};
    use gcol_simt::{Device, ExecMode, NativeBackend, SimtBackend};

    fn simt_fleet(dev: &Device, p: usize) -> ShardedBackend<SimtBackend<'_>> {
        ShardedBackend::uniform(p, |_| SimtBackend::new(dev, ExecMode::Deterministic))
    }

    #[test]
    fn sharded_topo_is_proper_across_shard_counts() {
        let dev = Device::tiny();
        let g = erdos_renyi(500, 3000, 13);
        let opts = ColorOptions::default();
        for p in [1, 2, 3, 5] {
            let r = color_sharded(Scheme::TopoBase, &g, &simt_fleet(&dev, p), &opts).unwrap();
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("P={p}: {e}"));
            assert!(r.num_colors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn one_shard_is_label_identical_to_single_device() {
        let dev = Device::tiny();
        let g = erdos_renyi(400, 2400, 5);
        let opts = ColorOptions::default();
        let single = Scheme::DataBase.try_color(&g, &dev, &opts).unwrap();
        let sharded = color_sharded(Scheme::DataBase, &g, &simt_fleet(&dev, 1), &opts).unwrap();
        assert_eq!(single.colors, sharded.colors);
        assert_eq!(single.iterations, sharded.iterations);
    }

    #[test]
    fn sharded_profile_records_exchange_transfers() {
        let dev = Device::tiny();
        // A cycle cut into 3 shards always has 6 cut endpoints → ghosts.
        let g = cycle(90);
        let opts = ColorOptions::default();
        let r = color_sharded(Scheme::TopoBase, &g, &simt_fleet(&dev, 3), &opts).unwrap();
        verify_coloring(&g, &r.colors).unwrap();
        let xfer_bytes: usize = r
            .profile
            .phases
            .iter()
            .filter_map(|p| match p {
                gcol_simt::Phase::Transfer { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        // 6 ghosts * 4 bytes per exchange round, at least one round.
        assert!(xfer_bytes >= 24, "no d2d frontier traffic recorded");
        assert!(r.profile.host_ms() > 0.0, "no critical-path phases");
    }

    #[test]
    fn deterministic_sharded_runs_are_reproducible() {
        let dev = Device::tiny();
        let g = erdos_renyi(600, 4200, 2);
        let opts = ColorOptions::default();
        let a = color_sharded(Scheme::TopoLdg, &g, &simt_fleet(&dev, 4), &opts).unwrap();
        let b = color_sharded(Scheme::TopoLdg, &g, &simt_fleet(&dev, 4), &opts).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.total_ms().to_bits(), b.total_ms().to_bits());
    }

    #[test]
    fn complete_graph_forces_exchange_rounds() {
        // Every cut edge of K24 is monochromatic-prone: shard-local
        // speculation reuses low colors on both devices, so the exchange
        // loop must do real recoloring work.
        let dev = Device::tiny();
        let g = complete(24);
        let opts = ColorOptions::default();
        let r = color_sharded(Scheme::DataBase, &g, &simt_fleet(&dev, 2), &opts).unwrap();
        verify_coloring(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, 24);
    }

    #[test]
    fn native_fleet_matches_simt_properness() {
        let g = erdos_renyi(800, 5600, 21);
        let fleet = ShardedBackend::uniform(4, |_| NativeBackend::new());
        let opts = ColorOptions::default();
        for scheme in [Scheme::TopoBase, Scheme::CsrColor] {
            let r = color_sharded(scheme, &g, &fleet, &opts).unwrap();
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        }
    }

    #[test]
    fn more_shards_than_vertices() {
        let dev = Device::tiny();
        let g = cycle(5);
        let r = color_sharded(
            Scheme::TopoBase,
            &g,
            &simt_fleet(&dev, 16),
            &ColorOptions::default(),
        )
        .unwrap();
        verify_coloring(&g, &r.colors).unwrap();
    }

    #[test]
    fn empty_graph() {
        let dev = Device::tiny();
        let r = color_sharded(
            Scheme::DataBase,
            &Csr::empty(0),
            &simt_fleet(&dev, 4),
            &ColorOptions::default(),
        )
        .unwrap();
        assert!(r.colors.is_empty());
        assert_eq!(r.num_colors, 0);
    }
}

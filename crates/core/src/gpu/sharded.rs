//! Sharded multi-device speculative-greedy coloring.
//!
//! The paper's schemes (§III, Alg. 4/5) are single-device; this module
//! scales them across P modeled devices the way Bogle & Slota ("Parallel
//! Graph Coloring Algorithms for Distributed GPU Environments", 2021)
//! extend speculative greedy to partitioned graphs:
//!
//! 1. **Partition** — the CSR graph is split into P contiguous shards
//!    (reusing [`Partitioning`]), each extended with read-only *ghost*
//!    copies of its out-of-shard neighbors ([`Shard`]), and each owned
//!    vertex classed *boundary* (has a ghost neighbor; listed in
//!    [`Shard::boundary_locals`]) or *interior*.
//! 2. **Local speculation** — every device runs the *unmodified* scheme on
//!    its **owned subgraph** ([`Shard::owned_subgraph`]): interior
//!    vertices see every neighbor and are final; boundary vertices
//!    speculate without their ghosts and get checked by the first
//!    exchange round. Coloring the ghost replicas too (as a naive port
//!    would) costs nearly a full-graph pass per device and buys almost
//!    nothing — the replicas' guessed colors rarely match their owners' —
//!    so the local phase here scales with the shard, not the halo.
//! 3. **Boundary exchange rounds** — devices exchange boundary colors
//!    (the replicated *ghost-color frontier*), detect cross-shard
//!    conflicts against it over the **dirty-adjacent worklist only**, and
//!    recolor each losing endpoint *in place* inside the detect kernel
//!    (`CrossResolve`), then settle intra-shard collisions among the
//!    fresh recolors with a stamp-scoped resolve loop (`OwnedResolve`)
//!    — until no cut edge is monochromatic. Both kernels and the
//!    fixpoint loop live in the extracted [`super::repair`] engine,
//!    which the incremental-recoloring path shares. Rokos et al. show
//!    this conflict-resolution loop is where scalability is won or lost;
//!    here every sweep is sized to the worklist, so its cost shrinks
//!    with the cut.
//!
//! The cross-shard tie-break is global-id based (the larger global id
//! yields), so both owners of a cut edge reach the same verdict without
//! communicating — exactly one side recolors.
//!
//! Two decorrelation tricks keep the round count down. First, each
//! shard's local palette is *rotated* by a shard-dependent offset before
//! the first exchange — a free host-side permutation (properness and
//! color count are invariant under color permutation) that spreads the
//! shards' heavy first-fit color classes apart, so far fewer cut edges
//! enter round 1 monochromatic. Second, exchange-round recolors start
//! their first-fit scan at a per-(vertex, pass) *jittered* color (see
//! `JITTER_SPAN`), so concurrent recolors on opposite sides of a cut
//! rarely re-collide. Neither trick is applied at P = 1.
//!
//! With one shard the local subgraph *is* the input graph and there are no
//! ghosts, so the result is label-identical to the single-device driver —
//! the anchor the differential test suite pins down.
//!
//! ## Frontier compression and dirty scoping
//!
//! Every round the driver diffs each device's incoming frontier against a
//! host mirror of what that device last received. The resulting *dirty
//! set* (ghosts whose color actually changed) drives three things:
//!
//! * **The wire frame** ([`ExchangeKind`]): dense ships all `G_p` ghost
//!   colors at 4 bytes each every round; the default delta encoding ships
//!   a dirty bitmask plus only the changed colors, with a dense fallback
//!   so a frame never costs more than dense and full frame elision when
//!   nothing changed. The encodings decode to identical ghost colors, so
//!   **labels are identical under either kind** — only wire bytes and the
//!   copy-readiness model (below) differ.
//! * **The scoped cross-detect**: only owned vertices adjacent to a dirty
//!   ghost get a detect thread. Sound by induction: at the end of a round
//!   every shard is cross-clean against the frontier it saw — recolored
//!   vertices picked colors avoiding all their ghosts, kept vertices
//!   either differed or held the smaller global id — so a vertex none of
//!   whose ghosts changed cannot newly conflict. An empty dirty set skips
//!   the detect (and its flag read-back) entirely.
//! * **The resolve fixpoint's scope**: a just-recolored vertex avoided
//!   every neighbor color it could see, so new intra-shard conflicts only
//!   arise between *concurrently* recolored pairs. Every recolor stamps
//!   its vertex with the pass number and `OwnedResolve` only rescans
//!   worklist vertices carrying the current stamp — pass two onward
//!   touches a few adjacency rows instead of the whole shard.
//!
//! All three scopes shrink *work*, never the outcome: the conflicts found
//! at each step are identical to exhaustive detection over the same
//! color state.
//!
//! ## Exchange/compute overlap
//!
//! Devices run concurrently and each owns an independent inbound link
//! (a [`CopyStream`]). A round's frontier copy into device `p` is
//! enqueued once the devices whose colors the frame actually carries have
//! published — every ghost owner for a dense frame, only the dirty
//! ghosts' owners for a delta frame — and lands after the link cost
//! ([`ShardedBackend::link_cost_ms`]); device `p` starts its detect at
//! `max(own clock, landing time)`. A straggler device therefore hides the
//! frontier transfer entirely behind its own compute — this is how
//! interior coloring overlaps the boundary exchange — and only each
//! link's non-overlapped tail lands on the critical path. Delta frames
//! sourced from fast devices dodge the fleet-wide straggler barrier the
//! dense push pays every round.
//!
//! ## Launch geometry
//!
//! Every exchange-round kernel launches with the same grid the local
//! coloring used (one thread per *local* vertex, surplus threads exit on
//! a worklist bound). Matching the local geometry keeps the occupancy —
//! and with it the modeled latency hiding — of the exchange kernels
//! identical to the phase the timing model was validated on, while the
//! worklists shrink the memory traffic to the scoped subsets above.
//!
//! **Profile semantics.** The merged [`RunProfile`] telescopes the fleet's
//! virtual clocks into checkpoints: one `Host` phase for local coloring
//! (critical path over devices), then per round one `Transfer` phase
//! carrying the round's total wire bytes and the *exposed* (non-hidden)
//! transfer time, and one `Host` phase with the detect+recolor critical
//! path. Phase durations sum to the fleet's final clock. Backends without
//! a modeled interconnect (the native path) record no `Transfer` phases.
//! Under `ExecMode::Deterministic` on the SIMT backend every number is
//! bit-stable — the golden sharded fingerprints rely on that.

use super::frontier::{ExchangeKind, FrontierFrame};
use super::repair::{RepairEngine, JITTER_SPAN};
use super::SpecGreedyDriver;
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::partition::{Partitioning, Shard};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, CopyStream, RunProfile, ShardedBackend};

/// One device's exchange-round state: the shard, its driver (device
/// memory + profile), the repair engine wrapping the resident buffers,
/// and the host-side mirror of the last frontier it received (the delta
/// encoder's reference frame). The detect/resolve kernels themselves —
/// `CrossResolve` for the ghost-edge losers, `OwnedResolve` for the
/// stamp-scoped intra-shard fixpoint — live in [`super::repair`], where
/// the incremental-recoloring path shares them.
struct ShardState<'b, B: Backend> {
    shard: Shard,
    d: SpecGreedyDriver<'b, B>,
    /// The conflict-repair engine: color/stamp/flag/worklist buffers plus
    /// the monotone pass counter that keeps recolor markers distinct
    /// across exchange rounds.
    repair: RepairEngine,
    gid: Buffer<u32>,
    /// Ghost colors as last received, `u32::MAX`-seeded so the first
    /// round's dirty set covers every ghost.
    prev_frontier: Vec<u32>,
    /// Owning partition of each ghost (for copy-readiness: a frame waits
    /// only for the devices whose colors it carries).
    ghost_owner: Vec<u32>,
}

/// Colors `g` with `scheme` across the fleet's devices: partition, local
/// speculation per shard, then ghost-frontier exchange rounds (encoded
/// per [`ColorOptions::exchange`]) until no cut edge is monochromatic.
///
/// `Coloring::iterations` is the slowest device's local iteration count
/// plus the number of exchange rounds. Exceeding
/// [`ColorOptions::max_iterations`] exchange rounds yields
/// [`ColorError::MaxIterations`].
pub fn color_sharded<B: Backend>(
    scheme: Scheme,
    g: &Csr,
    fleet: &ShardedBackend<B>,
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    let n = g.num_vertices();
    let plan = Partitioning::contiguous(g, fleet.num_devices());
    let shards = plan.extract_shards(g);
    // Tiny graphs can yield fewer shards than devices; the surplus
    // devices simply idle.
    let p_count = shards.len();
    let mut profile = RunProfile::new();

    let total_ghosts: usize = shards.iter().map(|s| s.ghost_gids.len()).sum();

    // Phase 1+2: independent local speculation per device. Sequential
    // here, concurrent on real hardware — each device gets its own
    // virtual clock, merged into the profile at critical path.
    let mut global_colors = vec![0u32; n];
    let mut local_colorings = Vec::with_capacity(p_count);
    let mut clock = vec![0.0f64; p_count];
    let mut local_iters = 0usize;
    for (p, shard) in shards.iter().enumerate() {
        let r = scheme.try_color_on(fleet.device(p), &shard.owned_subgraph(), opts)?;
        clock[p] = r.total_ms();
        local_iters = local_iters.max(r.iterations);
        let mut colors = r.colors;
        // Every shard's first-fit piles its mass onto the same few low
        // colors, so without intervention nearly every cut edge enters
        // round 1 monochromatic. Rotating each shard's palette by a
        // shard-dependent offset is a free host-side permutation — it
        // preserves properness and the color count exactly — that
        // spreads the shards' heavy color classes apart and collapses
        // the round-1 conflict churn. Skipped when there are no ghosts
        // (P = 1 stays label-identical to the single-device driver).
        let m = r.num_colors as u32;
        if total_ghosts > 0 && m > 1 {
            let rot = (p as u32 * m) / p_count as u32;
            if rot > 0 {
                for c in colors.iter_mut() {
                    *c = (*c - 1 + rot) % m + 1;
                }
            }
        }
        let owned = shard.owned_start as usize;
        global_colors[owned..owned + shard.num_owned].copy_from_slice(&colors[..shard.num_owned]);
        local_colorings.push(colors);
    }
    let mut checkpoint = clock.iter().fold(0.0f64, |a, &b| a.max(b));
    profile.host(
        format!("sharded local coloring: critical path over {p_count} device(s)"),
        checkpoint,
    );

    let finish = |profile: RunProfile, colors: Vec<u32>, iterations: usize| {
        let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
        Ok(Coloring {
            scheme,
            colors,
            num_colors,
            iterations,
            profile,
        })
    };
    if total_ghosts == 0 {
        // One shard (or a cut-free partition): the local colorings are
        // already globally proper and label-identical to the
        // single-device driver.
        return finish(profile, global_colors, local_iters);
    }

    // Device-resident exchange state: local graph, colors (owned from the
    // local run, ghosts filled by the first frontier push), global-id
    // map, boundary worklist.
    let mut states: Vec<ShardState<'_, B>> = Vec::with_capacity(p_count);
    for (p, shard) in shards.into_iter().enumerate() {
        let mut d = SpecGreedyDriver::new(fleet.device(p), scheme, &shard.graph, opts);
        let color = d.alloc_vertex_buf();
        let flags = d.mem.alloc::<u32>(2);
        d.label(color, "shard-color");
        d.label(flags, "shard-exchange-flags");
        let stamp = d.alloc_vertex_buf();
        d.label(stamp, "shard-recolor-stamp");
        let gids: Vec<u32> = (0..shard.num_local() as u32)
            .map(|l| shard.global_of(l))
            .collect();
        let gid = d.mem.alloc_from_slice(&gids);
        d.label(gid, "shard-gid");
        // Worklist capacity: every dirty-adjacent set is a subset of the
        // boundary. Uninitialized on purpose — the sanitizer then proves
        // CrossResolve never reads past the prefix the round wrote.
        // Padded so the buffer exists even for an all-interior shard
        // (which never launches CrossResolve).
        let worklist = d
            .mem
            .alloc_uninit::<u32>(shard.boundary_locals.len().max(1));
        d.label(worklist, "shard-dirty-worklist");
        d.mem.write_slice(color, &local_colorings[p]);
        let prev_frontier = vec![u32::MAX; shard.ghost_gids.len()];
        let ghost_owner: Vec<u32> = shard
            .ghost_gids
            .iter()
            .map(|&gv| plan.part_of[gv as usize])
            .collect();
        let repair = RepairEngine::from_parts(
            color,
            stamp,
            flags,
            worklist,
            shard.num_owned as u32,
            shard.num_local(),
            JITTER_SPAN,
        );
        states.push(ShardState {
            shard,
            d,
            repair,
            gid,
            prev_frontier,
            ghost_owner,
        });
    }

    let kind: ExchangeKind = opts.exchange;
    // Whether the fleet models an interconnect at all (the native path
    // does not, and records no Transfer phases — shards share one address
    // space there).
    let modeled = fleet.link_cost_ms(0, 1).is_some();
    let mut streams = vec![CopyStream::new(); p_count];
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > opts.max_iterations {
            return Err(ColorError::MaxIterations {
                scheme,
                limit: opts.max_iterations,
            });
        }

        // Diff each device's incoming frontier against the mirror of what
        // it last received. The dirty set drives the wire frame, the
        // copy-readiness, and the scoped detect below.
        let mut frames: Vec<FrontierFrame> = Vec::with_capacity(p_count);
        let mut dirty_sets: Vec<Vec<usize>> = Vec::with_capacity(p_count);
        let mut round_bytes = 0usize;
        for st in &states {
            let cur: Vec<u32> = st
                .shard
                .ghost_gids
                .iter()
                .map(|&gv| global_colors[gv as usize])
                .collect();
            let dirty: Vec<usize> = (0..cur.len())
                .filter(|&k| cur[k] != st.prev_frontier[k])
                .collect();
            let frame = kind.encode(&cur, &st.prev_frontier);
            round_bytes += frame.wire_bytes();
            frames.push(frame);
            dirty_sets.push(dirty);
        }

        // Issue the copies on each device's inbound stream. A frame is
        // enqueued once the devices whose colors it carries have
        // published — every ghost owner for a dense frame, only the dirty
        // ghosts' owners for a delta one — and the receiver begins its
        // detect at max(own clock, landing time), so the copy hides
        // behind whatever compute the receiver still has in flight.
        let mut begin = clock.clone();
        for p in 0..p_count {
            let bytes = frames[p].wire_bytes();
            if bytes == 0 {
                continue;
            }
            if let Some(cost) = fleet.link_cost_ms(p, bytes) {
                let owners = &states[p].ghost_owner;
                let ready = match &frames[p] {
                    // A dense payload carries every ghost's color.
                    FrontierFrame::Dense { .. } => owners
                        .iter()
                        .map(|&q| clock[q as usize])
                        .fold(0.0f64, f64::max),
                    FrontierFrame::Delta { .. } => dirty_sets[p]
                        .iter()
                        .map(|&k| clock[owners[k] as usize])
                        .fold(0.0f64, f64::max),
                    FrontierFrame::Empty { .. } => unreachable!("empty frames have no bytes"),
                };
                let landed = streams[p].issue(ready, cost);
                begin[p] = begin[p].max(landed);
            }
        }
        let barrier = begin.iter().fold(checkpoint, |a, &b| a.max(b));
        if modeled && round_bytes > 0 {
            // Only the exposed tail (past the previous checkpoint) costs
            // critical-path time; the bytes are the full wire traffic.
            profile.transfer(
                format!("ghost frontier exchange ({kind}, d2d)"),
                round_bytes,
                barrier - checkpoint,
            );
        }

        // Apply the frames and detect cross-shard conflicts over the
        // dirty-adjacent worklists. A clean frontier skips the detect and
        // its flag read-back entirely (see module docs for soundness).
        let snap: Vec<f64> = states.iter().map(|s| s.d.profile.total_ms()).collect();
        let mut conflicted = vec![false; p_count];
        for (p, st) in states.iter_mut().enumerate() {
            let dirty = &dirty_sets[p];
            if dirty.is_empty() {
                continue;
            }
            let num_owned = st.shard.num_owned;
            frames[p].apply(&mut st.prev_frontier);
            for &k in dirty {
                // Untouched ghost slots already hold their color.
                st.d.mem
                    .store(st.repair.color, num_owned + k, st.prev_frontier[k]);
            }
            // Owned vertices adjacent to a dirty ghost — the only ones a
            // frontier change can newly conflict. The ghost rows of the
            // local CSR are exactly the ghost→owned adjacency.
            let mut seen = vec![false; num_owned];
            let mut affected: Vec<u32> = Vec::new();
            for &k in dirty {
                for &v in st.shard.graph.neighbors((num_owned + k) as u32) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        affected.push(v);
                    }
                }
            }
            if affected.is_empty() {
                continue;
            }
            affected.sort_unstable();
            st.d.mem.write_slice(st.repair.worklist, &affected);
            // Fused verdict + fixpoint: one 8-byte read per pass covers
            // the cross flag and the recolor loop's continue signal.
            conflicted[p] =
                st.repair
                    .repair_ghost_conflicts(&mut st.d, st.gid, affected.len() as u32)?;
        }
        let any = conflicted.iter().any(|&c| c);

        // Advance the virtual clocks: each device's detect+recolor work
        // starts where its frontier landed.
        for (p, st) in states.iter().enumerate() {
            let spent = st.d.profile.total_ms() - snap[p];
            clock[p] = begin[p] + spent;
        }
        let done = clock.iter().fold(barrier, |a, &b| a.max(b));
        profile.host(
            format!(
                "exchange round {rounds}: detect+recolor critical path over {p_count} device(s)"
            ),
            done - barrier,
        );
        checkpoint = done;
        if !any {
            break;
        }

        // Publish the updated owned colors into the global frontier for
        // the next round's push (only conflicted shards recolored).
        for (p, st) in states.iter().enumerate() {
            if !conflicted[p] {
                continue;
            }
            let owned = st.shard.owned_start as usize;
            let local = st.d.mem.read_vec(st.repair.color);
            global_colors[owned..owned + st.shard.num_owned]
                .copy_from_slice(&local[..st.shard.num_owned]);
        }
    }

    finish(profile, global_colors, local_iters + rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi};
    use gcol_simt::{Device, ExecMode, NativeBackend, Phase, SimtBackend};

    fn simt_fleet(dev: &Device, p: usize) -> ShardedBackend<SimtBackend<'_>> {
        ShardedBackend::uniform(p, |_| SimtBackend::new(dev, ExecMode::Deterministic))
    }

    /// Sum of d2d frontier bytes recorded in a run's profile.
    fn frontier_bytes(r: &Coloring) -> usize {
        r.profile
            .phases
            .iter()
            .filter_map(|p| match p {
                Phase::Transfer { label, bytes, .. } if label.contains("ghost frontier") => {
                    Some(*bytes)
                }
                _ => None,
            })
            .sum()
    }

    #[test]
    fn sharded_topo_is_proper_across_shard_counts() {
        let dev = Device::tiny();
        let g = erdos_renyi(500, 3000, 13);
        let opts = ColorOptions::default();
        for p in [1, 2, 3, 5] {
            let r = color_sharded(Scheme::TopoBase, &g, &simt_fleet(&dev, p), &opts).unwrap();
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("P={p}: {e}"));
            assert!(r.num_colors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn one_shard_is_label_identical_to_single_device() {
        let dev = Device::tiny();
        let g = erdos_renyi(400, 2400, 5);
        let opts = ColorOptions::default();
        let single = Scheme::DataBase.try_color(&g, &dev, &opts).unwrap();
        let sharded = color_sharded(Scheme::DataBase, &g, &simt_fleet(&dev, 1), &opts).unwrap();
        assert_eq!(single.colors, sharded.colors);
        assert_eq!(single.iterations, sharded.iterations);
    }

    #[test]
    fn dense_and_delta_exchanges_are_label_identical() {
        let dev = Device::tiny();
        let g = erdos_renyi(500, 3500, 99);
        for p in [2, 3, 4] {
            let dense = color_sharded(
                Scheme::TopoBase,
                &g,
                &simt_fleet(&dev, p),
                &ColorOptions::default().with_exchange(ExchangeKind::Dense),
            )
            .unwrap();
            let delta = color_sharded(
                Scheme::TopoBase,
                &g,
                &simt_fleet(&dev, p),
                &ColorOptions::default().with_exchange(ExchangeKind::Delta),
            )
            .unwrap();
            assert_eq!(dense.colors, delta.colors, "P={p}");
            assert_eq!(dense.iterations, delta.iterations, "P={p}");
            assert!(
                frontier_bytes(&delta) <= frontier_bytes(&dense),
                "P={p}: delta moved more bytes than dense"
            );
        }
    }

    #[test]
    fn sharded_profile_records_exchange_transfers() {
        let dev = Device::tiny();
        // A cycle cut into 3 shards always has 6 cut endpoints → ghosts.
        let g = cycle(90);
        let r = color_sharded(
            Scheme::TopoBase,
            &g,
            &simt_fleet(&dev, 3),
            &ColorOptions::default().with_exchange(ExchangeKind::Dense),
        )
        .unwrap();
        verify_coloring(&g, &r.colors).unwrap();
        // Dense wire format: every round ships all ghost colors, so the
        // recorded traffic is an exact multiple of the encoding's frame
        // size (6 ghosts across the fleet, 4 bytes each).
        let per_round: usize = 4 * 6;
        let bytes = frontier_bytes(&r);
        assert!(bytes >= per_round, "no d2d frontier traffic recorded");
        assert_eq!(
            bytes % per_round,
            0,
            "dense rounds must ship whole frontiers ({bytes} bytes vs {per_round}/round)"
        );
        assert!(r.profile.host_ms() > 0.0, "no critical-path phases");
    }

    #[test]
    fn delta_frames_shrink_after_the_first_round() {
        let dev = Device::tiny();
        // K24 over 2 shards forces several exchange rounds with real
        // recoloring; after round 1 only the recolored boundary subset is
        // dirty, so delta traffic must undercut dense.
        let g = complete(24);
        let dense = color_sharded(
            Scheme::DataBase,
            &g,
            &simt_fleet(&dev, 2),
            &ColorOptions::default().with_exchange(ExchangeKind::Dense),
        )
        .unwrap();
        let delta = color_sharded(
            Scheme::DataBase,
            &g,
            &simt_fleet(&dev, 2),
            &ColorOptions::default().with_exchange(ExchangeKind::Delta),
        )
        .unwrap();
        assert_eq!(dense.colors, delta.colors);
        assert!(dense.iterations > 1, "test needs multiple exchange rounds");
        assert!(
            frontier_bytes(&delta) < frontier_bytes(&dense),
            "delta ({}) should undercut dense ({}) on a multi-round run",
            frontier_bytes(&delta),
            frontier_bytes(&dense)
        );
    }

    #[test]
    fn deterministic_sharded_runs_are_reproducible() {
        let dev = Device::tiny();
        let g = erdos_renyi(600, 4200, 2);
        let opts = ColorOptions::default();
        let a = color_sharded(Scheme::TopoLdg, &g, &simt_fleet(&dev, 4), &opts).unwrap();
        let b = color_sharded(Scheme::TopoLdg, &g, &simt_fleet(&dev, 4), &opts).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.total_ms().to_bits(), b.total_ms().to_bits());
    }

    #[test]
    fn complete_graph_forces_exchange_rounds() {
        // Every cut edge of K24 is monochromatic-prone: shard-local
        // speculation reuses low colors on both devices, so the exchange
        // loop must do real recoloring work.
        let dev = Device::tiny();
        let g = complete(24);
        let opts = ColorOptions::default();
        let r = color_sharded(Scheme::DataBase, &g, &simt_fleet(&dev, 2), &opts).unwrap();
        verify_coloring(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, 24);
    }

    #[test]
    fn native_fleet_matches_simt_properness() {
        let g = erdos_renyi(800, 5600, 21);
        let fleet = ShardedBackend::uniform(4, |_| NativeBackend::new());
        let opts = ColorOptions::default();
        for scheme in [Scheme::TopoBase, Scheme::CsrColor] {
            let r = color_sharded(scheme, &g, &fleet, &opts).unwrap();
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            // No modeled interconnect → no Transfer phases on the host path.
            assert_eq!(frontier_bytes(&r), 0);
        }
    }

    #[test]
    fn more_shards_than_vertices() {
        let dev = Device::tiny();
        let g = cycle(5);
        let r = color_sharded(
            Scheme::TopoBase,
            &g,
            &simt_fleet(&dev, 16),
            &ColorOptions::default(),
        )
        .unwrap();
        verify_coloring(&g, &r.colors).unwrap();
    }

    #[test]
    fn empty_graph() {
        let dev = Device::tiny();
        let r = color_sharded(
            Scheme::DataBase,
            &Csr::empty(0),
            &simt_fleet(&dev, 4),
            &ColorOptions::default(),
        )
        .unwrap();
        assert!(r.colors.is_empty());
        assert_eq!(r.num_colors, 0);
    }
}

//! Algorithm 4: topology-driven GPU graph coloring (T-base / T-ldg).
//!
//! One thread per vertex every iteration; a thread whose vertex is already
//! colored immediately exits (the work-inefficiency the data-driven variant
//! removes). A global `changed` flag, set by any thread that colors a
//! vertex, drives the host-side do/while loop.
//!
//! gcol::hot_path

use super::{pass_marker, speculative_first_fit, GpuGraph, SpecGreedyDriver};
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, Kernel, KernelCtx};

/// Lines 4–14 of Algorithm 4: color every not-yet-colored vertex.
struct TopoColor {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    changed: Buffer<u32>,
    pass: u32,
    use_ldg: bool,
}

impl Kernel for TopoColor {
    fn name(&self) -> &'static str {
        if self.use_ldg {
            "topo-color-ldg"
        } else {
            "topo-color"
        }
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        t.alu(2);
        if t.ld(self.colored, v as usize) != 0 {
            return;
        }
        let marker = pass_marker(self.pass, self.g.n, v);
        let c = speculative_first_fit(t, &self.g, self.color, v, marker, self.use_ldg);
        t.st_warp(self.color, v as usize, c);
        t.st(self.colored, v as usize, 1);
        t.st(self.changed, 0, 1);
    }
}

/// Lines 15–21 of Algorithm 4: clear `colored[v]` for the smaller endpoint
/// of every monochromatic edge.
struct TopoDetect {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    use_ldg: bool,
}

impl Kernel for TopoDetect {
    fn name(&self) -> &'static str {
        if self.use_ldg {
            "topo-detect-ldg"
        } else {
            "topo-detect"
        }
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        let cv = t.ld(self.color, v as usize);
        if cv == 0 {
            return;
        }
        let start = self.g.load_r(t, v as usize, self.use_ldg) as usize;
        let end = self.g.load_r(t, v as usize + 1, self.use_ldg) as usize;
        for e in start..end {
            let w = self.g.load_c(t, e, self.use_ldg);
            t.alu(3); // compare color, compare ids, loop bookkeeping
            if v < w && cv == t.ld(self.color, w as usize) {
                t.st(self.colored, v as usize, 0);
                return; // first conflict suffices
            }
        }
    }
}

/// Runs the full topology-driven scheme on `backend`.
pub fn color_topo<B: Backend>(
    g: &Csr,
    backend: &B,
    opts: &ColorOptions,
    use_ldg: bool,
) -> Result<Coloring, ColorError> {
    let scheme = if use_ldg {
        Scheme::TopoLdg
    } else {
        Scheme::TopoBase
    };
    let mut d = SpecGreedyDriver::new(backend, scheme, g, opts);
    let color = d.alloc_vertex_buf();
    let colored = d.alloc_vertex_buf();
    let changed = d.alloc_flag();
    d.label(color, "color");
    d.label(colored, "colored");
    d.label(changed, "changed");
    d.charge_upload("graph h2d", &[color, colored]);

    let gg = d.gg;
    let n = g.num_vertices();
    let iterations = d.run_passes(|d, pass| {
        d.mem.store(changed, 0, 0);
        d.launch(
            n,
            &TopoColor {
                g: gg,
                color,
                colored,
                changed,
                pass,
                use_ldg,
            },
        );
        d.launch(
            n,
            &TopoDetect {
                g: gg,
                color,
                colored,
                use_ldg,
            },
        );
        d.read_flag("changed flag d2h", changed) != 0
    })?;
    Ok(d.finish(color, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{grid3d, rmat, RmatParams};
    use gcol_simt::{Device, ExecMode, SimtBackend};

    fn opts() -> ColorOptions {
        ColorOptions::default()
    }

    fn det(dev: &Device) -> SimtBackend<'_> {
        SimtBackend::new(dev, ExecMode::Deterministic)
    }

    #[test]
    fn valid_on_assorted_graphs() {
        let dev = Device::tiny();
        for g in [
            cycle(77),
            complete(17),
            star(300),
            erdos_renyi(800, 4000, 1),
            grid3d(8, 8, 4),
        ] {
            for use_ldg in [false, true] {
                let r = color_topo(&g, &det(&dev), &opts(), use_ldg).unwrap();
                verify_coloring(&g, &r.colors).unwrap();
                assert!(r.num_colors <= g.max_degree() + 1);
                assert!(r.iterations >= 1);
                assert!(r.profile.total_ms() > 0.0);
            }
        }
    }

    #[test]
    fn quality_close_to_sequential() {
        let dev = Device::tiny();
        let g = rmat(RmatParams::erdos_renyi(10, 12), 3);
        let seq = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::Natural);
        let r = color_topo(&g, &det(&dev), &opts(), false).unwrap();
        assert!(
            (r.num_colors as i64 - seq.num_colors as i64).abs() <= 3,
            "topo {} vs seq {}",
            r.num_colors,
            seq.num_colors
        );
    }

    #[test]
    fn ldg_reduces_latency_not_correctness() {
        let dev = Device::tiny();
        let g = erdos_renyi(1000, 6000, 5);
        let base = color_topo(&g, &det(&dev), &opts(), false).unwrap();
        let ldg = color_topo(&g, &det(&dev), &opts(), true).unwrap();
        verify_coloring(&g, &ldg.colors).unwrap();
        // Deterministic mode: identical functional behavior.
        assert_eq!(base.colors, ldg.colors);
        // The ldg variant must hit the read-only cache.
        let ro_hits: u64 = ldg
            .profile
            .phases
            .iter()
            .filter_map(|p| match p {
                gcol_simt::Phase::Kernel(k) => Some(k.ro_hits),
                _ => None,
            })
            .sum();
        assert!(ro_hits > 0, "ldg path never hit the RO cache");
    }

    #[test]
    fn empty_graph() {
        let dev = Device::tiny();
        let r = color_topo(&Csr::empty(0), &det(&dev), &opts(), false).unwrap();
        assert_eq!(r.num_colors, 0);
        assert!(r.colors.is_empty());
    }

    #[test]
    fn deterministic_mode_is_reproducible() {
        let dev = Device::tiny();
        let g = erdos_renyi(500, 3000, 9);
        let a = color_topo(&g, &det(&dev), &opts(), false).unwrap();
        let b = color_topo(&g, &det(&dev), &opts(), false).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.profile.total_ms(), b.profile.total_ms());
    }

    #[test]
    fn parallel_mode_still_valid() {
        let dev = Device::tiny();
        let g = erdos_renyi(2000, 12_000, 11);
        let backend = SimtBackend::new(&dev, ExecMode::Parallel);
        let r = color_topo(&g, &backend, &opts(), true).unwrap();
        verify_coloring(&g, &r.colors).unwrap();
    }

    #[test]
    fn exceeding_max_iterations_is_an_error() {
        let dev = Device::tiny();
        let g = complete(24);
        let o = ColorOptions {
            max_iterations: 1,
            ..ColorOptions::default()
        };
        let err = color_topo(&g, &det(&dev), &o, false).unwrap_err();
        assert!(matches!(err, ColorError::MaxIterations { limit: 1, .. }));
    }
}

//! Algorithm 4: topology-driven GPU graph coloring (T-base / T-ldg).
//!
//! One thread per vertex every iteration; a thread whose vertex is already
//! colored immediately exits (the work-inefficiency the data-driven variant
//! removes). A global `changed` flag, set by any thread that colors a
//! vertex, drives the host-side do/while loop.

use super::{pass_marker, read_flag, speculative_first_fit, GpuGraph};
use crate::{ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{grid_for, launch, Device, GpuMem, Kernel, RunProfile, ThreadCtx};

/// Lines 4–14 of Algorithm 4: color every not-yet-colored vertex.
struct TopoColor {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    changed: Buffer<u32>,
    pass: u32,
    use_ldg: bool,
}

impl Kernel for TopoColor {
    fn name(&self) -> &'static str {
        if self.use_ldg {
            "topo-color-ldg"
        } else {
            "topo-color"
        }
    }

    fn run(&self, t: &mut ThreadCtx<'_>) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        t.alu(2);
        if t.ld(self.colored, v as usize) != 0 {
            return;
        }
        let marker = pass_marker(self.pass, self.g.n, v);
        let c = speculative_first_fit(t, &self.g, self.color, v, marker, self.use_ldg);
        t.st_warp(self.color, v as usize, c);
        t.st(self.colored, v as usize, 1);
        t.st(self.changed, 0, 1);
    }
}

/// Lines 15–21 of Algorithm 4: clear `colored[v]` for the smaller endpoint
/// of every monochromatic edge.
struct TopoDetect {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    use_ldg: bool,
}

impl Kernel for TopoDetect {
    fn name(&self) -> &'static str {
        if self.use_ldg {
            "topo-detect-ldg"
        } else {
            "topo-detect"
        }
    }

    fn run(&self, t: &mut ThreadCtx<'_>) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        let cv = t.ld(self.color, v as usize);
        if cv == 0 {
            return;
        }
        let start = self.g.load_r(t, v as usize, self.use_ldg) as usize;
        let end = self.g.load_r(t, v as usize + 1, self.use_ldg) as usize;
        for e in start..end {
            let w = self.g.load_c(t, e, self.use_ldg);
            t.alu(3); // compare color, compare ids, loop bookkeeping
            if v < w && cv == t.ld(self.color, w as usize) {
                t.st(self.colored, v as usize, 0);
                return; // first conflict suffices
            }
        }
    }
}

/// Runs the full topology-driven scheme on the simulated device.
pub fn color_topo(g: &Csr, dev: &Device, opts: &ColorOptions, use_ldg: bool) -> Coloring {
    let mut mem = GpuMem::new();
    let gg = GpuGraph::upload(&mut mem, g);
    let color = mem.alloc::<u32>(g.num_vertices().max(1));
    let colored = mem.alloc::<u32>(g.num_vertices().max(1));
    let changed = mem.alloc::<u32>(1);

    let mut profile = RunProfile::new();
    if opts.charge_h2d {
        let bytes = gg.bytes() + color.len() * 8;
        profile.transfer("graph h2d", bytes, gcol_simt::xfer::transfer_ms(dev, bytes));
    }

    let grid = grid_for(g.num_vertices(), opts.block_size);
    let mut pass = 0u32;
    loop {
        pass += 1;
        assert!(
            (pass as usize) <= opts.max_iterations,
            "topology-driven coloring did not converge within {} passes",
            opts.max_iterations
        );
        mem.store(changed, 0, 0);
        let stats = launch(
            &mem,
            dev,
            opts.exec_mode,
            grid,
            opts.block_size,
            &TopoColor {
                g: gg,
                color,
                colored,
                changed,
                pass,
                use_ldg,
            },
        );
        profile.kernel(stats);
        let stats = launch(
            &mem,
            dev,
            opts.exec_mode,
            grid,
            opts.block_size,
            &TopoDetect {
                g: gg,
                color,
                colored,
                use_ldg,
            },
        );
        profile.kernel(stats);
        if read_flag(&mem, dev, &mut profile, changed) == 0 {
            break;
        }
    }

    let colors = if g.num_vertices() == 0 {
        Vec::new()
    } else {
        mem.read_vec(color)
    };
    let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
    Coloring {
        scheme: if use_ldg {
            Scheme::TopoLdg
        } else {
            Scheme::TopoBase
        },
        colors,
        num_colors,
        iterations: pass as usize,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{grid3d, rmat, RmatParams};
    use gcol_simt::ExecMode;

    fn opts() -> ColorOptions {
        ColorOptions {
            exec_mode: ExecMode::Deterministic,
            ..ColorOptions::default()
        }
    }

    #[test]
    fn valid_on_assorted_graphs() {
        let dev = Device::tiny();
        for g in [
            cycle(77),
            complete(17),
            star(300),
            erdos_renyi(800, 4000, 1),
            grid3d(8, 8, 4),
        ] {
            for use_ldg in [false, true] {
                let r = color_topo(&g, &dev, &opts(), use_ldg);
                verify_coloring(&g, &r.colors).unwrap();
                assert!(r.num_colors <= g.max_degree() + 1);
                assert!(r.iterations >= 1);
                assert!(r.profile.total_ms() > 0.0);
            }
        }
    }

    #[test]
    fn quality_close_to_sequential() {
        let dev = Device::tiny();
        let g = rmat(RmatParams::erdos_renyi(10, 12), 3);
        let seq = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::Natural);
        let r = color_topo(&g, &dev, &opts(), false);
        assert!(
            (r.num_colors as i64 - seq.num_colors as i64).abs() <= 3,
            "topo {} vs seq {}",
            r.num_colors,
            seq.num_colors
        );
    }

    #[test]
    fn ldg_reduces_latency_not_correctness() {
        let dev = Device::tiny();
        let g = erdos_renyi(1000, 6000, 5);
        let base = color_topo(&g, &dev, &opts(), false);
        let ldg = color_topo(&g, &dev, &opts(), true);
        verify_coloring(&g, &ldg.colors).unwrap();
        // Deterministic mode: identical functional behavior.
        assert_eq!(base.colors, ldg.colors);
        // The ldg variant must hit the read-only cache.
        let ro_hits: u64 = ldg
            .profile
            .phases
            .iter()
            .filter_map(|p| match p {
                gcol_simt::Phase::Kernel(k) => Some(k.ro_hits),
                _ => None,
            })
            .sum();
        assert!(ro_hits > 0, "ldg path never hit the RO cache");
    }

    #[test]
    fn empty_graph() {
        let dev = Device::tiny();
        let r = color_topo(&Csr::empty(0), &dev, &opts(), false);
        assert_eq!(r.num_colors, 0);
        assert!(r.colors.is_empty());
    }

    #[test]
    fn deterministic_mode_is_reproducible() {
        let dev = Device::tiny();
        let g = erdos_renyi(500, 3000, 9);
        let a = color_topo(&g, &dev, &opts(), false);
        let b = color_topo(&g, &dev, &opts(), false);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.profile.total_ms(), b.profile.total_ms());
    }

    #[test]
    fn parallel_mode_still_valid() {
        let dev = Device::tiny();
        let g = erdos_renyi(2000, 12_000, 11);
        let o = ColorOptions {
            exec_mode: ExecMode::Parallel,
            ..ColorOptions::default()
        };
        let r = color_topo(&g, &dev, &o, true);
        verify_coloring(&g, &r.colors).unwrap();
    }
}

//! The shared speculate/detect driver every GPU scheme runs on.
//!
//! Before this existed, each scheme driver re-implemented the same loop
//! against the simulator directly: upload the CSR arrays, allocate the
//! color buffers, charge the h2d copy, run speculate/detect passes until a
//! flag or worklist says done (panicking past `max_iterations`), read the
//! colors back. [`SpecGreedyDriver`] hoists all of that — parameterized
//! over the execution [`Backend`], so the same scheme code runs under the
//! paper-faithful timing simulator or the native rayon path — and turns
//! the convergence panic into a typed [`ColorError`].

use super::GpuGraph;
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{grid_for, Backend, CoopKernel, GpuMem, Kernel, RunProfile};

/// Shared state and plumbing for one GPU-scheme run on one backend.
pub struct SpecGreedyDriver<'b, B: Backend> {
    backend: &'b B,
    /// Device memory (graph + scheme buffers).
    pub mem: GpuMem,
    /// The uploaded CSR graph.
    pub gg: GpuGraph,
    /// The run's timeline, filled by launches and transfers.
    pub profile: RunProfile,
    scheme: Scheme,
    block_size: u32,
    max_iterations: usize,
    charge_h2d: bool,
}

impl<'b, B: Backend> SpecGreedyDriver<'b, B> {
    /// Uploads `g` and prepares an empty profile for `scheme`.
    pub fn new(backend: &'b B, scheme: Scheme, g: &Csr, opts: &ColorOptions) -> Self {
        let mut mem = GpuMem::new();
        let gg = GpuGraph::upload(&mut mem, g);
        Self {
            backend,
            mem,
            gg,
            profile: RunProfile::new(),
            scheme,
            block_size: opts.block_size,
            max_iterations: opts.max_iterations,
            charge_h2d: opts.charge_h2d,
        }
    }

    /// Allocates a zeroed per-vertex buffer (at least one element, so
    /// empty graphs need no special-casing in kernels).
    pub fn alloc_vertex_buf(&mut self) -> Buffer<u32> {
        let n = self.gg.n.max(1);
        self.mem.alloc(n)
    }

    /// Allocates an *uninitialized* per-vertex buffer (a bare
    /// `cudaMalloc`): functionally zeroed like
    /// [`SpecGreedyDriver::alloc_vertex_buf`], but the sanitizer backend
    /// flags any read of a word no kernel or host write has touched.
    /// Used for the worklists every entry of which is written before
    /// being read.
    pub fn alloc_vertex_buf_uninit(&mut self) -> Buffer<u32> {
        let n = self.gg.n.max(1);
        self.mem.alloc_uninit(n)
    }

    /// Allocates a single-word flag/counter buffer.
    pub fn alloc_flag(&mut self) -> Buffer<u32> {
        self.mem.alloc(1)
    }

    /// Names a buffer for sanitizer reports (no effect on execution or
    /// timing).
    pub fn label(&mut self, buf: Buffer<u32>, name: &str) {
        self.mem.set_label(buf, name);
    }

    /// Bytes of the initial upload: the CSR arrays plus the listed staged
    /// buffers, computed from the actual allocations so every scheme's
    /// transfer charge is self-describing.
    pub fn upload_bytes(&self, staged: &[Buffer<u32>]) -> usize {
        self.gg.bytes() + staged.iter().map(|b| b.len() * 4).sum::<usize>()
    }

    /// Charges the initial host-to-device copy (graph + `staged` buffers)
    /// if the options ask for it. The paper times computation only, so
    /// `ColorOptions::charge_h2d` defaults to off.
    pub fn charge_upload(&mut self, label: &'static str, staged: &[Buffer<u32>]) {
        if self.charge_h2d {
            let bytes = self.upload_bytes(staged);
            self.transfer(label, bytes);
        }
    }

    /// Charges a host↔device transfer unconditionally (free on backends
    /// without a modeled interconnect).
    pub fn transfer(&mut self, label: &'static str, bytes: usize) {
        self.backend.transfer(label, bytes, &mut self.profile);
    }

    /// Launches `kernel` with one thread per element (`n` elements at the
    /// configured block size).
    pub fn launch<K: Kernel>(&mut self, n: usize, kernel: &K) {
        let grid = grid_for(n, self.block_size);
        self.backend
            .launch(&self.mem, grid, self.block_size, kernel, &mut self.profile);
    }

    /// Launches a cooperative kernel with one thread per element; returns
    /// the total number of emitted items.
    pub fn launch_coop<K: CoopKernel>(&mut self, n: usize, kernel: &K) -> u32 {
        let grid = grid_for(n, self.block_size);
        self.backend
            .launch_coop(&self.mem, grid, self.block_size, kernel, &mut self.profile)
    }

    /// Reads a 4-byte flag/counter back to the host, charging the PCIe
    /// round trip the real implementation pays for its `cudaMemcpy`.
    pub fn read_flag(&mut self, label: &'static str, flag: Buffer<u32>) -> u32 {
        self.transfer(label, 4);
        self.mem.load(flag, 0)
    }

    /// The host-side convergence loop: runs `body` with pass numbers
    /// `1, 2, …` until it reports no further pass is needed, then returns
    /// the number of passes executed. Exceeding
    /// [`ColorOptions::max_iterations`] yields
    /// [`ColorError::MaxIterations`] instead of the old `assert!` panic.
    pub fn run_passes(
        &mut self,
        mut body: impl FnMut(&mut Self, u32) -> bool,
    ) -> Result<usize, ColorError> {
        let mut pass = 0u32;
        loop {
            pass += 1;
            if pass as usize > self.max_iterations {
                return Err(ColorError::MaxIterations {
                    scheme: self.scheme,
                    limit: self.max_iterations,
                });
            }
            if !body(self, pass) {
                return Ok(pass as usize);
            }
        }
    }

    /// Copies the color array back to the host (empty for empty graphs —
    /// the buffer itself is padded to one element).
    pub fn read_colors(&self, color: Buffer<u32>) -> Vec<u32> {
        if self.gg.n == 0 {
            Vec::new()
        } else {
            self.mem.read_vec(color)
        }
    }

    /// Extracts the colors and packages the run's [`Coloring`]. Colors are
    /// assumed dense (first-fit), so the count is their maximum.
    pub fn finish(self, color: Buffer<u32>, iterations: usize) -> Coloring {
        let colors = self.read_colors(color);
        let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
        Coloring {
            scheme: self.scheme,
            colors,
            num_colors,
            iterations,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::gen::simple::cycle;
    use gcol_simt::{Device, ExecMode, SimtBackend};

    fn driver<'b>(
        backend: &'b SimtBackend<'_>,
        g: &Csr,
        opts: &ColorOptions,
    ) -> SpecGreedyDriver<'b, SimtBackend<'b>> {
        // Lifetimes: the device outlives the backend which outlives the
        // driver; the test only needs them within one scope.
        SpecGreedyDriver::new(backend, Scheme::TopoBase, g, opts)
    }

    #[test]
    fn max_iterations_yields_typed_error() {
        let dev = Device::tiny();
        let backend = SimtBackend::new(&dev, ExecMode::Deterministic);
        let opts = ColorOptions {
            max_iterations: 3,
            ..ColorOptions::default()
        };
        let g = cycle(10);
        let mut d = driver(&backend, &g, &opts);
        let err = d.run_passes(|_, _| true).unwrap_err();
        assert_eq!(
            err,
            ColorError::MaxIterations {
                scheme: Scheme::TopoBase,
                limit: 3
            }
        );
        assert!(err.to_string().contains("did not converge"));
    }

    #[test]
    fn upload_bytes_are_self_describing() {
        let dev = Device::tiny();
        let backend = SimtBackend::new(&dev, ExecMode::Deterministic);
        let opts = ColorOptions {
            charge_h2d: true,
            ..ColorOptions::default()
        };
        let g = cycle(10);
        let mut d = driver(&backend, &g, &opts);
        let color = d.alloc_vertex_buf();
        let colored = d.alloc_vertex_buf();
        // R has n+1 entries, C has 2n (cycle), plus two n-word buffers.
        assert_eq!(d.upload_bytes(&[color, colored]), (11 + 20 + 10 + 10) * 4);
        d.charge_upload("graph h2d", &[color, colored]);
        assert!(d.profile.transfer_ms() > 0.0);
    }

    #[test]
    fn pass_count_is_returned() {
        let dev = Device::tiny();
        let backend = SimtBackend::new(&dev, ExecMode::Deterministic);
        let opts = ColorOptions::default();
        let g = cycle(6);
        let mut d = driver(&backend, &g, &opts);
        let mut left = 4;
        let iters = d
            .run_passes(|_, _| {
                left -= 1;
                left > 0
            })
            .unwrap();
        assert_eq!(iters, 4);
    }
}

//! The GPU (simulated) implementations: the paper's own contribution.
//!
//! * [`topo`] — Algorithm 4, topology-driven (T-base / T-ldg).
//! * [`data`] — Algorithm 5, data-driven with prefix-sum worklists
//!   (D-base / D-ldg).
//! * [`csrcolor`] — the cuSPARSE multi-hash MIS coloring (§II-C).
//! * [`threestep`] — Grosset et al.'s 3-step GM baseline (§II-C).
//! * [`sharded`] — the multi-device extension: any of the above schemes
//!   per graph shard, plus ghost-frontier boundary-exchange rounds.
//! * [`repair`] — the dirty-set conflict-repair engine the exchange
//!   rounds and the incremental `recolor_delta` path both run on.

pub mod csrcolor;
pub mod data;
pub mod data_atomic;
pub mod delta;
pub mod driver;
pub mod frontier;
pub mod repair;
pub mod sanitize;
pub mod sharded;
pub mod threestep;
pub mod topo;
pub mod topo_edge;

pub use delta::{recolor_after_edits, recolor_delta, recolor_delta_sanitized};
pub use driver::SpecGreedyDriver;
pub use frontier::{ExchangeKind, FrontierFrame};
pub use sharded::color_sharded;

use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{GpuMem, KernelCtx};

/// The CSR arrays of Fig. 2 resident in device memory.
#[derive(Clone, Copy, Debug)]
pub struct GpuGraph {
    /// Row offsets `R` (n + 1 entries).
    pub r: Buffer<u32>,
    /// Column indices `C` (m entries).
    pub c: Buffer<u32>,
    /// Vertex count.
    pub n: usize,
    /// Stored (directed) edge count.
    pub m: usize,
    /// Maximum degree (sizes the per-thread `colorMask`).
    pub max_degree: usize,
}

impl GpuGraph {
    /// Copies `g`'s CSR arrays into device memory.
    pub fn upload(mem: &mut GpuMem, g: &Csr) -> Self {
        let r = mem.alloc_from_slice(g.row_offsets());
        let c = mem.alloc_from_slice(g.col_indices());
        mem.set_label(r, "csr-r");
        mem.set_label(c, "csr-c");
        Self {
            r,
            c,
            n: g.num_vertices(),
            m: g.num_edges(),
            max_degree: g.max_degree(),
        }
    }

    /// Bytes of the uploaded arrays (for transfer charging).
    pub fn bytes(&self) -> usize {
        (self.r.len() + self.c.len()) * 4
    }

    /// Loads `R[i]`, honoring the ld/ldg choice — the exact optimization
    /// of Fig. 4 (the `R` and `C` arrays are read-only for the lifetime of
    /// every coloring kernel).
    #[inline]
    pub fn load_r(&self, t: &mut impl KernelCtx, i: usize, use_ldg: bool) -> u32 {
        if use_ldg {
            t.ldg(self.r, i)
        } else {
            t.ld(self.r, i)
        }
    }

    /// Loads `C[e]`, honoring the ld/ldg choice.
    #[inline]
    pub fn load_c(&self, t: &mut impl KernelCtx, e: usize, use_ldg: bool) -> u32 {
        if use_ldg {
            t.ldg(self.c, e)
        } else {
            t.ld(self.c, e)
        }
    }
}

/// Shared inner loop of every greedy kernel: mark the colors of `v`'s
/// neighbors in the thread-local `colorMask` (marker-tagged, so the mask is
/// never cleared), then first-fit-scan for the smallest permissible color.
/// Callers write the result with `st_warp` so color visibility is
/// warp-synchronous (SIMT lockstep semantics — the source of the
/// deterministic speculation conflicts the GM scheme resolves).
///
/// `marker` must be unique per (pass, vertex) — see the module docs of
/// [`crate::gm`] for why pass-tagging keeps the no-reinit trick sound.
/// Returns the chosen color (1-based).
#[inline]
pub fn speculative_first_fit(
    t: &mut impl KernelCtx,
    g: &GpuGraph,
    color: Buffer<u32>,
    v: u32,
    marker: u32,
    use_ldg: bool,
) -> u32 {
    let start = g.load_r(t, v as usize, use_ldg) as usize;
    let end = g.load_r(t, v as usize + 1, use_ldg) as usize;
    t.local_reserve(g.max_degree + 2);
    for e in start..end {
        let w = g.load_c(t, e, use_ldg);
        let cw = t.ld(color, w as usize);
        t.alu(2); // loop bookkeeping + index math
                  // Single-device colors never exceed max_degree + 1, but sharded
                  // ghost neighbors can carry a larger color from another shard's
                  // palette; anything past the scannable range cannot block the
                  // first-fit scan, so it needs no mark (and the mask never grows).
        if (cw as usize) < g.max_degree + 2 {
            t.local_st(cw as usize, marker);
        }
    }
    // min { i > 0 : colorMask[i] != marker }
    let mut c = 1usize;
    while t.local_ld(c) == marker {
        t.alu(1);
        c += 1;
    }
    c as u32
}

/// Marker for (pass, vertex): unique modulo 2^32, which keeps stale-mark
/// collisions vanishingly rare (and any collision only *forbids* an extra
/// color — the coloring stays proper).
#[inline]
pub fn pass_marker(pass: u32, n: usize, v: u32) -> u32 {
    pass.wrapping_mul(n as u32).wrapping_add(v).wrapping_add(1)
}

//! Ablation variant: data-driven coloring with a **per-thread atomic**
//! worklist push instead of the prefix-sum compaction.
//!
//! This is the unoptimized design §III-C ("Atomic Operation Reduction")
//! argues against: every conflicted vertex performs `atomicAdd` on one
//! global counter, so all pushes in a warp serialize on the same address
//! and the Atomic Operation Unit becomes the bottleneck. The `ablation`
//! experiment in `gcol-bench` quantifies exactly how much the paper's
//! prefix-sum optimization buys.
//!
//! gcol::hot_path

use super::{pass_marker, speculative_first_fit, GpuGraph, SpecGreedyDriver};
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, Kernel, KernelCtx};

/// Same coloring kernel as D-base (shared via `speculative_first_fit`).
struct AtomicDataColor {
    g: GpuGraph,
    color: Buffer<u32>,
    w_in: Buffer<u32>,
    len: usize,
    pass: u32,
}

impl Kernel for AtomicDataColor {
    fn name(&self) -> &'static str {
        "data-color(atomic-variant)"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.len {
            return;
        }
        let v = t.ld(self.w_in, i);
        let marker = pass_marker(self.pass, self.g.n, v);
        let c = speculative_first_fit(t, &self.g, self.color, v, marker, false);
        t.st_warp(self.color, v as usize, c);
    }
}

/// Detection with per-item atomic pushes — the "before" picture of Fig. 5.
struct AtomicDetect {
    g: GpuGraph,
    color: Buffer<u32>,
    w_in: Buffer<u32>,
    len: usize,
    w_out: Buffer<u32>,
    counter: Buffer<u32>,
}

impl Kernel for AtomicDetect {
    fn name(&self) -> &'static str {
        "detect-atomic-push"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.len {
            return;
        }
        let v = t.ld(self.w_in, i);
        let cv = t.ld(self.color, v as usize);
        if cv == 0 {
            return;
        }
        let start = t.ld(self.g.r, v as usize) as usize;
        let end = t.ld(self.g.r, v as usize + 1) as usize;
        for e in start..end {
            let w = t.ld(self.g.c, e);
            t.alu(3);
            if v < w && cv == t.ld(self.color, w as usize) {
                // One global atomic per conflicting vertex: the cost the
                // paper's prefix-sum scheme eliminates.
                let dst = t.atomic_add(self.counter, 0, 1);
                t.st(self.w_out, dst as usize, v);
                return;
            }
        }
    }
}

/// Fills the initial worklist with the identity permutation.
struct Iota {
    w: Buffer<u32>,
}

impl Kernel for Iota {
    fn name(&self) -> &'static str {
        "init-worklist"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i < self.w.len() {
            t.alu(1);
            t.st(self.w, i, i as u32);
        }
    }
}

/// Runs the atomic-push data-driven ablation on `backend`.
pub fn color_data_atomic<B: Backend>(
    g: &Csr,
    backend: &B,
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    let n = g.num_vertices();
    let mut d = SpecGreedyDriver::new(backend, Scheme::DataAtomic, g, opts);
    let color = d.alloc_vertex_buf();
    // Worklists are write-before-read by construction; allocating them
    // uninitialized lets the sanitizer check that claim.
    let mut w_in = d.alloc_vertex_buf_uninit();
    let mut w_out = d.alloc_vertex_buf_uninit();
    let counter = d.alloc_flag();
    d.label(color, "color");
    d.label(w_in, "worklist-a");
    d.label(w_out, "worklist-b");
    d.label(counter, "worklist-counter");

    d.launch(n, &Iota { w: w_in });

    let gg = d.gg;
    let mut len = n;
    let iterations = if len == 0 {
        0
    } else {
        d.run_passes(|d, pass| {
            d.launch(
                len,
                &AtomicDataColor {
                    g: gg,
                    color,
                    w_in,
                    len,
                    pass,
                },
            );
            d.mem.store(counter, 0, 0);
            d.launch(
                len,
                &AtomicDetect {
                    g: gg,
                    color,
                    w_in,
                    len,
                    w_out,
                    counter,
                },
            );
            len = d.read_flag("worklist size d2h", counter) as usize;
            std::mem::swap(&mut w_in, &mut w_out);
            len > 0
        })?
    };
    Ok(d.finish(color, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, erdos_renyi};
    use gcol_graph::gen::{grid2d, StencilKind};
    use gcol_simt::{Device, ExecMode, SimtBackend};

    fn opts() -> ColorOptions {
        ColorOptions::default()
    }

    fn det(dev: &Device) -> SimtBackend<'_> {
        SimtBackend::new(dev, ExecMode::Deterministic)
    }

    #[test]
    fn colors_properly() {
        let dev = Device::tiny();
        for g in [
            complete(16),
            erdos_renyi(800, 4000, 2),
            grid2d(25, 25, StencilKind::FivePoint),
        ] {
            let r = color_data_atomic(&g, &det(&dev), &opts()).unwrap();
            verify_coloring(&g, &r.colors).unwrap();
            assert!(r.num_colors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn pays_more_atomic_serialization_than_prefix_sum_variant() {
        let dev = Device::tiny();
        // A stencil graph guarantees warp-mate conflicts → non-empty
        // worklists → contended pushes.
        let g = grid2d(40, 40, StencilKind::FivePoint);
        let atomic = color_data_atomic(&g, &det(&dev), &opts()).unwrap();
        let prefix = super::super::data::color_data(&g, &det(&dev), &opts(), false).unwrap();
        let serial = |c: &Coloring| -> u64 {
            c.profile
                .phases
                .iter()
                .filter_map(|p| match p {
                    gcol_simt::Phase::Kernel(k) => Some(k.atomic_serial_cycles),
                    _ => None,
                })
                .sum()
        };
        assert!(
            serial(&atomic) > serial(&prefix),
            "atomic variant should serialize more ({} vs {})",
            serial(&atomic),
            serial(&prefix)
        );
    }

    #[test]
    fn same_quality_as_prefix_sum_variant() {
        let dev = Device::tiny();
        let g = erdos_renyi(1000, 8000, 5);
        let a = color_data_atomic(&g, &det(&dev), &opts()).unwrap();
        let b = super::super::data::color_data(&g, &det(&dev), &opts(), false).unwrap();
        // Same algorithm, different worklist plumbing: same color count in
        // deterministic mode.
        assert_eq!(a.num_colors, b.num_colors);
    }
}

//! Ghost-frontier wire encodings for the sharded driver.
//!
//! Every exchange round each device must learn the current colors of its
//! ghost vertices. The obvious wire format — [`ExchangeKind::Dense`] —
//! ships all `G_p` ghost colors to device `p` at 4 bytes each, every
//! round, even though after the first round only the vertices that lost a
//! cross-shard conflict (a thin and shrinking boundary subset) have
//! changed color. [`ExchangeKind::Delta`] ships a per-frame dirty bitmask
//! (`ceil(G_p / 8)` bytes) plus 4 bytes per *changed* ghost, falls back
//! to the dense payload whenever that would be smaller (so a delta frame
//! never costs more than dense), and elides the frame entirely when
//! nothing changed — the exchange is round-synchronous, so a zero-length
//! message is all "no news" needs.
//!
//! The encodings differ only in wire bytes, never in decoded colors:
//! [`FrontierFrame::apply`] reconstructs the same ghost color array under
//! either kind, which `tests/frontier_codec.rs` proves by property. The
//! sharded driver computes the dirty set for *both* kinds (it drives the
//! scoped cross-detect and the detect skip either way — an unchanged
//! frontier cannot introduce a conflict the previous round did not
//! already clear; see `gpu::sharded`'s module docs); the kind only
//! selects the wire format and with it the copy-readiness of the frame.

/// Which wire format the sharded driver uses for ghost-frontier rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExchangeKind {
    /// Ship every ghost color every round (4 bytes per ghost).
    Dense,
    /// Ship a dirty bitmask plus only the changed colors, falling back to
    /// the dense payload when that is smaller. The default.
    #[default]
    Delta,
}

impl ExchangeKind {
    /// Every selectable encoding.
    pub const ALL: [ExchangeKind; 2] = [ExchangeKind::Dense, ExchangeKind::Delta];

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ExchangeKind::Dense => "dense",
            ExchangeKind::Delta => "delta",
        }
    }

    /// Encodes one device's incoming frontier: `cur` holds the current
    /// colors of its ghosts (in ghost order), `prev` the colors the device
    /// last received (seed with `u32::MAX` so the first round marks every
    /// ghost dirty). Both slices must have equal length.
    pub fn encode(&self, cur: &[u32], prev: &[u32]) -> FrontierFrame {
        assert_eq!(cur.len(), prev.len(), "frontier mirror length mismatch");
        match self {
            ExchangeKind::Dense => FrontierFrame::Dense {
                colors: cur.to_vec(),
            },
            ExchangeKind::Delta => {
                let dirty: Vec<usize> = (0..cur.len()).filter(|&i| cur[i] != prev[i]).collect();
                if dirty.is_empty() {
                    return FrontierFrame::Empty {
                        num_ghosts: cur.len(),
                    };
                }
                let delta_bytes = cur.len().div_ceil(8) + 4 * dirty.len();
                if delta_bytes >= 4 * cur.len() {
                    // Dense fallback: nearly everything changed, the
                    // bitmask would only add overhead.
                    return FrontierFrame::Dense {
                        colors: cur.to_vec(),
                    };
                }
                let mut mask = vec![0u8; cur.len().div_ceil(8)];
                let mut payload = Vec::with_capacity(dirty.len());
                for &i in &dirty {
                    mask[i / 8] |= 1 << (i % 8);
                    payload.push(cur[i]);
                }
                FrontierFrame::Delta { mask, payload }
            }
        }
    }
}

impl std::fmt::Display for ExchangeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExchangeKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown exchange {s:?} (expected \"dense\" or \"delta\")"))
    }
}

/// One encoded frontier message for one device's ghosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontierFrame {
    /// All ghost colors, in ghost order.
    Dense {
        /// The full color array.
        colors: Vec<u32>,
    },
    /// Changed ghosts only: bit `i` of `mask` set ⇔ ghost `i` changed;
    /// `payload` holds the changed colors in ascending ghost order.
    Delta {
        /// Dirty bitmask, `ceil(num_ghosts / 8)` bytes.
        mask: Vec<u8>,
        /// New colors of the dirty ghosts.
        payload: Vec<u32>,
    },
    /// Nothing changed; carries no payload at all.
    Empty {
        /// How many ghosts the (elided) frame covers.
        num_ghosts: usize,
    },
}

impl FrontierFrame {
    /// Bytes this frame occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            FrontierFrame::Dense { colors } => 4 * colors.len(),
            FrontierFrame::Delta { mask, payload } => mask.len() + 4 * payload.len(),
            FrontierFrame::Empty { .. } => 0,
        }
    }

    /// Number of ghost entries this frame rewrites when applied.
    pub fn num_dirty(&self) -> usize {
        match self {
            FrontierFrame::Dense { colors } => colors.len(),
            FrontierFrame::Delta { payload, .. } => payload.len(),
            FrontierFrame::Empty { .. } => 0,
        }
    }

    /// Whether applying this frame can change anything. The sharded
    /// driver skips the cross-shard detect kernel for devices whose
    /// incoming frame is empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, FrontierFrame::Empty { .. })
    }

    /// Decodes the frame onto the receiver's ghost color mirror, and
    /// returns the ghost indices that were rewritten (ascending). The
    /// mirror must have the length the frame was encoded from.
    pub fn apply(&self, mirror: &mut [u32]) -> Vec<usize> {
        match self {
            FrontierFrame::Dense { colors } => {
                assert_eq!(colors.len(), mirror.len(), "dense frame length mismatch");
                mirror.copy_from_slice(colors);
                (0..mirror.len()).collect()
            }
            FrontierFrame::Delta { mask, payload } => {
                assert_eq!(
                    mask.len(),
                    mirror.len().div_ceil(8),
                    "delta mask length mismatch"
                );
                let mut touched = Vec::with_capacity(payload.len());
                let mut next = 0;
                for i in 0..mirror.len() {
                    if mask[i / 8] & (1 << (i % 8)) != 0 {
                        mirror[i] = payload[next];
                        next += 1;
                        touched.push(i);
                    }
                }
                assert_eq!(next, payload.len(), "delta payload length mismatch");
                touched
            }
            FrontierFrame::Empty { num_ghosts } => {
                assert_eq!(*num_ghosts, mirror.len(), "empty frame length mismatch");
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_always_ships_everything() {
        let cur = [3u32, 1, 4, 1, 5];
        let prev = [3u32, 1, 4, 1, 5];
        let f = ExchangeKind::Dense.encode(&cur, &prev);
        assert_eq!(f.wire_bytes(), 20);
        assert_eq!(f.num_dirty(), 5);
        let mut mirror = prev;
        f.apply(&mut mirror);
        assert_eq!(mirror, cur);
    }

    #[test]
    fn delta_ships_only_changes_and_elides_empty_frames() {
        let prev = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let mut cur = prev;
        cur[2] = 7;
        cur[8] = 8;
        let f = ExchangeKind::Delta.encode(&cur, &prev);
        // 10 ghosts → 2 mask bytes, 2 dirty → 8 payload bytes.
        assert_eq!(f.wire_bytes(), 10);
        assert_eq!(f.num_dirty(), 2);
        let mut mirror = prev;
        assert_eq!(f.apply(&mut mirror), vec![2, 8]);
        assert_eq!(mirror, cur);

        let g = ExchangeKind::Delta.encode(&cur, &cur);
        assert!(g.is_empty());
        assert_eq!(g.wire_bytes(), 0);
        let mut mirror2 = cur;
        assert!(g.apply(&mut mirror2).is_empty());
        assert_eq!(mirror2, cur);
    }

    #[test]
    fn delta_falls_back_to_dense_when_everything_is_dirty() {
        // All-dirty: bitmask + full payload would exceed dense.
        let prev = [u32::MAX; 6];
        let cur = [1u32, 2, 3, 4, 5, 6];
        let f = ExchangeKind::Delta.encode(&cur, &prev);
        assert!(matches!(f, FrontierFrame::Dense { .. }));
        assert_eq!(f.wire_bytes(), 24);
        let mut mirror = prev;
        f.apply(&mut mirror);
        assert_eq!(mirror, cur);
    }

    #[test]
    fn delta_never_exceeds_dense() {
        // Sweep dirty counts on a fixed-size frontier.
        for dirty in 0..=32usize {
            let prev = vec![1u32; 32];
            let mut cur = prev.clone();
            for (i, c) in cur.iter_mut().take(dirty).enumerate() {
                *c = 100 + i as u32;
            }
            let f = ExchangeKind::Delta.encode(&cur, &prev);
            assert!(
                f.wire_bytes() <= 4 * cur.len(),
                "delta frame ({} bytes, {dirty} dirty) exceeds dense ({})",
                f.wire_bytes(),
                4 * cur.len()
            );
        }
    }

    #[test]
    fn zero_length_frontier() {
        let f = ExchangeKind::Delta.encode(&[], &[]);
        assert!(f.is_empty());
        assert_eq!(f.wire_bytes(), 0);
        let d = ExchangeKind::Dense.encode(&[], &[]);
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn exchange_kind_round_trips() {
        for k in ExchangeKind::ALL {
            assert_eq!(k.name().parse::<ExchangeKind>(), Ok(k));
        }
        assert!("sparse".parse::<ExchangeKind>().is_err());
        assert_eq!(ExchangeKind::default(), ExchangeKind::Delta);
    }
}

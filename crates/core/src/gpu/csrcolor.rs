//! The cuSPARSE `csrcolor` algorithm (§II-C; Naumov et al., NVIDIA TR
//! 2015): Jones–Plassmann with the *multi-hash* trick. Per sweep, every
//! uncolored vertex evaluates `N` hash functions of the vertex ids; being
//! the strict local maximum (resp. minimum) of hash `i` among uncolored
//! neighbors admits the vertex into independent set `2i` (resp. `2i+1`),
//! so one sweep peels up to `2N` independent sets — which is why csrcolor
//! is fast, and why its colors balloon (Figs. 1b/6: each set burns a whole
//! color).

use super::{GpuGraph, SpecGreedyDriver};
use crate::hash::mix_hash;
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, CoopKernel, Kernel, KernelCtx};

/// Upper bound on the number of hash functions per sweep (cuSPARSE uses a
/// small constant; 2 is its effective default).
pub const MAX_HASHES: usize = 8;

/// One csrcolor sweep: assign colors `base+1 ..= base+2N` to the local
/// extrema of the `N` hash orderings.
struct CsrColorSweep {
    g: GpuGraph,
    color: Buffer<u32>,
    base: u32,
    num_hashes: u32,
    seed: u64,
}

impl Kernel for CsrColorSweep {
    fn name(&self) -> &'static str {
        "csrcolor-sweep"
    }

    // The hash kernel keeps per-thread hash registers, not a colorMask, so
    // its register footprint is smaller than the greedy kernels'.
    fn regs_per_thread(&self) -> u32 {
        28
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        if t.ld(self.color, v as usize) != 0 {
            return;
        }
        let nh = self.num_hashes as usize;
        let mut own = [(0u32, 0u32); MAX_HASHES];
        for (i, slot) in own.iter_mut().take(nh).enumerate() {
            *slot = (mix_hash(self.seed, i as u32, v), v);
            t.alu(4); // hash arithmetic
        }
        let mut is_max = (1u32 << nh) - 1;
        let mut is_min = is_max;
        let start = t.ld(self.g.r, v as usize) as usize;
        let end = t.ld(self.g.r, v as usize + 1) as usize;
        for e in start..end {
            let w = t.ld(self.g.c, e);
            let cw = t.ld(self.color, w as usize);
            t.alu(2);
            // Skip neighbors settled in an *earlier* sweep only. A
            // neighbor colored during this sweep (its color is > base)
            // must still compete, otherwise the sweep-start snapshot the
            // MIS argument relies on is broken and adjacent vertices can
            // both claim the same extremum color.
            if cw != 0 && cw <= self.base {
                continue;
            }
            for (i, &own_i) in own.iter().enumerate().take(nh) {
                let hw = (mix_hash(self.seed, i as u32, w), w);
                t.alu(5); // hash + two comparisons + mask updates
                if hw > own_i {
                    is_max &= !(1 << i);
                }
                if hw < own_i {
                    is_min &= !(1 << i);
                }
            }
            // NOTE: no early exit when both masks empty — the cuSPARSE
            // kernel computes full min/max reductions over the adjacency
            // (warp-uniform control flow), so a beaten vertex still pays
            // for its whole neighbor scan.
        }
        if is_max == 0 && is_min == 0 {
            return; // beaten in every ordering: stay uncolored
        }
        // Smallest applicable color: max of hash i → base + 2i + 1,
        // min of hash i → base + 2i + 2.
        let mut chosen = 0u32;
        for i in 0..nh as u32 {
            if is_max & (1 << i) != 0 {
                chosen = self.base + 2 * i + 1;
                break;
            }
            if is_min & (1 << i) != 0 {
                chosen = self.base + 2 * i + 2;
                break;
            }
        }
        debug_assert!(chosen != 0, "extrema mask non-empty implies a color");
        t.alu(2);
        t.st_warp(self.color, v as usize, chosen);
    }
}

/// Counts the vertices still uncolored (device-side reduction: block scan
/// + one atomic per block, as cuSPARSE's internal nnz counters do).
struct CountUncolored {
    color: Buffer<u32>,
    n: usize,
}

impl CoopKernel for CountUncolored {
    type Carry = ();
    fn name(&self) -> &'static str {
        "count-uncolored"
    }
    fn regs_per_thread(&self) -> u32 {
        16
    }
    fn count(&self, t: &mut impl KernelCtx) -> ((), u32) {
        let v = t.global_id() as usize;
        if v >= self.n {
            return ((), 0);
        }
        t.alu(1);
        ((), (t.ld(self.color, v) == 0) as u32)
    }
    fn emit(&self, _t: &mut impl KernelCtx, _carry: (), _dst: u32) {}
}

/// Runs csrcolor on `backend`. The raw colors are sparse in
/// `base + 2i + k` space; like the cuSPARSE reporting path we compact them
/// to a dense `1..=k` range on the host (reporting only — no device time
/// charged).
pub fn color_csrcolor<B: Backend>(
    g: &Csr,
    backend: &B,
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    if !(1..=MAX_HASHES).contains(&opts.num_hashes) {
        return Err(ColorError::InvalidOptions {
            scheme: Scheme::CsrColor,
            reason: format!(
                "num_hashes must be in 1..={MAX_HASHES}, got {}",
                opts.num_hashes
            ),
        });
    }
    let n = g.num_vertices();
    let mut d = SpecGreedyDriver::new(backend, Scheme::CsrColor, g, opts);
    let color = d.alloc_vertex_buf();
    d.label(color, "color");
    d.charge_upload("graph h2d", &[color]);

    let gg = d.gg;
    let num_hashes = opts.num_hashes as u32;
    let seed = opts.seed;
    let mut base = 0u32;
    let mut remaining = n as u32;
    let sweeps = if remaining == 0 {
        0
    } else {
        d.run_passes(|d, _pass| {
            d.launch(
                n,
                &CsrColorSweep {
                    g: gg,
                    color,
                    base,
                    num_hashes,
                    seed,
                },
            );
            remaining = d.launch_coop(n, &CountUncolored { color, n });
            d.transfer("remaining count d2h", 4);
            base += 2 * num_hashes;
            remaining > 0
        })?
    };

    let mut colors = d.read_colors(color);
    let num_colors = gcol_graph::check::compact_colors(&mut colors);
    Ok(Coloring {
        scheme: Scheme::CsrColor,
        colors,
        num_colors,
        iterations: sweeps,
        profile: d.profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{rmat, RmatParams};
    use gcol_simt::{Device, ExecMode, SimtBackend};

    fn opts() -> ColorOptions {
        ColorOptions::default()
    }

    fn det(dev: &Device) -> SimtBackend<'_> {
        SimtBackend::new(dev, ExecMode::Deterministic)
    }

    #[test]
    fn valid_on_assorted_graphs() {
        let dev = Device::tiny();
        for g in [
            cycle(50),
            complete(10),
            star(128),
            erdos_renyi(900, 5000, 4),
        ] {
            let r = color_csrcolor(&g, &det(&dev), &opts()).unwrap();
            verify_coloring(&g, &r.colors).unwrap();
        }
    }

    #[test]
    fn uses_markedly_more_colors_than_greedy() {
        // The central quality observation of Figs. 1(b)/6.
        let dev = Device::tiny();
        let g = rmat(RmatParams::erdos_renyi(11, 16), 5);
        let mis = color_csrcolor(&g, &det(&dev), &opts()).unwrap();
        let seq = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::Natural);
        assert!(
            mis.num_colors as f64 >= 1.5 * seq.num_colors as f64,
            "csrcolor {} vs seq {}",
            mis.num_colors,
            seq.num_colors
        );
    }

    #[test]
    fn more_hashes_need_fewer_sweeps() {
        let dev = Device::tiny();
        let g = erdos_renyi(1200, 9000, 6);
        let one = color_csrcolor(
            &g,
            &det(&dev),
            &ColorOptions {
                num_hashes: 1,
                ..opts()
            },
        )
        .unwrap();
        let four = color_csrcolor(
            &g,
            &det(&dev),
            &ColorOptions {
                num_hashes: 4,
                ..opts()
            },
        )
        .unwrap();
        assert!(
            four.iterations <= one.iterations,
            "4 hashes: {} sweeps, 1 hash: {}",
            four.iterations,
            one.iterations
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let dev = Device::tiny();
        let g = erdos_renyi(500, 2500, 7);
        let a = color_csrcolor(&g, &det(&dev), &opts()).unwrap();
        let b = color_csrcolor(&g, &det(&dev), &opts()).unwrap();
        assert_eq!(a.colors, b.colors);
    }

    #[test]
    fn empty_graph() {
        let dev = Device::tiny();
        let r = color_csrcolor(&Csr::empty(0), &det(&dev), &opts()).unwrap();
        assert_eq!(r.num_colors, 0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn rejects_bad_hash_count() {
        let dev = Device::tiny();
        let err = color_csrcolor(
            &cycle(5),
            &det(&dev),
            &ColorOptions {
                num_hashes: 0,
                ..opts()
            },
        )
        .unwrap_err();
        match err {
            ColorError::InvalidOptions { scheme, reason } => {
                assert_eq!(scheme, Scheme::CsrColor);
                assert!(reason.contains("num_hashes must be in 1..=8"), "{reason}");
            }
            other => panic!("expected InvalidOptions, got {other:?}"),
        }
    }
}

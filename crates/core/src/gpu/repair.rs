//! The dirty-set repair engine: scoped conflict detection plus
//! speculative recoloring to a fixpoint, on any [`Backend`].
//!
//! Extracted from the sharded driver (`gpu::sharded`), where this loop
//! was born as the ghost-exchange conflict resolver. The machinery is
//! more general than its first caller: given a CSR resident on a device,
//! a current color array, and an arbitrary *dirty* vertex set (vertices
//! whose colors can no longer be trusted — because a neighboring shard
//! published new ghost colors, or because the graph itself was edited),
//! the engine re-validates exactly the dirty neighborhood and repairs it
//! with the same speculate/resolve discipline the paper's schemes use:
//!
//! 1. **Scoped detect + in-place recolor** — one kernel sweep over the
//!    dirty worklist finds conflicted vertices and immediately recolors
//!    each loser (first-fit, optionally jitter-started), stamping it
//!    with the pass number. Two callers, two loser rules:
//!    `CrossResolve` (sharded exchange) blames the larger *global id*
//!    of a ghost-edge conflict so two shards agree without
//!    communicating, while `DirtyResolve` (incremental recoloring)
//!    blames the dirty endpoint — a clean vertex's color is contractual
//!    and must never change.
//! 2. **Stamp-scoped fixpoint** — concurrently recolored vertices can
//!    re-collide; `OwnedResolve` rescans only the vertices stamped by
//!    the previous pass (a just-recolored vertex avoided every color it
//!    could see, so new conflicts need *both* endpoints fresh), the
//!    smaller id yields, and a quiet pass ends the loop. Exceeding
//!    [`crate::ColorOptions::max_iterations`] passes surfaces as the
//!    typed [`ColorError::MaxIterations`], never a panic.
//!
//! **The dirty-closure contract.** Only vertices on the engine's
//! worklist are ever recolored: the detect kernels draw candidates from
//! the worklist alone, and the fixpoint rescans stamped vertices, which
//! are themselves worklist recolors. Every vertex outside the dirty set
//! keeps its color bit-for-bit — the property `recolor_delta` sells to
//! its callers and the repair proptests pin down.
//!
//! **Flag block.** Both verdicts — "did the detect find any conflict"
//! and "did the last resolve pass change anything" — live in one
//! two-word buffer so each fixpoint pass reads both with a single
//! 8-byte d2h round trip; on a latency-dominated link one 8-byte read
//! costs half of two 4-byte ones.
//!
//! gcol::hot_path

use super::{pass_marker, GpuGraph, SpecGreedyDriver};
use crate::ColorError;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, Kernel, KernelCtx};

/// Word indices of the engine's two-word flag block.
const FLAG_CONFLICT: usize = 0;
const FLAG_CHANGED: usize = 1;

/// How far the recolor kernels' first-fit scan start is jittered in the
/// sharded exchange. Plain first-fit restarts every loser at color 1, so
/// two adjacent boundary vertices recoloring concurrently in different
/// shards re-collide with high probability and the exchange loop burns a
/// round per collision wave. Hashing the scan start into
/// `1..=JITTER_SPAN` decorrelates concurrent recolors (the scan wraps,
/// so the `max_degree + 1` color bound still holds) at the price of a
/// few extra colors on the recolored boundary — the classic distributed
/// coloring trade (Gebremedhin & Manne 2000; Bogle & Slota 2021 use
/// random offsets the same way). Single-device repair passes a span of
/// 0 (scan from color 1): its concurrent recolors are resolved
/// deterministically by the id tie-break in one or two extra passes, and
/// starting low keeps the repaired color count tight.
pub const JITTER_SPAN: u32 = 12;

/// First-fit with a jittered, wrapping scan start: marks neighbor colors
/// exactly like [`super::speculative_first_fit`], then takes the
/// smallest free color at or after `start`, wrapping past
/// `max_degree + 1` back to 1 — so the chosen color still never exceeds
/// the greedy bound.
#[inline]
fn jittered_first_fit(
    t: &mut impl KernelCtx,
    g: &GpuGraph,
    color: Buffer<u32>,
    v: u32,
    marker: u32,
    start: u32,
) -> u32 {
    let row_s = g.load_r(t, v as usize, false) as usize;
    let row_e = g.load_r(t, v as usize + 1, false) as usize;
    t.local_reserve(g.max_degree + 2);
    for e in row_s..row_e {
        let w = g.load_c(t, e, false);
        let cw = t.ld(color, w as usize);
        t.alu(2);
        // Out-of-range ghost colors cannot block the scan; see
        // `speculative_first_fit`.
        if (cw as usize) < g.max_degree + 2 {
            t.local_st(cw as usize, marker);
        }
    }
    // At most max_degree of the max_degree + 1 candidates are marked, so
    // the wrapping scan always terminates at a free color.
    let bound = g.max_degree as u32 + 1;
    let mut c = start.min(bound);
    while t.local_ld(c as usize) == marker {
        t.alu(2); // scan step + wrap test
        c += 1;
        if c > bound {
            c = 1;
        }
    }
    c
}

/// The recolor tail shared by every detect kernel: raise the conflict
/// flag, pick a replacement color (jitter-started when the engine asks
/// for it), publish it warp-synchronously, and stamp the vertex so the
/// fixpoint rescans it. Kept `#[inline]` so each kernel's traced op
/// sequence is exactly what the pre-extraction drivers emitted.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the launch buffers one-to-one
fn recolor_in_place(
    t: &mut impl KernelCtx,
    g: &GpuGraph,
    color: Buffer<u32>,
    stamp: Buffer<u32>,
    flags: Buffer<u32>,
    v: u32,
    pass: u32,
    jitter_span: u32,
) {
    t.st(flags, FLAG_CONFLICT, 1);
    let marker = pass_marker(pass, g.n, v);
    let start = if jitter_span == 0 {
        1
    } else {
        t.alu(2); // jitter hash
        let h = v.wrapping_mul(0x9E37_79B9) ^ pass.wrapping_mul(0x85EB_CA6B);
        1 + h % jitter_span
    };
    let c = jittered_first_fit(t, g, color, v, marker, start);
    t.st_warp(color, v as usize, c);
    t.st(stamp, v as usize, pass);
}

/// Detects cross-shard conflicts over the dirty-adjacent worklist and
/// *immediately* recolors each loser in place. The two halves fuse
/// soundly because the detect verdict only reads ghost colors (which no
/// thread writes here) and the recolor is the usual speculation: any
/// collision between concurrently recolored vertices is caught by the
/// [`OwnedResolve`] pass (owned-owned edges) or the next exchange round
/// (cut edges), exactly as with a separate recolor kernel — fusing just
/// drops one full kernel sweep per round. A loser's color collides with
/// a ghost neighbor of smaller global id; both shards sharing a cut edge
/// apply the same rule to their own endpoint, so exactly one of them
/// recolors. The worklist holds the owned vertices adjacent to a dirty
/// ghost (round 1: the whole boundary); interior vertices have no ghost
/// neighbors and never appear. Launched with the local grid geometry —
/// threads past `num_items` exit immediately.
struct CrossResolve {
    g: GpuGraph,
    color: Buffer<u32>,
    stamp: Buffer<u32>,
    /// Two-word flag block; a cross conflict raises word [`FLAG_CONFLICT`].
    flags: Buffer<u32>,
    gid: Buffer<u32>,
    /// Local ids of the dirty-adjacent boundary vertices (one thread each).
    worklist: Buffer<u32>,
    num_items: u32,
    num_owned: u32,
    pass: u32,
    jitter_span: u32,
}

impl Kernel for CrossResolve {
    fn name(&self) -> &'static str {
        "shard-cross-resolve"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id();
        if i >= self.num_items {
            return;
        }
        let v = t.ld(self.worklist, i as usize);
        let cv = t.ld(self.color, v as usize);
        let start = self.g.load_r(t, v as usize, false) as usize;
        let end = self.g.load_r(t, v as usize + 1, false) as usize;
        // Local adjacency is sorted and ghost ids come after every owned
        // id, so the ghost neighbors are the row's tail: walk backwards
        // and stop at the first owned neighbor instead of filtering the
        // whole row.
        for e in (start..end).rev() {
            let w = self.g.load_c(t, e, false);
            t.alu(3); // ghost test, color compare, loop bookkeeping
            if w < self.num_owned {
                return;
            }
            if cv == t.ld(self.color, w as usize)
                && t.ld(self.gid, v as usize) > t.ld(self.gid, w as usize)
            {
                // Loser: recolor right here (first conflict suffices).
                recolor_in_place(
                    t,
                    &self.g,
                    self.color,
                    self.stamp,
                    self.flags,
                    v,
                    self.pass,
                    self.jitter_span,
                );
                return;
            }
        }
    }
}

/// Detects conflicts incident to an explicitly *dirty* vertex set and
/// recolors the dirty loser in place — the incremental-recoloring
/// counterpart of [`CrossResolve`]. Every worklist vertex scans its full
/// adjacency; a conflict recolors `v` when the other endpoint is clean
/// (clean colors are contractual — only dirty vertices may move) or when
/// `v` holds the larger id of a dirty-dirty pair (so exactly one side of
/// each such edge recolors). Concurrent recolors that re-collide are
/// stamped and settled by the [`OwnedResolve`] fixpoint, as everywhere
/// else in the engine.
struct DirtyResolve {
    g: GpuGraph,
    color: Buffer<u32>,
    stamp: Buffer<u32>,
    /// Two-word flag block; a conflict raises word [`FLAG_CONFLICT`].
    flags: Buffer<u32>,
    /// Per-vertex membership of the dirty set (1 ⇔ dirty).
    member: Buffer<u32>,
    /// The dirty vertices (one thread each).
    worklist: Buffer<u32>,
    num_items: u32,
    pass: u32,
    jitter_span: u32,
}

impl Kernel for DirtyResolve {
    fn name(&self) -> &'static str {
        "repair-dirty-resolve"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id();
        if i >= self.num_items {
            return;
        }
        let v = t.ld(self.worklist, i as usize);
        let cv = t.ld(self.color, v as usize);
        let start = self.g.load_r(t, v as usize, false) as usize;
        let end = self.g.load_r(t, v as usize + 1, false) as usize;
        for e in start..end {
            let w = self.g.load_c(t, e, false);
            t.alu(3); // color compare, membership/id test, loop bookkeeping
            if cv == t.ld(self.color, w as usize) && (t.ld(self.member, w as usize) == 0 || v > w) {
                // First conflict suffices: the recolor avoids every
                // neighbor color `v` can see, not just `w`'s.
                recolor_in_place(
                    t,
                    &self.g,
                    self.color,
                    self.stamp,
                    self.flags,
                    v,
                    self.pass,
                    self.jitter_span,
                );
                return;
            }
        }
    }
}

/// Resolves conflicts among concurrently recolored vertices within the
/// engine's ownership range (edges with both endpoints `< num_owned`;
/// cut edges are the detect kernels' job, and the ghost frontier never
/// changes mid-round). Only vertices stamped by the previous resolve
/// (`pass`) rescan their adjacency: an earlier-colored vertex already
/// avoided every color visible to it, so a new conflict needs both
/// endpoints freshly recolored — and then both are stamped. The smaller
/// local id yields and recolors in place, stamped `pass + 1` so the next
/// pass rescans exactly this pass's recolors. Raises flag word
/// [`FLAG_CHANGED`] on any recolor, which is the fixpoint loop's
/// continue signal: a pass that stays quiet is the last one. Stamped
/// vertices are always detect-kernel or `OwnedResolve` writes, and all
/// draw from the worklist — so the rescan sweeps the worklist, not the
/// graph.
struct OwnedResolve {
    g: GpuGraph,
    color: Buffer<u32>,
    stamp: Buffer<u32>,
    flags: Buffer<u32>,
    worklist: Buffer<u32>,
    num_items: u32,
    pass: u32,
    num_owned: u32,
    jitter_span: u32,
}

impl Kernel for OwnedResolve {
    fn name(&self) -> &'static str {
        "shard-owned-resolve"
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id();
        if i >= self.num_items {
            return;
        }
        let v = t.ld(self.worklist, i as usize);
        t.alu(1);
        if t.ld(self.stamp, v as usize) != self.pass {
            return;
        }
        let cv = t.ld(self.color, v as usize);
        let start = self.g.load_r(t, v as usize, false) as usize;
        let end = self.g.load_r(t, v as usize + 1, false) as usize;
        for e in start..end {
            let w = self.g.load_c(t, e, false);
            t.alu(3);
            if w < self.num_owned && v < w && cv == t.ld(self.color, w as usize) {
                t.st(self.flags, FLAG_CHANGED, 1);
                let next = self.pass + 1;
                let marker = pass_marker(next, self.g.n, v);
                let start = if self.jitter_span == 0 {
                    1
                } else {
                    t.alu(2); // jitter hash
                    let h = v.wrapping_mul(0x9E37_79B9) ^ next.wrapping_mul(0x85EB_CA6B);
                    1 + h % self.jitter_span
                };
                let c = jittered_first_fit(t, &self.g, self.color, v, marker, start);
                t.st_warp(self.color, v as usize, c);
                t.st(self.stamp, v as usize, next);
                return;
            }
        }
    }
}

/// One device's repair state: the resident buffers the detect/resolve
/// kernels operate on, plus the monotone pass counter that keeps recolor
/// markers and stamps distinct across repair rounds. The engine does
/// *not* own the driver — callers keep their [`SpecGreedyDriver`] (and
/// with it the device memory, profile, and convergence budget) and lend
/// it to each call, so the engine composes with whatever allocation
/// order and upload charging the caller needs.
pub struct RepairEngine {
    /// The per-vertex color array (owned vertices first, then ghosts for
    /// the sharded caller).
    pub color: Buffer<u32>,
    /// Per-vertex recolor stamps (which pass last recolored the vertex).
    pub stamp: Buffer<u32>,
    /// Two-word flag block (`FLAG_CONFLICT`, `FLAG_CHANGED`).
    pub flags: Buffer<u32>,
    /// The dirty worklist; callers write the first `num_items` entries
    /// before each repair call.
    pub worklist: Buffer<u32>,
    /// Vertices `< num_owned` may be recolored by the fixpoint; the rest
    /// (the sharded caller's ghosts) are read-only.
    num_owned: u32,
    /// Grid size for every engine launch (the caller's local-coloring
    /// geometry; surplus threads exit on the worklist bound).
    launch_n: usize,
    /// First-fit scan-start jitter span; 0 scans from color 1.
    jitter_span: u32,
    /// Monotone pass counter across repair rounds (see
    /// [`super::pass_marker`]).
    pass_base: u32,
}

impl RepairEngine {
    /// Wraps caller-allocated buffers into an engine. The caller chooses
    /// the allocation order (the modeled timing is address-sensitive, so
    /// the sharded driver preserves its historical layout) and keeps the
    /// buffers for direct access; `launch_n` fixes the grid of every
    /// engine launch and `jitter_span` the recolor scan-start policy.
    pub fn from_parts(
        color: Buffer<u32>,
        stamp: Buffer<u32>,
        flags: Buffer<u32>,
        worklist: Buffer<u32>,
        num_owned: u32,
        launch_n: usize,
        jitter_span: u32,
    ) -> Self {
        Self {
            color,
            stamp,
            flags,
            worklist,
            num_owned,
            launch_n,
            jitter_span,
            pass_base: 0,
        }
    }

    /// One sharded ghost-exchange repair round: clears the conflict
    /// flag, launches `CrossResolve` over the first `num_items`
    /// worklist entries (the dirty-adjacent boundary vertices, staged by
    /// the caller), then runs the stamp-scoped fixpoint. Returns whether
    /// any cross conflict was found; if so the fixpoint has settled the
    /// recolors, exiting on the first quiet pass.
    pub fn repair_ghost_conflicts<B: Backend>(
        &mut self,
        d: &mut SpecGreedyDriver<'_, B>,
        gid: Buffer<u32>,
        num_items: u32,
    ) -> Result<bool, ColorError> {
        d.mem.store(self.flags, FLAG_CONFLICT, 0);
        d.launch(
            self.launch_n,
            &CrossResolve {
                g: d.gg,
                color: self.color,
                stamp: self.stamp,
                flags: self.flags,
                gid,
                worklist: self.worklist,
                num_items,
                num_owned: self.num_owned,
                pass: self.pass_base + 1,
                jitter_span: self.jitter_span,
            },
        );
        self.resolve_to_fixpoint(d, num_items)
    }

    /// One incremental repair round: clears the conflict flag, launches
    /// `DirtyResolve` over the first `num_items` worklist entries (the
    /// dirty vertices, staged by the caller, with `member` marking their
    /// characteristic vector), then runs the stamp-scoped fixpoint.
    /// Returns whether any conflict was found (and repaired).
    pub fn repair_dirty_set<B: Backend>(
        &mut self,
        d: &mut SpecGreedyDriver<'_, B>,
        member: Buffer<u32>,
        num_items: u32,
    ) -> Result<bool, ColorError> {
        d.mem.store(self.flags, FLAG_CONFLICT, 0);
        d.launch(
            self.launch_n,
            &DirtyResolve {
                g: d.gg,
                color: self.color,
                stamp: self.stamp,
                flags: self.flags,
                member,
                worklist: self.worklist,
                num_items,
                pass: self.pass_base + 1,
                jitter_span: self.jitter_span,
            },
        );
        self.resolve_to_fixpoint(d, num_items)
    }

    /// Passes consumed so far (each repair round advances the base past
    /// every stamp it used).
    pub fn passes(&self) -> usize {
        self.pass_base as usize
    }

    /// Resolves the current round's conflicts after a detect kernel ran
    /// (as pass 1, recoloring the losers in place), without a standalone
    /// conflict-flag round trip: pass 1 launches only the owned-detect
    /// rescan of the fresh recolors, and each pass's single 8-byte read
    /// returns both flag words — the detect verdict and the fixpoint
    /// continue signal. Returns whether the detect found a conflict; if
    /// so the loop has run the recolor to an intra-round fixpoint,
    /// exiting on the first quiet pass.
    fn resolve_to_fixpoint<B: Backend>(
        &mut self,
        d: &mut SpecGreedyDriver<'_, B>,
        num_items: u32,
    ) -> Result<bool, ColorError> {
        let (color, flags, stamp) = (self.color, self.flags, self.stamp);
        let (worklist, num_owned) = (self.worklist, self.num_owned);
        let (base, n_launch, jitter_span) = (self.pass_base, self.launch_n, self.jitter_span);
        let mut conflicted = false;
        let passes = d.run_passes(|d, pass| {
            d.mem.store(flags, FLAG_CHANGED, 0);
            // Pass `base + pass` rescans the previous resolve's recolors
            // and stamps its own recolors `base + pass + 1`.
            d.launch(
                n_launch,
                &OwnedResolve {
                    g: d.gg,
                    color,
                    stamp,
                    flags,
                    worklist,
                    num_items,
                    pass: base + pass,
                    num_owned,
                    jitter_span,
                },
            );
            d.transfer("exchange flags d2h", 8);
            if pass == 1 {
                conflicted = d.mem.load(flags, FLAG_CONFLICT) != 0;
                if !conflicted {
                    // The detect recolored nobody, so nothing needs a
                    // rescan.
                    return false;
                }
            }
            d.mem.load(flags, FLAG_CHANGED) != 0
        })?;
        // Stamps used this round reach `base + passes + 1`; keep the next
        // round's pass numbers (and markers) strictly above them.
        self.pass_base += passes as u32 + 1;
        Ok(conflicted)
    }
}

//! Incremental recoloring: repair a coloring after graph edits instead
//! of recoloring from scratch.
//!
//! Serving workloads mutate graphs (edge inserts/deletes) and a full
//! scheme rerun per edit batch throws away almost all prior work — Rokos
//! et al. showed repair-driven recoloring winning on multicore for
//! exactly this reason. [`recolor_delta`] takes the *post-edit* graph, a
//! coloring that was proper before the edits, and the **dirty set** (the
//! vertices [`Csr::apply_edits`] reported touched, or any superset of
//! the vertices whose colors can no longer be trusted), and runs the
//! extracted repair engine ([`super::repair`]): one scoped detect +
//! recolor sweep over the dirty worklist, then the stamp-scoped fixpoint
//! for concurrent-recolor collisions.
//!
//! **Contract.** Every vertex outside the dirty set keeps its color
//! bit-for-bit (clean colors are contractual — the engine's detect blames
//! the dirty endpoint of every conflict), and the result is proper
//! whenever the input coloring was proper on the subgraph induced by the
//! clean vertices — which edits guarantee: an inserted edge has both
//! endpoints dirty, a deleted edge cannot create a conflict, and
//! untouched edges were proper before. Repaired colors stay within the
//! greedy `max_degree + 1` bound, but the repair is *local*: against a
//! from-scratch rerun the color count may differ a little either way,
//! while the work is proportional to the dirty neighborhood instead of
//! the whole graph (the `incremental` bench experiment quantifies both).
//!
//! Cache semantics: a delta-repaired coloring is generally **not**
//! bit-identical to `Scheme::try_color` on the edited graph, so the
//! serving layer must never let repaired results into the
//! fingerprint-keyed result cache (see `gcol-serve`'s session state).

use super::repair::RepairEngine;
use super::SpecGreedyDriver;
use crate::{BackendKind, ColorError, ColorOptions, Coloring};
use gcol_graph::edit::EdgeEdit;
use gcol_graph::{Csr, VertexId};
use gcol_simt::{
    Backend, Device, NativeBackend, RunProfile, SanitizeBackend, SanitizerReport, SimtBackend,
};

/// Repairs `base` on the (already edited) graph `g`, recoloring only
/// vertices in `dirty`; every clean vertex keeps its color bit-for-bit.
/// `base.scheme` is carried through to the result (the repair itself is
/// scheme-agnostic), `iterations` counts the repair passes, and the
/// profile covers the repair work only. Runs on the backend
/// [`ColorOptions::backend`] selects — single-device always
/// (`num_shards` is ignored); under [`BackendKind::Sanitize`] harmful
/// findings go to stderr, or call [`recolor_delta_sanitized`] for the
/// report.
///
/// An empty (or fully redundant) dirty set returns the base coloring
/// unchanged with an empty profile. Errors: [`ColorError::InvalidOptions`]
/// when `base` does not cover `g` or a dirty id is out of range;
/// [`ColorError::MaxIterations`] if the repair fixpoint exceeds the
/// budget.
pub fn recolor_delta(
    g: &Csr,
    base: &Coloring,
    dirty: &[VertexId],
    dev: &Device,
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    let dirty = checked_dirty(g, base, dirty)?;
    if dirty.is_empty() {
        return Ok(unchanged(base));
    }
    match opts.backend {
        BackendKind::Simt => repair_on(
            &SimtBackend::new(dev, opts.exec_mode),
            g,
            base,
            &dirty,
            opts,
        ),
        BackendKind::Native => repair_on(&NativeBackend::new(), g, base, &dirty, opts),
        BackendKind::Sanitize => {
            let backend = SanitizeBackend::new(SimtBackend::new(dev, opts.exec_mode));
            backend.set_context(base.scheme.name());
            let coloring = repair_on(&backend, g, base, &dirty, opts)?;
            let report = backend.take_report();
            if !report.is_clean() {
                eprintln!(
                    "sanitizer: {} delta repair has harmful findings:\n{report}",
                    base.scheme
                );
            }
            Ok(coloring)
        }
    }
}

/// [`recolor_delta`] with every launch under shadow-memory analysis,
/// returning the merged [`SanitizerReport`] alongside the coloring
/// (empty for an empty dirty set — nothing launches).
pub fn recolor_delta_sanitized(
    g: &Csr,
    base: &Coloring,
    dirty: &[VertexId],
    dev: &Device,
    opts: &ColorOptions,
) -> Result<(Coloring, SanitizerReport), ColorError> {
    let dirty = checked_dirty(g, base, dirty)?;
    if dirty.is_empty() {
        return Ok((unchanged(base), SanitizerReport::default()));
    }
    let backend = SanitizeBackend::new(SimtBackend::new(dev, opts.exec_mode));
    backend.set_context(base.scheme.name());
    let coloring = repair_on(&backend, g, base, &dirty, opts)?;
    Ok((coloring, backend.take_report()))
}

/// Applies `edits` to a copy of `g` and repairs `base` over the touched
/// vertices in one call — the edit-batch convenience wrapper. Returns
/// the edited graph with its repaired coloring; rejected edit batches
/// surface as [`ColorError::InvalidOptions`].
pub fn recolor_after_edits(
    g: &Csr,
    base: &Coloring,
    edits: &[EdgeEdit],
    dev: &Device,
    opts: &ColorOptions,
) -> Result<(Csr, Coloring), ColorError> {
    let (edited, touched) = g
        .with_edits(edits)
        .map_err(|e| ColorError::InvalidOptions {
            scheme: base.scheme,
            reason: format!("edit batch rejected: {e}"),
        })?;
    let repaired = recolor_delta(&edited, base, &touched, dev, opts)?;
    Ok((edited, repaired))
}

/// Validates the inputs and returns the dirty set sorted and deduped.
fn checked_dirty(
    g: &Csr,
    base: &Coloring,
    dirty: &[VertexId],
) -> Result<Vec<VertexId>, ColorError> {
    let n = g.num_vertices();
    if base.colors.len() != n {
        return Err(ColorError::InvalidOptions {
            scheme: base.scheme,
            reason: format!(
                "base coloring covers {} vertices but the graph has {n}",
                base.colors.len()
            ),
        });
    }
    if let Some(&v) = dirty.iter().find(|&&v| v as usize >= n) {
        return Err(ColorError::InvalidOptions {
            scheme: base.scheme,
            reason: format!("dirty vertex {v} out of range (n = {n})"),
        });
    }
    let mut dirty = dirty.to_vec();
    dirty.sort_unstable();
    dirty.dedup();
    Ok(dirty)
}

/// The no-work result: base colors verbatim, zero passes, empty profile.
fn unchanged(base: &Coloring) -> Coloring {
    Coloring {
        scheme: base.scheme,
        colors: base.colors.clone(),
        num_colors: base.num_colors,
        iterations: 0,
        profile: RunProfile::new(),
    }
}

/// The backend-generic repair run: upload graph + base colors + dirty
/// membership/worklist, one engine round, read back.
fn repair_on<B: Backend>(
    backend: &B,
    g: &Csr,
    base: &Coloring,
    dirty: &[VertexId],
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    let mut d = SpecGreedyDriver::new(backend, base.scheme, g, opts);
    let color = d.alloc_vertex_buf();
    d.label(color, "repair-color");
    let flags = d.mem.alloc::<u32>(2);
    d.label(flags, "repair-flags");
    let stamp = d.alloc_vertex_buf();
    d.label(stamp, "repair-stamp");
    let member = d.alloc_vertex_buf();
    d.label(member, "repair-member");
    // Sized to the dirty set, written in full below — uninit so the
    // sanitizer proves the kernels stay inside the staged prefix.
    let worklist = d.mem.alloc_uninit::<u32>(dirty.len());
    d.label(worklist, "repair-dirty-worklist");
    d.mem.write_slice(color, &base.colors);
    for &v in dirty {
        d.mem.store(member, v as usize, 1);
    }
    d.mem.write_slice(worklist, dirty);
    d.charge_upload("delta repair h2d", &[color, member, worklist]);
    // Jitter span 0: single-device repairs settle concurrent collisions
    // deterministically via the id tie-break, and scanning from color 1
    // keeps the repaired palette tight. The launch grid covers exactly
    // the worklist — repair cost scales with the dirty set, not n.
    let mut engine = RepairEngine::from_parts(
        color,
        stamp,
        flags,
        worklist,
        g.num_vertices() as u32,
        dirty.len(),
        0,
    );
    engine.repair_dirty_set(&mut d, member, dirty.len() as u32)?;
    let iterations = engine.passes();
    Ok(d.finish(color, iterations))
}

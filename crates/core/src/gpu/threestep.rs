//! The 3-step GM baseline of Grosset et al. (PPoPP'11 poster; §II-C of the
//! paper): (1) partition the graph on the host and identify boundary
//! vertices, (2) color + detect conflicts on the GPU for a fixed number of
//! rounds — shipping the color array back to the host after every round,
//! as their framework's step boundaries do — and (3) resolve all remaining
//! conflicts *sequentially on the CPU*.
//!
//! This is the baseline whose Fig.-1 behavior motivates the paper: decent
//! color counts (it is greedy underneath) but *slower than the sequential
//! implementation* (≈0.66× on average), because the host round trips and
//! the sequential conflict scan + resolution dominate. Our model charges
//! exactly those components: PCIe transfers per round, the CPU-model cost
//! of the sequential conflict sweep (which must touch every edge) and of
//! recoloring the conflicted vertices.

use super::{pass_marker, speculative_first_fit, GpuGraph, SpecGreedyDriver};
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::check::Color;
use gcol_graph::partition::Partitioning;
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{grid_for, Backend, CpuModel, Kernel, KernelCtx};

/// GPU round, step 2a: first-fit color every uncolored vertex (plain `ld`
/// everywhere — the 2011 implementation predates `__ldg`).
struct StepColor {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    pass: u32,
}

impl Kernel for StepColor {
    fn name(&self) -> &'static str {
        "3step-color"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        t.alu(2);
        if t.ld(self.colored, v as usize) != 0 {
            return;
        }
        let marker = pass_marker(self.pass, self.g.n, v);
        let c = speculative_first_fit(t, &self.g, self.color, v, marker, false);
        t.st_warp(self.color, v as usize, c);
        t.st(self.colored, v as usize, 1);
    }
}

/// GPU round, step 2b: mark the smaller endpoint of each monochromatic
/// edge uncolored. Only boundary vertices can conflict across partitions,
/// but the 3-step framework still scans every vertex.
struct StepDetect {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
}

impl Kernel for StepDetect {
    fn name(&self) -> &'static str {
        "3step-detect"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        let cv = t.ld(self.color, v as usize);
        if cv == 0 {
            return;
        }
        let start = t.ld(self.g.r, v as usize) as usize;
        let end = t.ld(self.g.r, v as usize + 1) as usize;
        for e in start..end {
            let w = t.ld(self.g.c, e);
            t.alu(3);
            if v < w && cv == t.ld(self.color, w as usize) {
                t.st(self.colored, v as usize, 0);
                return;
            }
        }
    }
}

/// Runs the 3-step GM baseline: host partitioning, `opts.threestep_rounds`
/// GPU rounds with per-round host round trips, then sequential CPU
/// conflict resolution.
pub fn color_threestep<B: Backend>(
    g: &Csr,
    backend: &B,
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    let n = g.num_vertices();
    let cpu = CpuModel::xeon_e5_2670();
    let mut d = SpecGreedyDriver::new(backend, Scheme::ThreeStepGm, g, opts);

    // Step 1: host-side partitioning + boundary identification — one full
    // pass over the edges on the CPU.
    let grid = grid_for(n, opts.block_size);
    let _partitioning = Partitioning::contiguous(g, grid.max(1) as usize);
    d.profile.host(
        "partition + boundary detection",
        cpu.greedy_sweep_ms(n, g.num_edges()) * 0.5,
    );

    let color = d.alloc_vertex_buf();
    let colored = d.alloc_vertex_buf();
    d.label(color, "color");
    d.label(colored, "colored");
    // The 3-step framework always pays the graph upload inside its timed
    // region (its steps are separate host-driven stages).
    let up_bytes = d.upload_bytes(&[color, colored]);
    d.transfer("graph + colors h2d", up_bytes);

    let gg = d.gg;
    // Step 2: GPU rounds with a host round trip after each.
    let rounds = opts.threestep_rounds.max(1) as u32;
    for round in 0..rounds {
        d.launch(
            n,
            &StepColor {
                g: gg,
                color,
                colored,
                pass: round + 1,
            },
        );
        d.launch(
            n,
            &StepDetect {
                g: gg,
                color,
                colored,
            },
        );
        let back = 2 * n * 4; // colors + conflict flags
        d.transfer("colors + conflicts d2h", back);
        if round + 1 < rounds {
            // The framework re-stages the arrays before the next round.
            d.transfer("colors h2d", n * 4);
        }
    }

    // Step 3: sequential CPU conflict resolution. Finding the conflicts
    // requires scanning every edge on the host; each conflicted vertex is
    // then greedily recolored.
    let mut colors: Vec<Color> = d.read_colors(color);
    let colored_flags = if n == 0 {
        Vec::new()
    } else {
        d.mem.read_vec(colored)
    };
    let mut conflicted: Vec<u32> = (0..n as u32)
        .filter(|&v| colored_flags[v as usize] == 0 || colors[v as usize] == 0)
        .collect();
    // Deterministic host resolution in vertex order.
    conflicted.sort_unstable();
    let mut mask: Vec<u32> = vec![u32::MAX; g.max_degree() + 2];
    let mut resolved_edges = 0usize;
    for &v in &conflicted {
        for &w in g.neighbors(v) {
            mask[colors[w as usize] as usize] = v;
            resolved_edges += 1;
        }
        let mut c = 1usize;
        while mask[c] == v {
            c += 1;
        }
        colors[v as usize] = c as Color;
    }
    d.profile.host(
        "sequential conflict scan (all edges)",
        cpu.greedy_sweep_ms(n, g.num_edges()) * 0.8,
    );
    d.profile.host(
        "sequential conflict resolution",
        cpu.greedy_sweep_ms(conflicted.len(), resolved_edges),
    );

    let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
    Ok(Coloring {
        scheme: Scheme::ThreeStepGm,
        colors,
        num_colors,
        iterations: opts.threestep_rounds.max(1),
        profile: d.profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_simt::{Device, ExecMode, SimtBackend};

    fn opts() -> ColorOptions {
        ColorOptions::default()
    }

    fn det(dev: &Device) -> SimtBackend<'_> {
        SimtBackend::new(dev, ExecMode::Deterministic)
    }

    #[test]
    fn valid_on_assorted_graphs() {
        let dev = Device::tiny();
        for g in [
            cycle(60),
            complete(12),
            star(200),
            erdos_renyi(1000, 6000, 3),
        ] {
            let r = color_threestep(&g, &det(&dev), &opts()).unwrap();
            verify_coloring(&g, &r.colors).unwrap();
            assert!(r.num_colors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn greedy_quality() {
        let dev = Device::tiny();
        let g = erdos_renyi(2000, 16_000, 9);
        let seq = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::Natural);
        let r = color_threestep(&g, &det(&dev), &opts()).unwrap();
        assert!(
            (r.num_colors as i64 - seq.num_colors as i64).abs() <= 3,
            "3-step {} vs seq {}",
            r.num_colors,
            seq.num_colors
        );
    }

    #[test]
    fn pays_transfers_and_host_time() {
        // On the K20c the kernels themselves are fast; the host round
        // trips and the sequential step are what sink this baseline.
        let dev = Device::k20c();
        let g = erdos_renyi(3000, 20_000, 2);
        let r = color_threestep(&g, &det(&dev), &opts()).unwrap();
        assert!(r.profile.transfer_ms() > 0.0);
        assert!(r.profile.host_ms() > 0.0);
        assert!(r.profile.kernel_ms() > 0.0);
        assert!(r.profile.host_ms() + r.profile.transfer_ms() > r.profile.kernel_ms());
    }

    #[test]
    fn single_round_still_correct() {
        let dev = Device::tiny();
        let g = erdos_renyi(800, 5000, 4);
        let r = color_threestep(
            &g,
            &det(&dev),
            &ColorOptions {
                threestep_rounds: 1,
                ..opts()
            },
        )
        .unwrap();
        verify_coloring(&g, &r.colors).unwrap();
    }

    #[test]
    fn empty_graph() {
        let dev = Device::tiny();
        let r = color_threestep(&Csr::empty(0), &det(&dev), &opts()).unwrap();
        assert_eq!(r.num_colors, 0);
    }
}

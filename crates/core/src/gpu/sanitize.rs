//! Scheme-level entry point for the launch sanitizer.
//!
//! [`color_sanitized`] runs any [`Scheme`] with every kernel launch under
//! [`gcol_simt::SanitizeBackend`] shadow-memory analysis — single-device
//! or sharded (`ColorOptions::num_shards` ≥ 2, including the ghost
//! exchange rounds) — and returns the coloring *together with* the merged
//! [`SanitizerReport`]. `Scheme::try_color` with
//! [`BackendKind::Sanitize`](gcol_simt::BackendKind) routes here but
//! drops the report; call this directly to inspect findings.
//!
//! Execution and timing under the sanitizer are those of the plain simt
//! backend (the wrapper forwards every in-bounds access unchanged), so a
//! sanitized run's colors and modeled times match an unsanitized one
//! bit for bit on clean kernels.

use super::color_sharded;
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::{Device, SanitizeBackend, SanitizerReport, ShardedBackend, SimtBackend};

/// Runs `scheme` on `g` with every launch under shadow-memory analysis;
/// returns the coloring and the merged report (across all shard devices
/// when `opts.num_shards` ≥ 2). CPU schemes launch no kernels and come
/// back with an empty report.
pub fn color_sanitized(
    scheme: Scheme,
    g: &Csr,
    dev: &Device,
    opts: &ColorOptions,
) -> Result<(Coloring, SanitizerReport), ColorError> {
    if opts.num_shards > 1 && scheme.is_gpu() {
        let fleet = ShardedBackend::uniform(opts.num_shards, |_| {
            let b = SanitizeBackend::new(SimtBackend::new(dev, opts.exec_mode));
            b.set_context(scheme.name());
            b
        });
        let coloring = color_sharded(scheme, g, &fleet, opts)?;
        let mut report = SanitizerReport::default();
        for p in 0..fleet.num_devices() {
            report.merge(fleet.device(p).take_report());
        }
        return Ok((coloring, report));
    }
    let backend = SanitizeBackend::new(SimtBackend::new(dev, opts.exec_mode));
    backend.set_context(scheme.name());
    let coloring = scheme.try_color_on(&backend, g, opts)?;
    Ok((coloring, backend.take_report()))
}

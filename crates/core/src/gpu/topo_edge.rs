//! Edge-parallel conflict detection — the "further optimization … to
//! improve parallelism" the paper's §IV leaves as future work.
//!
//! The vertex-parallel detection kernel assigns one thread per vertex, so
//! a thread's work is its vertex's degree: on skewed graphs (rmat-g) a
//! hub serializes its warp. The classic fix (Merrill et al., the paper's
//! ref. \[24\]) is to parallelize over *edges*: one thread per CSR slot,
//! with a precomputed edge→source map, giving perfect balance at the cost
//! of `m` threads and one extra array. Coloring stays vertex-parallel
//! (the first-fit mask is inherently per-vertex); only detection — half
//! of every round's work — changes.

use super::{pass_marker, speculative_first_fit, GpuGraph, SpecGreedyDriver};
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, Kernel, KernelCtx};

/// Same coloring kernel as T-base.
struct EdgeVariantColor {
    g: GpuGraph,
    color: Buffer<u32>,
    colored: Buffer<u32>,
    changed: Buffer<u32>,
    pass: u32,
}

impl Kernel for EdgeVariantColor {
    fn name(&self) -> &'static str {
        "topo-color(edge-variant)"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let v = t.global_id();
        if v as usize >= self.g.n {
            return;
        }
        t.alu(2);
        if t.ld(self.colored, v as usize) != 0 {
            return;
        }
        let marker = pass_marker(self.pass, self.g.n, v);
        let c = speculative_first_fit(t, &self.g, self.color, v, marker, true);
        t.st_warp(self.color, v as usize, c);
        t.st(self.colored, v as usize, 1);
        t.st(self.changed, 0, 1);
    }
}

/// One thread per stored edge: perfectly balanced detection.
struct EdgeDetect {
    g: GpuGraph,
    /// Source vertex of each CSR slot (edge→row map).
    /// gcol-lint: readonly
    src: Buffer<u32>,
    color: Buffer<u32>,
    colored: Buffer<u32>,
}

impl Kernel for EdgeDetect {
    fn name(&self) -> &'static str {
        "edge-detect"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let e = t.global_id() as usize;
        if e >= self.g.m {
            return;
        }
        let u = t.ldg(self.src, e);
        let w = t.ldg(self.g.c, e);
        t.alu(2);
        if u >= w {
            return; // each undirected conflict handled from its smaller end
        }
        let cu = t.ld(self.color, u as usize);
        if cu != 0 && cu == t.ld(self.color, w as usize) {
            t.st(self.colored, u as usize, 0);
        }
    }
}

/// Expands `R` into the per-slot source-vertex array on the host (the
/// standard companion structure for edge-parallel kernels; built once,
/// uploaded with the graph).
fn edge_sources(g: &Csr) -> Vec<u32> {
    let mut src = vec![0u32; g.num_edges()];
    for v in g.vertices() {
        let lo = g.row_offsets()[v as usize] as usize;
        let hi = g.row_offsets()[v as usize + 1] as usize;
        src[lo..hi].fill(v);
    }
    src
}

/// Runs the topology-driven scheme with edge-parallel detection on
/// `backend`.
pub fn color_topo_edge<B: Backend>(
    g: &Csr,
    backend: &B,
    opts: &ColorOptions,
) -> Result<Coloring, ColorError> {
    let mut d = SpecGreedyDriver::new(backend, Scheme::TopoEdge, g, opts);
    let src = d.mem.alloc_from_slice(&edge_sources(g));
    let color = d.alloc_vertex_buf();
    let colored = d.alloc_vertex_buf();
    let changed = d.alloc_flag();
    d.label(src, "edge-src");
    d.label(color, "color");
    d.label(colored, "colored");
    d.label(changed, "changed");

    let gg = d.gg;
    let n = g.num_vertices();
    let m = g.num_edges();
    let iterations = d.run_passes(|d, pass| {
        d.mem.store(changed, 0, 0);
        d.launch(
            n,
            &EdgeVariantColor {
                g: gg,
                color,
                colored,
                changed,
                pass,
            },
        );
        d.launch(
            m,
            &EdgeDetect {
                g: gg,
                src,
                color,
                colored,
            },
        );
        d.read_flag("changed flag d2h", changed) != 0
    })?;
    Ok(d.finish(color, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, erdos_renyi, star};
    use gcol_graph::gen::{rmat, RmatParams};
    use gcol_simt::{Device, ExecMode, SimtBackend};

    fn opts() -> ColorOptions {
        ColorOptions::default()
    }

    fn det(dev: &Device) -> SimtBackend<'_> {
        SimtBackend::new(dev, ExecMode::Deterministic)
    }

    #[test]
    fn edge_sources_expand_correctly() {
        let g = star(5);
        // Vertex 0 has 4 slots, leaves one each.
        assert_eq!(edge_sources(&g), vec![0, 0, 0, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn colors_properly() {
        let dev = Device::tiny();
        for g in [complete(14), star(200), erdos_renyi(900, 5400, 3)] {
            let r = color_topo_edge(&g, &det(&dev), &opts()).unwrap();
            verify_coloring(&g, &r.colors).unwrap();
            assert!(r.num_colors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn same_quality_as_vertex_parallel_topo() {
        let dev = Device::tiny();
        let g = erdos_renyi(1200, 7200, 8);
        let edge = color_topo_edge(&g, &det(&dev), &opts()).unwrap();
        let vertex = super::super::topo::color_topo(&g, &det(&dev), &opts(), true).unwrap();
        // Identical coloring kernels ⇒ identical colors in deterministic
        // mode (detection order differs but flags the same losers).
        assert_eq!(edge.num_colors, vertex.num_colors);
    }

    #[test]
    fn balances_hub_detection() {
        // A skewed graph: edge-parallel detection must not be dominated by
        // the hub's chain; compare the detect kernels' time directly.
        let dev = Device::k20c();
        let g = rmat(RmatParams::skewed(12, 12), 7);
        let edge = color_topo_edge(&g, &det(&dev), &opts()).unwrap();
        let vertex = super::super::topo::color_topo(&g, &det(&dev), &opts(), true).unwrap();
        let detect_ms = |c: &Coloring, name: &str| -> f64 {
            c.profile
                .phases
                .iter()
                .filter_map(|p| match p {
                    gcol_simt::Phase::Kernel(k) if k.name.contains(name) => Some(k.time_ms),
                    _ => None,
                })
                .sum()
        };
        let e = detect_ms(&edge, "edge-detect");
        let v = detect_ms(&vertex, "topo-detect");
        assert!(
            e < v,
            "edge-parallel detection should win on skewed graphs: \
             {e:.4} ms vs {v:.4} ms"
        );
    }

    #[test]
    fn empty_graph() {
        let dev = Device::tiny();
        let r = color_topo_edge(&Csr::empty(0), &det(&dev), &opts()).unwrap();
        assert_eq!(r.num_colors, 0);
    }
}

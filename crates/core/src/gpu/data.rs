//! Algorithm 5: data-driven GPU graph coloring (D-base / D-ldg).
//!
//! The coloring kernel launches one thread per *worklist entry* (perfect
//! work efficiency); conflict detection is a cooperative kernel that
//! assembles the next worklist with a block-wide prefix sum and a single
//! global atomic per block (§III-C "Atomic Operation Reduction", Fig. 5).
//! The two worklists are double-buffered and swapped by handle — no copy —
//! exactly as the paper describes.

use super::{pass_marker, speculative_first_fit, GpuGraph, SpecGreedyDriver};
use crate::{ColorError, ColorOptions, Coloring, Scheme};
use gcol_graph::Csr;
use gcol_simt::mem::Buffer;
use gcol_simt::{Backend, CoopKernel, Kernel, KernelCtx};

/// Fills the initial worklist with the identity permutation (`W_in ← V`).
struct InitWorklist {
    w: Buffer<u32>,
}

impl Kernel for InitWorklist {
    fn name(&self) -> &'static str {
        "init-worklist"
    }
    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i < self.w.len() {
            t.alu(1);
            t.st(self.w, i, i as u32);
        }
    }
}

/// Lines 4–10 of Algorithm 5: speculatively color the worklist.
struct DataColor {
    g: GpuGraph,
    color: Buffer<u32>,
    w_in: Buffer<u32>,
    len: usize,
    pass: u32,
    use_ldg: bool,
}

impl Kernel for DataColor {
    fn name(&self) -> &'static str {
        if self.use_ldg {
            "data-color-ldg"
        } else {
            "data-color"
        }
    }

    fn run(&self, t: &mut impl KernelCtx) {
        let i = t.global_id() as usize;
        if i >= self.len {
            return;
        }
        let v = t.ld(self.w_in, i);
        let marker = pass_marker(self.pass, self.g.n, v);
        let c = speculative_first_fit(t, &self.g, self.color, v, marker, self.use_ldg);
        t.st_warp(self.color, v as usize, c);
    }
}

/// Lines 12–18 of Algorithm 5: detect conflicts and compact the losers
/// into `W_out` via block scan + one atomic per block.
///
/// Detection scans only the vertices colored this round (the worklist),
/// following Çatalyürek et al. (ref. \[10\], the algorithm the paper derives
/// from): a vertex colored this round saw every *earlier*-round color when
/// it chose, so monochromatic edges can only join two same-round vertices
/// — and both endpoints are in the worklist, so scanning the worklist
/// finds every conflict and the `v < w` rule re-queues exactly one of
/// them. This is precisely the work-efficiency that makes the data-driven
/// scheme outrun the topology-driven one on the sparse graphs (§IV).
struct DetectCompact {
    g: GpuGraph,
    color: Buffer<u32>,
    w_in: Buffer<u32>,
    len: usize,
    w_out: Buffer<u32>,
    use_ldg: bool,
}

impl CoopKernel for DetectCompact {
    /// (vertex, wants-requeue).
    type Carry = (u32, bool);

    fn name(&self) -> &'static str {
        if self.use_ldg {
            "detect-compact-ldg"
        } else {
            "detect-compact"
        }
    }

    fn count(&self, t: &mut impl KernelCtx) -> (Self::Carry, u32) {
        let i = t.global_id() as usize;
        if i >= self.len {
            return ((0, false), 0);
        }
        let v = t.ld(self.w_in, i);
        let cv = t.ld(self.color, v as usize);
        if cv == 0 {
            return ((v, false), 0);
        }
        let start = self.g.load_r(t, v as usize, self.use_ldg) as usize;
        let end = self.g.load_r(t, v as usize + 1, self.use_ldg) as usize;
        for e in start..end {
            let w = self.g.load_c(t, e, self.use_ldg);
            t.alu(3);
            if v < w && cv == t.ld(self.color, w as usize) {
                return ((v, true), 1);
            }
        }
        ((v, false), 0)
    }

    fn emit(&self, t: &mut impl KernelCtx, carry: Self::Carry, dst: u32) {
        let (v, requeue) = carry;
        if requeue {
            t.st(self.w_out, dst as usize, v);
        }
    }
}

/// Runs the full data-driven scheme on `backend`.
pub fn color_data<B: Backend>(
    g: &Csr,
    backend: &B,
    opts: &ColorOptions,
    use_ldg: bool,
) -> Result<Coloring, ColorError> {
    let scheme = if use_ldg {
        Scheme::DataLdg
    } else {
        Scheme::DataBase
    };
    let n = g.num_vertices();
    let mut d = SpecGreedyDriver::new(backend, scheme, g, opts);
    let color = d.alloc_vertex_buf();
    // Worklists are write-before-read by construction; allocating them
    // uninitialized lets the sanitizer check that claim.
    let mut w_in = d.alloc_vertex_buf_uninit();
    let mut w_out = d.alloc_vertex_buf_uninit();
    d.label(color, "color");
    d.label(w_in, "worklist-a");
    d.label(w_out, "worklist-b");
    d.charge_upload("graph h2d", &[color]);

    d.launch(n, &InitWorklist { w: w_in });

    let gg = d.gg;
    let mut len = n;
    let iterations = if len == 0 {
        0
    } else {
        d.run_passes(|d, pass| {
            // Threads in proportion to the worklist — the work-efficiency
            // win over the topology-driven scheme.
            d.launch(
                len,
                &DataColor {
                    g: gg,
                    color,
                    w_in,
                    len,
                    pass,
                    use_ldg,
                },
            );
            let total = d.launch_coop(
                len,
                &DetectCompact {
                    g: gg,
                    color,
                    w_in,
                    len,
                    w_out,
                    use_ldg,
                },
            );
            // Worklist length comes back over PCIe (4 bytes), like reading
            // the global counter the per-block atomics incremented.
            d.transfer("worklist size d2h", 4);
            len = total as usize;
            std::mem::swap(&mut w_in, &mut w_out); // the pointer swap of line 19
            len > 0
        })?
    };
    Ok(d.finish(color, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{grid2d, rmat, RmatParams, StencilKind};
    use gcol_simt::{grid_for, Device, ExecMode, SimtBackend};

    fn opts() -> ColorOptions {
        ColorOptions::default()
    }

    fn det(dev: &Device) -> SimtBackend<'_> {
        SimtBackend::new(dev, ExecMode::Deterministic)
    }

    #[test]
    fn valid_on_assorted_graphs() {
        let dev = Device::tiny();
        for g in [
            cycle(90),
            complete(15),
            star(256),
            erdos_renyi(700, 3500, 2),
            grid2d(20, 20, StencilKind::NinePoint),
        ] {
            for use_ldg in [false, true] {
                let r = color_data(&g, &det(&dev), &opts(), use_ldg).unwrap();
                verify_coloring(&g, &r.colors).unwrap();
                assert!(r.num_colors <= g.max_degree() + 1);
            }
        }
    }

    #[test]
    fn matches_topology_driven_in_deterministic_mode_quality() {
        let dev = Device::tiny();
        let g = rmat(RmatParams::erdos_renyi(10, 10), 6);
        let t = super::super::topo::color_topo(&g, &det(&dev), &opts(), false).unwrap();
        let d = color_data(&g, &det(&dev), &opts(), false).unwrap();
        verify_coloring(&g, &d.colors).unwrap();
        // Both are SGR; counts land within a few colors of each other.
        assert!(
            (t.num_colors as i64 - d.num_colors as i64).abs() <= 3,
            "topo {} vs data {}",
            t.num_colors,
            d.num_colors
        );
    }

    #[test]
    fn uses_per_block_atomics_not_per_thread() {
        let dev = Device::tiny();
        let g = erdos_renyi(2000, 10_000, 3);
        let r = color_data(&g, &det(&dev), &opts(), false).unwrap();
        verify_coloring(&g, &r.colors).unwrap();
        // Atomics across all kernels should be ~one per block per detect
        // pass, far below one per vertex per pass.
        let atomics: u64 = r
            .profile
            .phases
            .iter()
            .filter_map(|p| match p {
                gcol_simt::Phase::Kernel(k) => Some(k.atomics),
                _ => None,
            })
            .sum();
        let blocks_per_pass = grid_for(2000, 128) as u64;
        assert!(
            atomics <= blocks_per_pass * r.iterations as u64,
            "atomics {atomics} exceed one per block per pass"
        );
    }

    #[test]
    fn empty_graph_and_singleton() {
        let dev = Device::tiny();
        let r = color_data(&Csr::empty(0), &det(&dev), &opts(), false).unwrap();
        assert_eq!(r.num_colors, 0);
        let r = color_data(&Csr::empty(3), &det(&dev), &opts(), false).unwrap();
        assert_eq!(r.colors, vec![1, 1, 1]);
    }

    #[test]
    fn deterministic_reproducible() {
        let dev = Device::tiny();
        let g = erdos_renyi(600, 3000, 8);
        let a = color_data(&g, &det(&dev), &opts(), true).unwrap();
        let b = color_data(&g, &det(&dev), &opts(), true).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn parallel_mode_valid() {
        let dev = Device::tiny();
        let g = erdos_renyi(1500, 9000, 13);
        let backend = SimtBackend::new(&dev, ExecMode::Parallel);
        let r = color_data(&g, &backend, &opts(), false).unwrap();
        verify_coloring(&g, &r.colors).unwrap();
    }
}

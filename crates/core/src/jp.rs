//! Algorithm 3: the Jones–Plassmann maximal-independent-set coloring on
//! multicore — the algorithmic family csrcolor derives from.
//!
//! Every round, uncolored vertices whose random priority beats every
//! *uncolored* neighbor's form an independent set and all receive the
//! round's color. (The paper's listing compares against all of `adj(v)`;
//! restricting to uncolored neighbors is the standard Luby/JP reading —
//! comparing against settled neighbors would deadlock — and matches
//! ref. \[18\].) Priorities are hashes of the vertex id, with the id itself
//! as a tie-break, so the algorithm is deterministic for a given seed.

use crate::hash::mix_hash;
use gcol_graph::check::Color;
use gcol_graph::{Csr, VertexId};
use rayon::prelude::*;

/// Result of a JP run.
#[derive(Debug, Clone)]
pub struct JpResult {
    /// Per-vertex colors, 1-based. Each round's independent set shares one
    /// color, so counts are typically far above the greedy schemes —
    /// exactly the quality gap Figs. 1(b)/6 show for MIS methods.
    pub colors: Vec<Color>,
    /// Number of colors used (== number of rounds).
    pub num_colors: usize,
}

/// Priority of `v`: hashed, with id tie-break via lexicographic pairs.
#[inline]
fn priority(seed: u64, v: VertexId) -> (u32, VertexId) {
    (mix_hash(seed, 0, v), v)
}

/// Jones–Plassmann coloring. `max_rounds` guards non-termination.
pub fn jp_parallel(g: &Csr, seed: u64, max_rounds: usize) -> JpResult {
    let n = g.num_vertices();
    let mut colors = vec![0 as Color; n];
    let mut worklist: Vec<VertexId> = (0..n as VertexId).collect();
    let mut round = 0u32;

    while !worklist.is_empty() {
        round += 1;
        assert!(
            (round as usize) <= max_rounds,
            "JP did not converge within {max_rounds} rounds"
        );
        let colors_ref = &colors;
        let (winners, losers): (Vec<VertexId>, Vec<VertexId>) =
            worklist.par_iter().partition_map(|&v| {
                let pv = priority(seed, v);
                let wins = g
                    .neighbors(v)
                    .iter()
                    .all(|&w| colors_ref[w as usize] != 0 || priority(seed, w) < pv);
                if wins {
                    rayon::iter::Either::Left(v)
                } else {
                    rayon::iter::Either::Right(v)
                }
            });
        for v in winners {
            colors[v as usize] = round;
        }
        worklist = losers;
    }

    JpResult {
        colors,
        num_colors: round as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{rmat, RmatParams};

    #[test]
    fn produces_valid_colorings() {
        for g in [
            cycle(64),
            complete(12),
            star(100),
            erdos_renyi(1000, 5000, 2),
        ] {
            let r = jp_parallel(&g, 42, 10_000);
            verify_coloring(&g, &r.colors).unwrap();
        }
    }

    #[test]
    fn complete_graph_needs_n_rounds() {
        let g = complete(9);
        let r = jp_parallel(&g, 1, 100);
        assert_eq!(r.num_colors, 9);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(500, 2500, 3);
        let a = jp_parallel(&g, 7, 1000);
        let b = jp_parallel(&g, 7, 1000);
        assert_eq!(a.colors, b.colors);
    }

    #[test]
    fn uses_more_colors_than_greedy_on_random_graphs() {
        // The MIS quality gap of Fig. 6 — visible already at small scale.
        let g = rmat(RmatParams::erdos_renyi(11, 16), 4);
        let jp = jp_parallel(&g, 5, 10_000);
        let seq = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::Natural);
        assert!(
            jp.num_colors > seq.num_colors,
            "jp {} vs seq {}",
            jp.num_colors,
            seq.num_colors
        );
    }

    #[test]
    fn empty_graph() {
        let r = jp_parallel(&Csr::empty(0), 1, 10);
        assert_eq!(r.num_colors, 0);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn round_guard_fires() {
        jp_parallel(&complete(5), 1, 0);
    }
}

//! Coloring jobs as first-class values, plus the content fingerprint a
//! result cache keys on.
//!
//! A coloring run is a pure function of the CSR bytes and the knobs that
//! can change its output: the scheme, the execution backend, the shard
//! count, the hash seed, the block size, the execution mode, the
//! ghost-exchange wire format and the scheme-specific tuning options.
//! [`JobSpec`] packages those knobs, and
//! [`JobSpec::fingerprint`] folds them together with
//! [`Csr::content_fingerprint`] into a 128-bit [`Fingerprint`]: equal
//! fingerprints mean the runs are interchangeable, so a service may
//! coalesce duplicate in-flight requests onto one execution and serve
//! repeats from a cache without changing any observable result.
//!
//! Deliberately *excluded* from the fingerprint: `max_iterations` (a
//! safety valve — a run that converged under a lower cap returns the
//! same coloring under a higher one; runs that *fail* are not cached),
//! `charge_h2d` and everything else that only shifts the modeled
//! timeline without touching the colors. Two jobs that fingerprint equal
//! may therefore report different modeled times only through options the
//! cache does not key on; callers that need per-option timelines should
//! bypass the cache.
//!
//! One modeled-timing knob *is* keyed: [`crate::ColorOptions::exchange`].
//! The sharded colors are identical under both wire formats, but the
//! cached [`crate::Coloring`] carries the run's exchange-traffic profile
//! and the serving layer reports that modeled time to clients who chose
//! the format explicitly — serving a dense run's timeline for a delta
//! request would misreport the very number the knob exists to compare.

use crate::{ColorOptions, Scheme};
use gcol_graph::ordering::Ordering;
use gcol_graph::Csr;

/// A 128-bit job fingerprint: the cache/coalescing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Everything about a coloring request except the graph itself.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The scheme to run.
    pub scheme: Scheme,
    /// Its options (backend, shards, seed, block size, …).
    pub opts: ColorOptions,
}

impl JobSpec {
    /// A job running `scheme` with default options.
    pub fn new(scheme: Scheme) -> Self {
        Self {
            scheme,
            opts: ColorOptions::default(),
        }
    }

    /// The cache key for this spec applied to `g`. See the module docs
    /// for exactly what is (and is not) folded in.
    pub fn fingerprint(&self, g: &Csr) -> Fingerprint {
        self.fingerprint_of(g.content_fingerprint())
    }

    /// [`JobSpec::fingerprint`] from a precomputed graph fingerprint —
    /// lets a server hash a large graph once and fingerprint many specs
    /// against it.
    pub fn fingerprint_of(&self, graph_fp: u64) -> Fingerprint {
        #[inline]
        fn mix(h: u64, w: u64) -> u64 {
            // splitmix64 finalizer over the running state — the same
            // avalanche core the graph fingerprint uses.
            let mut z = h ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        #[inline]
        fn fold_str(mut h: u64, s: &str) -> u64 {
            h = mix(h, s.len() as u64);
            for b in s.as_bytes() {
                h = mix(h, *b as u64);
            }
            h
        }
        let o = &self.opts;
        let mut h = mix(0x6A6F_622D_6670_2D31, graph_fp); // "job-fp-1"
        h = fold_str(h, self.scheme.name());
        h = fold_str(h, o.backend.name());
        h = mix(h, o.num_shards as u64);
        h = mix(h, o.seed);
        h = mix(h, o.block_size as u64);
        h = mix(h, o.num_hashes as u64);
        h = mix(
            h,
            match o.exec_mode {
                gcol_simt::ExecMode::Parallel => 1,
                gcol_simt::ExecMode::Deterministic => 2,
            },
        );
        h = mix(
            h,
            match o.exchange {
                crate::ExchangeKind::Dense => 1,
                crate::ExchangeKind::Delta => 2,
            },
        );
        h = mix(
            h,
            match o.ordering {
                Ordering::Natural => 1,
                Ordering::LargestDegreeFirst => 2,
                Ordering::SmallestDegreeLast => 3,
                Ordering::Random(s) => mix(4, s),
            },
        );
        h = mix(h, o.threestep_rounds as u64);
        // Second lane: re-fold the tail over a different initial state so
        // the two halves are (effectively) independent 64-bit hashes.
        let lo = mix(h, 0x6C6F);
        let hi = mix(mix(0x6869, graph_fp), h);
        Fingerprint((hi as u128) << 64 | lo as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_core_test_graph::fig2;

    // A tiny local helper namespace so the tests read clearly.
    mod gcol_core_test_graph {
        use gcol_graph::Csr;
        pub fn fig2() -> Csr {
            Csr::new(
                vec![0, 2, 6, 9, 11, 14],
                vec![1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3],
            )
        }
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let g = fig2();
        let spec = JobSpec::new(Scheme::TopoBase);
        assert_eq!(spec.fingerprint(&g), spec.fingerprint(&g));
        assert_eq!(
            spec.fingerprint(&g),
            spec.fingerprint_of(g.content_fingerprint())
        );
    }

    #[test]
    fn fingerprint_separates_every_keyed_option() {
        let g = fig2();
        let base = JobSpec::new(Scheme::TopoBase);
        let fp = base.fingerprint(&g);
        let variants = [
            JobSpec {
                scheme: Scheme::DataBase,
                opts: base.opts.clone(),
            },
            JobSpec {
                scheme: Scheme::TopoBase,
                opts: base.opts.clone().with_seed(1),
            },
            JobSpec {
                scheme: Scheme::TopoBase,
                opts: base.opts.clone().with_shards(2),
            },
            JobSpec {
                scheme: Scheme::TopoBase,
                opts: base.opts.clone().with_backend(crate::BackendKind::Native),
            },
            JobSpec {
                scheme: Scheme::TopoBase,
                opts: base.opts.clone().with_block_size(256),
            },
            JobSpec {
                scheme: Scheme::TopoBase,
                opts: base.opts.clone().with_num_hashes(4),
            },
            JobSpec {
                scheme: Scheme::TopoBase,
                opts: base
                    .opts
                    .clone()
                    .with_exec_mode(gcol_simt::ExecMode::Parallel),
            },
            JobSpec {
                scheme: Scheme::TopoBase,
                opts: base.opts.clone().with_exchange(crate::ExchangeKind::Dense),
            },
        ];
        for v in &variants {
            assert_ne!(fp, v.fingerprint(&g), "not separated: {v:?}");
        }
        // And a different graph separates too.
        let g2 = Csr::new(vec![0, 1, 2], vec![1, 0]);
        assert_ne!(fp, base.fingerprint(&g2));
    }

    #[test]
    fn fingerprint_ignores_unkeyed_options() {
        let g = fig2();
        let a = JobSpec::new(Scheme::TopoBase);
        let mut b = JobSpec::new(Scheme::TopoBase);
        b.opts.max_iterations = 7;
        b.opts.charge_h2d = true;
        assert_eq!(a.fingerprint(&g), b.fingerprint(&g));
    }

    #[test]
    fn display_is_32_hex_digits() {
        let g = fig2();
        let s = JobSpec::new(Scheme::CsrColor).fingerprint(&g).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

//! Algorithm 1: the sequential greedy coloring — the baseline every
//! speedup in the paper is normalized to.
//!
//! `colorMask` is a color-indexed array; marking impermissible colors with
//! the current vertex id (rather than a boolean) means the mask never needs
//! re-initialization across vertices — the trick §II-A highlights.

use gcol_graph::check::Color;
use gcol_graph::ordering::{order_vertices, Ordering};
use gcol_graph::Csr;

/// Result of a sequential greedy run.
#[derive(Debug, Clone)]
pub struct SeqResult {
    /// Per-vertex colors, 1-based.
    pub colors: Vec<Color>,
    /// Largest color used (== number of colors, since first-fit colors are
    /// contiguous from 1).
    pub num_colors: usize,
}

/// First-fit greedy coloring in the given vertex order (Algorithm 1; the
/// paper's FF uses [`Ordering::Natural`]).
pub fn greedy_seq(g: &Csr, order: Ordering) -> SeqResult {
    let n = g.num_vertices();
    let mut colors = vec![0 as Color; n];
    // Colors are 1-based and at most max_degree + 1 are ever needed, so
    // mask indices range over 0..=max_degree + 1.
    let mut mask: Vec<u32> = vec![u32::MAX; g.max_degree() + 2];
    let order = order_vertices(g, order);
    let mut num_colors = 0usize;
    for v in order {
        // Mark neighbor colors as impermissible using v as the marker.
        for &w in g.neighbors(v) {
            mask[colors[w as usize] as usize] = v;
        }
        // Smallest positive index not marked by v.
        let mut c = 1usize;
        while mask[c] == v {
            c += 1;
        }
        colors[v as usize] = c as Color;
        num_colors = num_colors.max(c);
    }
    SeqResult { colors, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, path, star};
    use gcol_graph::gen::{rmat, RmatParams};

    #[test]
    fn colors_path_with_two() {
        let r = greedy_seq(&path(10), Ordering::Natural);
        verify_coloring(&path(10), &r.colors).unwrap();
        assert_eq!(r.num_colors, 2);
    }

    #[test]
    fn colors_even_cycle_with_two_odd_with_three() {
        let even = greedy_seq(&cycle(8), Ordering::Natural);
        assert_eq!(even.num_colors, 2);
        let odd = greedy_seq(&cycle(9), Ordering::Natural);
        assert_eq!(odd.num_colors, 3);
        verify_coloring(&cycle(9), &odd.colors).unwrap();
    }

    #[test]
    fn complete_graph_needs_n() {
        let g = complete(7);
        let r = greedy_seq(&g, Ordering::Natural);
        verify_coloring(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, 7);
    }

    #[test]
    fn star_needs_two() {
        let g = star(50);
        let r = greedy_seq(&g, Ordering::Natural);
        verify_coloring(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, 2);
    }

    #[test]
    fn empty_and_singleton() {
        let g = Csr::empty(0);
        assert_eq!(greedy_seq(&g, Ordering::Natural).num_colors, 0);
        let g = Csr::empty(5);
        let r = greedy_seq(&g, Ordering::Natural);
        assert_eq!(r.num_colors, 1);
        assert!(r.colors.iter().all(|&c| c == 1));
    }

    #[test]
    fn greedy_respects_brooks_like_bound() {
        let g = rmat(RmatParams::skewed(10, 8), 3);
        let r = greedy_seq(&g, Ordering::Natural);
        verify_coloring(&g, &r.colors).unwrap();
        assert!(r.num_colors <= g.max_degree() + 1);
    }

    #[test]
    fn sdl_ordering_never_worse_than_degeneracy_bound() {
        let g = rmat(RmatParams::erdos_renyi(10, 8), 5);
        let r = greedy_seq(&g, Ordering::SmallestDegreeLast);
        verify_coloring(&g, &r.colors).unwrap();
        assert!(r.num_colors <= gcol_graph::ordering::degeneracy(&g) + 1);
    }

    #[test]
    fn num_colors_equals_max_color() {
        let g = rmat(RmatParams::erdos_renyi(9, 6), 7);
        let r = greedy_seq(&g, Ordering::Natural);
        assert_eq!(r.num_colors as u32, r.colors.iter().copied().max().unwrap());
    }
}

//! Color balancing — the PDR(k)-style post-process of Gjertsen, Jones &
//! Plassmann (the paper's ref. \[19\], mentioned in §II-B).
//!
//! First-fit colorings are heavily skewed: color 1 is huge, the last color
//! tiny. When colors drive scheduling (one parallel wave per color), the
//! skew is harmless, but when color classes map to *resources* — processors
//! in Gjertsen's setting — balance matters. This pass greedily moves
//! vertices from over-full classes into the smallest permissible class
//! without increasing the color count, and never invalidates the coloring.

use gcol_graph::check::Color;
use gcol_graph::Csr;

/// Summary of a balancing pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceOutcome {
    /// Vertices that changed color.
    pub moved: usize,
    /// Population standard deviation of class sizes before.
    pub stddev_before: f64,
    /// Population standard deviation of class sizes after.
    pub stddev_after: f64,
}

fn class_sizes(colors: &[Color], num_colors: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; num_colors + 1];
    for &c in colors {
        sizes[c as usize] += 1;
    }
    sizes
}

fn stddev(sizes: &[usize]) -> f64 {
    // Skip the unused slot 0.
    let k = sizes.len() - 1;
    if k == 0 {
        return 0.0;
    }
    let mean = sizes[1..].iter().sum::<usize>() as f64 / k as f64;
    (sizes[1..]
        .iter()
        .map(|&s| {
            let d = s as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / k as f64)
        .sqrt()
}

/// Rebalances `colors` in place (must be a proper coloring of `g` using
/// colors `1..=num_colors`). Performs `sweeps` passes over the vertices in
/// decreasing-class-size order; each vertex may move to the currently
/// smallest class among its permissible colors.
pub fn balance_colors(
    g: &Csr,
    colors: &mut [Color],
    num_colors: usize,
    sweeps: usize,
) -> BalanceOutcome {
    assert_eq!(colors.len(), g.num_vertices());
    let mut sizes = class_sizes(colors, num_colors);
    let before = stddev(&sizes);
    let mut moved = 0usize;
    let mut forbidden = vec![false; num_colors + 1];
    for _ in 0..sweeps {
        let mut moved_this_sweep = 0usize;
        for v in 0..g.num_vertices() {
            let current = colors[v] as usize;
            // Mark neighbor colors.
            for &w in g.neighbors(v as u32) {
                forbidden[colors[w as usize] as usize] = true;
            }
            // Smallest permissible class strictly smaller than ours.
            let mut best = current;
            for c in 1..=num_colors {
                if !forbidden[c] && sizes[c] + 1 < sizes[best] {
                    // Moving shrinks the spread only when the target stays
                    // below the source even after the move.
                    if sizes[c] < sizes[best] {
                        best = c;
                    }
                }
            }
            if best != current {
                sizes[current] -= 1;
                sizes[best] += 1;
                colors[v] = best as Color;
                moved_this_sweep += 1;
            }
            // Clear marks (cheaper than reallocating).
            for &w in g.neighbors(v as u32) {
                forbidden[colors[w as usize] as usize] = false;
            }
            forbidden[current] = false;
            forbidden[best] = false;
        }
        moved += moved_this_sweep;
        if moved_this_sweep == 0 {
            break;
        }
    }
    BalanceOutcome {
        moved,
        stddev_before: before,
        stddev_after: stddev(&sizes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::greedy_seq;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::erdos_renyi;
    use gcol_graph::gen::{grid2d, StencilKind};
    use gcol_graph::ordering::Ordering;

    #[test]
    fn balancing_preserves_propriety_and_count() {
        let g = erdos_renyi(2000, 14_000, 3);
        let r = greedy_seq(&g, Ordering::Natural);
        let mut colors = r.colors.clone();
        let out = balance_colors(&g, &mut colors, r.num_colors, 4);
        verify_coloring(&g, &colors).unwrap();
        let max = colors.iter().copied().max().unwrap() as usize;
        assert!(max <= r.num_colors, "balancing must not add colors");
        assert!(out.stddev_after <= out.stddev_before);
    }

    #[test]
    fn balancing_actually_evens_out_first_fit_skew() {
        // First fit on a 2-colorable grid puts almost everything in color
        // 1 and 2; with a 4-color budget the balancer can spread load.
        let g = grid2d(40, 40, StencilKind::FivePoint);
        let r = greedy_seq(&g, Ordering::Natural);
        let mut colors = r.colors.clone();
        let out = balance_colors(&g, &mut colors, r.num_colors, 8);
        verify_coloring(&g, &colors).unwrap();
        // The grid greedy uses 2 colors evenly; widen the budget to see
        // real movement on a denser instance instead.
        let g = erdos_renyi(3000, 30_000, 7);
        let r = greedy_seq(&g, Ordering::Natural);
        let mut colors = r.colors.clone();
        let before_out = balance_colors(&g, &mut colors, r.num_colors, 8);
        verify_coloring(&g, &colors).unwrap();
        assert!(
            before_out.stddev_after < before_out.stddev_before,
            "skewed first-fit classes should flatten: {before_out:?}"
        );
        let _ = out;
    }

    #[test]
    fn balanced_fixed_point_is_stable() {
        let g = erdos_renyi(500, 3000, 9);
        let r = greedy_seq(&g, Ordering::Natural);
        let mut colors = r.colors.clone();
        balance_colors(&g, &mut colors, r.num_colors, 10);
        let snapshot = colors.clone();
        let again = balance_colors(&g, &mut colors, r.num_colors, 10);
        assert_eq!(colors, snapshot, "second balance must be a no-op");
        assert_eq!(again.moved, 0);
    }

    #[test]
    fn empty_graph() {
        let g = gcol_graph::Csr::empty(0);
        let mut colors: Vec<u32> = Vec::new();
        let out = balance_colors(&g, &mut colors, 0, 3);
        assert_eq!(out.moved, 0);
    }
}

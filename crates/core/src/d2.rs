//! Distance-2 coloring — the problem the Gebremedhin–Manne line of work
//! (the paper's refs \[9\]/\[10\]) was originally built for: estimating
//! sparse Jacobians/Hessians, where two columns can share a finite-
//! difference evaluation only if no row touches both. On the adjacency
//! graph that is exactly "no two vertices within distance 2 share a
//! color".
//!
//! Both the sequential greedy and the speculative-parallel variants reuse
//! this crate's machinery: the mask covers the two-hop neighborhood, and
//! the GM-style conflict detection re-queues the smaller endpoint of any
//! violating pair.

use gcol_graph::check::Color;
use gcol_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering as AtOrd};

/// Result of a distance-2 coloring run.
#[derive(Debug, Clone)]
pub struct D2Result {
    /// Per-vertex colors, 1-based.
    pub colors: Vec<Color>,
    /// Number of colors used.
    pub num_colors: usize,
    /// Speculative rounds (1 for the sequential algorithm).
    pub rounds: usize,
}

/// Verifies a distance-2 coloring: every vertex is colored and no two
/// distinct vertices at distance ≤ 2 share a color. Returns the first
/// violating pair.
pub fn verify_d2_coloring(g: &Csr, colors: &[Color]) -> Result<(), (VertexId, VertexId)> {
    assert_eq!(colors.len(), g.num_vertices());
    let bad = (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .find_map_any(|v| {
            if colors[v as usize] == 0 {
                return Some((v, v));
            }
            // Distance 1.
            for &w in g.neighbors(v) {
                if w != v && colors[w as usize] == colors[v as usize] {
                    return Some((v, w));
                }
                // Distance 2 through w.
                for &x in g.neighbors(w) {
                    if x != v && colors[x as usize] == colors[v as usize] {
                        return Some((v, x));
                    }
                }
            }
            None
        });
    match bad {
        Some(pair) => Err(pair),
        None => Ok(()),
    }
}

/// Sequential greedy distance-2 coloring (first fit over the two-hop
/// neighborhood). Uses at most `Δ² + 1` colors.
pub fn greedy_d2_seq(g: &Csr) -> D2Result {
    let n = g.num_vertices();
    let mut colors = vec![0 as Color; n];
    // Two-hop degree can reach Δ²; mask sized accordingly (lazily grown).
    let mut mask: Vec<u64> = vec![0; g.max_degree() + 2];
    let mut num_colors = 0usize;
    for v in 0..n as VertexId {
        let marker = v as u64 + 1;
        let mark = |mask: &mut Vec<u64>, c: Color| {
            let c = c as usize;
            if c >= mask.len() {
                mask.resize(c + 1, 0);
            }
            mask[c] = marker;
        };
        for &w in g.neighbors(v) {
            mark(&mut mask, colors[w as usize]);
            for &x in g.neighbors(w) {
                if x != v {
                    mark(&mut mask, colors[x as usize]);
                }
            }
        }
        let mut c = 1usize;
        while c < mask.len() && mask[c] == marker {
            c += 1;
        }
        colors[v as usize] = c as Color;
        num_colors = num_colors.max(c);
    }
    D2Result {
        colors,
        num_colors,
        rounds: 1,
    }
}

/// Speculative-parallel distance-2 coloring: GM rounds with a two-hop
/// mask and two-hop conflict detection (re-queue the smaller endpoint of
/// any violating pair, matching this crate's `v < w` convention).
pub fn gm_d2_parallel(g: &Csr, max_rounds: usize) -> D2Result {
    let n = g.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut worklist: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;

    while !worklist.is_empty() {
        rounds += 1;
        assert!(
            rounds <= max_rounds,
            "distance-2 GM did not converge within {max_rounds} rounds"
        );
        let pass = rounds as u64;
        worklist
            .par_chunks(256)
            .for_each_init(Vec::new, |mask, chunk| {
                for &v in chunk {
                    let marker = pass * (n as u64 + 1) + v as u64 + 1;
                    let mark = |mask: &mut Vec<u64>, c: u32| {
                        let c = c as usize;
                        if c >= mask.len() {
                            mask.resize(c + 1, 0);
                        }
                        mask[c] = marker;
                    };
                    for &w in g.neighbors(v) {
                        mark(mask, colors[w as usize].load(AtOrd::Relaxed));
                        for &x in g.neighbors(w) {
                            if x != v {
                                mark(mask, colors[x as usize].load(AtOrd::Relaxed));
                            }
                        }
                    }
                    let mut c = 1usize;
                    while c < mask.len() && mask[c] == marker {
                        c += 1;
                    }
                    colors[v as usize].store(c as u32, AtOrd::Relaxed);
                }
            });
        // Two-hop conflict detection over the just-colored worklist.
        worklist = worklist
            .par_iter()
            .copied()
            .filter(|&v| {
                let cv = colors[v as usize].load(AtOrd::Relaxed);
                g.neighbors(v).iter().any(|&w| {
                    (v < w && cv == colors[w as usize].load(AtOrd::Relaxed))
                        || g.neighbors(w).iter().any(|&x| {
                            v < x && x != v && cv == colors[x as usize].load(AtOrd::Relaxed)
                        })
                })
            })
            .collect();
    }

    let colors: Vec<Color> = colors.into_iter().map(AtomicU32::into_inner).collect();
    let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
    D2Result {
        colors,
        num_colors,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, path, star};
    use gcol_graph::gen::{grid2d, StencilKind};

    #[test]
    fn d2_on_path_needs_three() {
        // Distance-2 on a path: every 3 consecutive vertices differ.
        let r = greedy_d2_seq(&path(20));
        verify_d2_coloring(&path(20), &r.colors).unwrap();
        assert_eq!(r.num_colors, 3);
    }

    #[test]
    fn d2_on_star_needs_n() {
        // All leaves are pairwise at distance 2 through the hub.
        let g = star(12);
        let r = greedy_d2_seq(&g);
        verify_d2_coloring(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, 12);
    }

    #[test]
    fn d2_is_stricter_than_d1() {
        let g = grid2d(12, 12, StencilKind::FivePoint);
        let d1 = crate::seq::greedy_seq(&g, gcol_graph::ordering::Ordering::Natural);
        let d2 = greedy_d2_seq(&g);
        verify_d2_coloring(&g, &d2.colors).unwrap();
        assert!(
            d2.num_colors > d1.num_colors,
            "d2 {} should exceed d1 {}",
            d2.num_colors,
            d1.num_colors
        );
        // A d2 coloring is in particular a proper d1 coloring.
        gcol_graph::check::verify_coloring(&g, &d2.colors).unwrap();
    }

    #[test]
    fn verifier_rejects_distance_two_violations() {
        // Path 0-1-2: colors (1, 2, 1) are d1-proper but d2-invalid.
        let g = path(3);
        gcol_graph::check::verify_coloring(&g, &[1, 2, 1]).unwrap();
        assert!(verify_d2_coloring(&g, &[1, 2, 1]).is_err());
        verify_d2_coloring(&g, &[1, 2, 3]).unwrap();
    }

    #[test]
    fn parallel_d2_matches_sequential_quality_band() {
        for g in [
            cycle(40),
            complete(10),
            erdos_renyi(400, 1600, 3),
            grid2d(15, 15, StencilKind::FivePoint),
        ] {
            let seq = greedy_d2_seq(&g);
            let par = gm_d2_parallel(&g, 10_000);
            verify_d2_coloring(&g, &par.colors).unwrap();
            assert!(
                par.num_colors <= seq.num_colors + 4,
                "par {} vs seq {}",
                par.num_colors,
                seq.num_colors
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(0);
        assert_eq!(greedy_d2_seq(&g).num_colors, 0);
        assert_eq!(gm_d2_parallel(&g, 5).num_colors, 0);
    }
}

//! Rokos, Gorman & Kelly's improved speculative iteration (Euro-Par 2015;
//! the paper's ref. \[17\]).
//!
//! Catalyürek-style GM alternates a full speculative-coloring pass and a
//! full detection pass. Rokos et al. observed the two can be *fused*: each
//! round, every worklist vertex checks whether its current color conflicts
//! and, if so, immediately recolors itself with the first fit over its
//! neighbors' current colors; a vertex re-queues only while a conflict
//! remains. This roughly halves the number of edge scans per converged
//! vertex and removes the separate detection kernel — the main reason
//! their Xeon Phi implementation outran the original.
//!
//! The resolution rule must be asymmetric to terminate: only the *smaller*
//! endpoint of a monochromatic edge recolors (the larger keeps its color),
//! mirroring the `v < w` convention used throughout this crate.

use gcol_graph::check::Color;
use gcol_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering as AtOrd};

/// Result of the fused detect-and-recolor iteration.
#[derive(Debug, Clone)]
pub struct RokosResult {
    /// Per-vertex colors, 1-based.
    pub colors: Vec<Color>,
    /// Number of colors used.
    pub num_colors: usize,
    /// Rounds (the initial coloring pass counts as round 1).
    pub rounds: usize,
    /// Total vertex-recolorings performed after the initial pass — the
    /// work the fusion saves compared to full detection sweeps.
    pub recolorings: usize,
}

/// Runs the fused speculative iteration.
pub fn rokos_parallel(g: &Csr, max_rounds: usize) -> RokosResult {
    let n = g.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mask_len = g.max_degree() + 2;
    let mut rounds = 0usize;
    let mut recolorings = 0usize;

    // Round 1: speculative first-fit over all vertices.
    let mut worklist: Vec<VertexId> = (0..n as VertexId).collect();
    let first_fit = |v: VertexId, pass: u64, mask: &mut Vec<u64>| -> u32 {
        let marker = pass * n as u64 + v as u64 + 1;
        for &w in g.neighbors(v) {
            let cw = colors[w as usize].load(AtOrd::Relaxed);
            mask[cw as usize] = marker;
        }
        let mut c = 1usize;
        while mask[c] == marker {
            c += 1;
        }
        c as u32
    };

    while !worklist.is_empty() {
        rounds += 1;
        assert!(
            rounds <= max_rounds,
            "Rokos iteration did not converge within {max_rounds} rounds"
        );
        let pass = rounds as u64;
        let is_first = rounds == 1;
        // Fused pass: recolor-if-conflicted, and report whether the vertex
        // needs another look.
        let requeue: Vec<VertexId> = worklist
            .par_chunks(512)
            .map_init(
                || vec![0u64; mask_len],
                |mask, chunk| {
                    let mut keep = Vec::new();
                    for &v in chunk {
                        let cv = colors[v as usize].load(AtOrd::Relaxed);
                        let conflicted = cv == 0
                            || g.neighbors(v)
                                .iter()
                                .any(|&w| v < w && cv == colors[w as usize].load(AtOrd::Relaxed));
                        if conflicted {
                            let c = first_fit(v, pass, mask);
                            colors[v as usize].store(c, AtOrd::Relaxed);
                            // A recolored vertex may race again: check once
                            // more next round.
                            keep.push(v);
                        }
                    }
                    keep
                },
            )
            .flatten()
            .collect();
        if !is_first {
            recolorings += requeue.len();
        }
        // Converged when a pass recolors nothing. The initial pass
        // re-queues every vertex (all started uncolored), so non-empty
        // graphs always get at least one verification round.
        worklist = requeue;
    }

    let colors: Vec<Color> = colors.into_iter().map(AtomicU32::into_inner).collect();
    let num_colors = colors.iter().copied().max().unwrap_or(0) as usize;
    RokosResult {
        colors,
        num_colors,
        rounds,
        recolorings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::check::verify_coloring;
    use gcol_graph::gen::simple::{complete, cycle, erdos_renyi, star};
    use gcol_graph::gen::{rmat, RmatParams};

    #[test]
    fn proper_on_assorted_graphs() {
        for g in [
            cycle(120),
            complete(20),
            star(400),
            erdos_renyi(1500, 9000, 2),
            rmat(RmatParams::skewed(11, 10), 4),
        ] {
            let r = rokos_parallel(&g, 10_000);
            verify_coloring(&g, &r.colors).unwrap();
            assert!(r.num_colors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn quality_matches_gm() {
        let g = rmat(RmatParams::erdos_renyi(12, 12), 6);
        let gm = crate::gm::gm_parallel(&g, 10_000);
        let rk = rokos_parallel(&g, 10_000);
        assert!(
            (gm.num_colors as i64 - rk.num_colors as i64).abs() <= 2,
            "GM {} vs Rokos {}",
            gm.num_colors,
            rk.num_colors
        );
    }

    #[test]
    fn empty_and_isolated() {
        let r = rokos_parallel(&Csr::empty(0), 10);
        assert_eq!(r.num_colors, 0);
        let r = rokos_parallel(&Csr::empty(50), 10);
        assert!(r.colors.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn round_guard() {
        rokos_parallel(&complete(4), 0);
    }
}

//! # gcol-core — parallel graph coloring algorithms
//!
//! The paper's seven evaluated schemes plus the CPU-parallel context
//! algorithms, behind one [`Scheme`] dispatch:
//!
//! | Scheme | Algorithm | Substrate |
//! |---|---|---|
//! | [`Scheme::Sequential`] | Alg. 1, first-fit greedy | CPU (modeled as the paper's Xeon E5-2670) |
//! | [`Scheme::ThreeStepGm`] | Grosset et al. 3-step | GPU + PCIe + sequential CPU resolution |
//! | [`Scheme::TopoBase`] / [`Scheme::TopoLdg`] | Alg. 4 | simulated K20c |
//! | [`Scheme::DataBase`] / [`Scheme::DataLdg`] | Alg. 5 + prefix-sum worklists | simulated K20c |
//! | [`Scheme::CsrColor`] | cuSPARSE multi-hash MIS | simulated K20c |
//! | [`Scheme::CpuGm`] | Alg. 2 | rayon multicore |
//! | [`Scheme::CpuJp`] | Alg. 3 | rayon multicore |
//!
//! Every scheme returns a [`Coloring`]: the colors themselves, the color
//! count, the iteration count and a modeled [`RunProfile`] timeline
//! (kernels + transfers + host phases), which is what the benchmark
//! harness turns into the paper's figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod balance;
pub mod d2;
pub mod gm;
pub mod gpu;
pub mod hash;
pub mod job;
pub mod jp;
pub mod jp_orderings;
pub mod rokos;
pub mod seq;

use gcol_graph::check::Color;
use gcol_graph::ordering::Ordering;
use gcol_graph::Csr;
use gcol_simt::{CpuModel, Device, ExecMode, NativeBackend, SimtBackend};
use serde::{Deserialize, Serialize};

pub use gcol_graph::check::{
    compact_colors, count_colors, count_conflicts, verify_coloring, ColoringViolation,
};
pub use gcol_simt::{Backend, BackendKind, RunProfile, SanitizerReport};
pub use gpu::delta::{recolor_after_edits, recolor_delta, recolor_delta_sanitized};
pub use gpu::frontier::ExchangeKind;
pub use gpu::sanitize::color_sanitized;
pub use job::{Fingerprint, JobSpec};

/// Tuning knobs shared by every scheme.
#[derive(Debug, Clone)]
pub struct ColorOptions {
    /// Threads per block for the GPU schemes. The paper's default is 128
    /// (Fig. 8 shows it is the best average choice).
    pub block_size: u32,
    /// Simulator execution mode.
    pub exec_mode: ExecMode,
    /// Safety valve on speculate/detect rounds and MIS sweeps.
    pub max_iterations: usize,
    /// Seed for hash priorities (JP, csrcolor).
    pub seed: u64,
    /// Number of hash functions per csrcolor sweep (2N independent sets
    /// per sweep).
    pub num_hashes: usize,
    /// Vertex ordering for the sequential baseline.
    pub ordering: Ordering,
    /// GPU rounds before the 3-step baseline falls back to the CPU.
    pub threestep_rounds: usize,
    /// Charge the initial host-to-device copy to the GPU schemes. The
    /// paper excludes I/O and times computation only, so this defaults to
    /// `false`; the 3-step baseline always pays its mid-run transfers.
    pub charge_h2d: bool,
    /// Execution backend for the GPU schemes: the paper-faithful timing
    /// simulator (default) or the native rayon path.
    pub backend: BackendKind,
    /// Number of devices for the GPU schemes. With more than one, the
    /// graph is partitioned into that many shards, each colored on its
    /// own backend instance with ghost-frontier boundary-exchange rounds
    /// (see `gpu::sharded`). CPU schemes ignore it.
    pub num_shards: usize,
    /// Wire encoding for the sharded driver's ghost-frontier rounds:
    /// compressed deltas (default) or the dense full-frontier push.
    /// Single-device runs ignore it; labels are identical either way.
    pub exchange: ExchangeKind,
}

impl ColorOptions {
    /// Fluent setter: thread block size.
    ///
    /// ```
    /// use gcol_core::ColorOptions;
    /// let opts = ColorOptions::default().with_block_size(256).with_seed(7);
    /// assert_eq!(opts.block_size, 256);
    /// assert_eq!(opts.seed, 7);
    /// ```
    pub fn with_block_size(mut self, block_size: u32) -> Self {
        self.block_size = block_size;
        self
    }

    /// Fluent setter: execution mode.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Fluent setter: hash seed (JP, csrcolor).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fluent setter: csrcolor hash-function count.
    pub fn with_num_hashes(mut self, n: usize) -> Self {
        self.num_hashes = n;
        self
    }

    /// Fluent setter: sequential-baseline vertex ordering.
    pub fn with_ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Fluent setter: execution backend for the GPU schemes.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Fluent setter: device/shard count for the GPU schemes.
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards;
        self
    }

    /// Fluent setter: ghost-frontier wire encoding for sharded runs.
    pub fn with_exchange(mut self, exchange: ExchangeKind) -> Self {
        self.exchange = exchange;
        self
    }
}

impl Default for ColorOptions {
    fn default() -> Self {
        Self {
            block_size: 128,
            exec_mode: ExecMode::Deterministic,
            max_iterations: 10_000,
            seed: 0x5EED_C010_7175,
            num_hashes: 2,
            ordering: Ordering::Natural,
            threestep_rounds: 2,
            charge_h2d: false,
            backend: BackendKind::Simt,
            num_shards: 1,
            exchange: ExchangeKind::default(),
        }
    }
}

/// Why a coloring run could not produce a result. Surfaced by
/// [`Scheme::try_color`]; the infallible [`Scheme::color`] panics on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColorError {
    /// The speculate/detect (or MIS-sweep) loop exceeded
    /// [`ColorOptions::max_iterations`] without converging.
    MaxIterations {
        /// The scheme that failed to converge.
        scheme: Scheme,
        /// The configured iteration cap.
        limit: usize,
    },
    /// The options are invalid for this scheme.
    InvalidOptions {
        /// The scheme that rejected them.
        scheme: Scheme,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ColorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColorError::MaxIterations { scheme, limit } => {
                write!(f, "{} did not converge within {limit} iterations", scheme)
            }
            ColorError::InvalidOptions { scheme, reason } => {
                write!(f, "{}: invalid options: {reason}", scheme)
            }
        }
    }
}

impl std::error::Error for ColorError {}

/// The result of running one coloring scheme.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// Which scheme produced this result.
    pub scheme: Scheme,
    /// Per-vertex colors, 1-based and dense (`1..=num_colors`).
    pub colors: Vec<Color>,
    /// Number of distinct colors used.
    pub num_colors: usize,
    /// Speculate/detect rounds (SGR), sweeps (csrcolor), or GPU rounds
    /// (3-step). 1 for the sequential baseline.
    pub iterations: usize,
    /// Modeled timeline: kernels, PCIe transfers, host phases.
    pub profile: RunProfile,
}

impl Coloring {
    /// Total modeled milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.profile.total_ms()
    }

    /// Groups vertices by color: `classes()[c]` holds every vertex of
    /// color `c + 1`, in increasing vertex order. This is the structure
    /// chromatic scheduling executes wave by wave.
    pub fn classes(&self) -> Vec<Vec<u32>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.colors.iter().enumerate() {
            if c != 0 {
                classes[c as usize - 1].push(v as u32);
            }
        }
        classes
    }

    /// Sizes of the color classes (`classes()` without materializing the
    /// vertex lists).
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_colors];
        for &c in &self.colors {
            if c != 0 {
                sizes[c as usize - 1] += 1;
            }
        }
        sizes
    }
}

/// The coloring schemes of the paper's evaluation (§IV) plus the two CPU
/// context algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Algorithm 1 on one CPU core — the baseline of every speedup.
    Sequential,
    /// Grosset et al.'s 3-step GM (GPU + CPU round trips).
    ThreeStepGm,
    /// Algorithm 4, plain loads (T-base).
    TopoBase,
    /// Algorithm 4 with read-only-cache loads (T-ldg).
    TopoLdg,
    /// Algorithm 5 with prefix-sum worklists, plain loads (D-base).
    DataBase,
    /// Algorithm 5 with read-only-cache loads (D-ldg).
    DataLdg,
    /// cuSPARSE's multi-hash MIS coloring.
    CsrColor,
    /// Ablation: Algorithm 5 with per-thread atomic worklist pushes
    /// instead of prefix-sum compaction (the design §III-C rejects).
    DataAtomic,
    /// Extension: topology-driven with *edge-parallel* detection (the
    /// load-balance future work of §IV, via Merrill-style edge mapping).
    TopoEdge,
    /// Algorithm 2 on multicore (rayon).
    CpuGm,
    /// Algorithm 3 on multicore (rayon).
    CpuJp,
    /// Rokos et al.'s fused detect-and-recolor iteration (ref. \[17\]).
    CpuRokos,
    /// JP with largest-log-degree-first priorities (ref. \[20\]).
    CpuJpLlf,
    /// JP with smallest-degree-last priorities (ref. \[20\]).
    CpuJpSl,
}

impl Scheme {
    /// Every built-in scheme, in the canonical registry order (paper's
    /// seven first, then the ablations/extensions, then the CPU context
    /// algorithms). The single source of truth for registries, CLIs and
    /// tests.
    pub const ALL: [Scheme; 14] = [
        Scheme::Sequential,
        Scheme::ThreeStepGm,
        Scheme::TopoBase,
        Scheme::TopoLdg,
        Scheme::DataBase,
        Scheme::DataLdg,
        Scheme::CsrColor,
        Scheme::DataAtomic,
        Scheme::TopoEdge,
        Scheme::CpuGm,
        Scheme::CpuJp,
        Scheme::CpuRokos,
        Scheme::CpuJpLlf,
        Scheme::CpuJpSl,
    ];

    /// Looks a scheme up by its display name (the paper's legend labels,
    /// e.g. `"T-ldg"`). Inverse of [`Scheme::name`].
    pub fn from_name(name: &str) -> Option<Scheme> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The seven schemes of the paper's Figs. 6 and 7, in its order.
    pub fn paper_seven() -> [Scheme; 7] {
        [
            Scheme::Sequential,
            Scheme::ThreeStepGm,
            Scheme::TopoBase,
            Scheme::TopoLdg,
            Scheme::DataBase,
            Scheme::DataLdg,
            Scheme::CsrColor,
        ]
    }

    /// The eight GPU-resident schemes: everything that launches kernels
    /// through a [`Backend`] and therefore shards across devices. (The
    /// 3-step GM baseline is included — its GPU rounds shard; its CPU
    /// resolution step runs on the host like any other scheme's driver
    /// loop.)
    pub const GPU: [Scheme; 8] = [
        Scheme::ThreeStepGm,
        Scheme::TopoBase,
        Scheme::TopoLdg,
        Scheme::DataBase,
        Scheme::DataLdg,
        Scheme::CsrColor,
        Scheme::DataAtomic,
        Scheme::TopoEdge,
    ];

    /// `true` for the GPU-resident schemes (see [`Scheme::GPU`]).
    pub fn is_gpu(&self) -> bool {
        Self::GPU.contains(self)
    }

    /// The paper's own four proposed implementations.
    pub fn proposed_four() -> [Scheme; 4] {
        [
            Scheme::TopoBase,
            Scheme::TopoLdg,
            Scheme::DataBase,
            Scheme::DataLdg,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Sequential => "sequential",
            Scheme::ThreeStepGm => "3-step GM",
            Scheme::TopoBase => "T-base",
            Scheme::TopoLdg => "T-ldg",
            Scheme::DataBase => "D-base",
            Scheme::DataLdg => "D-ldg",
            Scheme::CsrColor => "csrcolor",
            Scheme::DataAtomic => "D-atomic",
            Scheme::TopoEdge => "T-edge",
            Scheme::CpuGm => "cpu-GM",
            Scheme::CpuJp => "cpu-JP",
            Scheme::CpuRokos => "cpu-Rokos",
            Scheme::CpuJpLlf => "cpu-JP-LLF",
            Scheme::CpuJpSl => "cpu-JP-SL",
        }
    }

    /// Runs this scheme on `g`, panicking on [`ColorError`] — the
    /// convenience wrapper around [`Scheme::try_color`] for callers that
    /// treat non-convergence as a bug.
    pub fn color(&self, g: &Csr, dev: &Device, opts: &ColorOptions) -> Coloring {
        self.try_color(g, dev, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs this scheme on `g`. GPU schemes execute on the backend chosen
    /// by [`ColorOptions::backend`] — the timing simulator of `dev`
    /// (default), the native rayon path, or the simulator under
    /// shadow-memory launch analysis ([`BackendKind::Sanitize`]; see
    /// [`color_sanitized`] to also get the report); CPU schemes run
    /// natively and record their time in the profile (the sequential
    /// baseline records its *modeled* Xeon time so that paper-style
    /// speedup ratios are meaningful).
    pub fn try_color(
        &self,
        g: &Csr,
        dev: &Device,
        opts: &ColorOptions,
    ) -> Result<Coloring, ColorError> {
        if opts.backend == BackendKind::Sanitize {
            // The sanitizer entry point handles both the single-device
            // and the sharded path itself. Harmful findings go to stderr
            // (this signature has nowhere to return a report); call
            // `gpu::sanitize::color_sanitized` directly to inspect it.
            return gpu::sanitize::color_sanitized(*self, g, dev, opts).map(|(c, report)| {
                if !report.is_clean() {
                    eprintln!("sanitizer: {self} has harmful findings:\n{report}");
                }
                c
            });
        }
        if opts.num_shards > 1 && self.is_gpu() {
            return match opts.backend {
                BackendKind::Simt => gpu::color_sharded(
                    *self,
                    g,
                    &gcol_simt::ShardedBackend::uniform(opts.num_shards, |_| {
                        SimtBackend::new(dev, opts.exec_mode)
                    }),
                    opts,
                ),
                BackendKind::Native => gpu::color_sharded(
                    *self,
                    g,
                    &gcol_simt::ShardedBackend::uniform(opts.num_shards, |_| NativeBackend::new()),
                    opts,
                ),
                BackendKind::Sanitize => unreachable!("routed above"),
            };
        }
        match opts.backend {
            BackendKind::Simt => self.try_color_on(&SimtBackend::new(dev, opts.exec_mode), g, opts),
            BackendKind::Native => self.try_color_on(&NativeBackend::new(), g, opts),
            BackendKind::Sanitize => unreachable!("routed above"),
        }
    }

    /// Runs this scheme with an explicit execution [`Backend`] (the CPU
    /// schemes ignore it — they have no kernels to launch).
    pub fn try_color_on<B: Backend>(
        &self,
        backend: &B,
        g: &Csr,
        opts: &ColorOptions,
    ) -> Result<Coloring, ColorError> {
        match self {
            Scheme::Sequential => {
                let r = seq::greedy_seq(g, opts.ordering);
                let mut profile = RunProfile::new();
                profile.host(
                    "sequential greedy (modeled Xeon E5-2670)",
                    CpuModel::xeon_e5_2670().greedy_sweep_ms(g.num_vertices(), g.num_edges()),
                );
                Ok(Coloring {
                    scheme: *self,
                    colors: r.colors,
                    num_colors: r.num_colors,
                    iterations: 1,
                    profile,
                })
            }
            Scheme::ThreeStepGm => gpu::threestep::color_threestep(g, backend, opts),
            Scheme::TopoBase => gpu::topo::color_topo(g, backend, opts, false),
            Scheme::TopoLdg => gpu::topo::color_topo(g, backend, opts, true),
            Scheme::DataBase => gpu::data::color_data(g, backend, opts, false),
            Scheme::DataLdg => gpu::data::color_data(g, backend, opts, true),
            Scheme::CsrColor => gpu::csrcolor::color_csrcolor(g, backend, opts),
            Scheme::DataAtomic => gpu::data_atomic::color_data_atomic(g, backend, opts),
            Scheme::TopoEdge => gpu::topo_edge::color_topo_edge(g, backend, opts),
            Scheme::CpuGm => {
                let t0 = std::time::Instant::now();
                let r = gm::gm_parallel(g, opts.max_iterations);
                let mut profile = RunProfile::new();
                profile.host("GM on rayon (wall clock)", t0.elapsed().as_secs_f64() * 1e3);
                Ok(Coloring {
                    scheme: *self,
                    colors: r.colors,
                    num_colors: r.num_colors,
                    iterations: r.rounds,
                    profile,
                })
            }
            Scheme::CpuJp => {
                let t0 = std::time::Instant::now();
                let r = jp::jp_parallel(g, opts.seed, opts.max_iterations);
                let mut profile = RunProfile::new();
                profile.host("JP on rayon (wall clock)", t0.elapsed().as_secs_f64() * 1e3);
                Ok(Coloring {
                    scheme: *self,
                    colors: r.colors,
                    num_colors: r.num_colors,
                    iterations: r.num_colors,
                    profile,
                })
            }
            Scheme::CpuRokos => {
                let t0 = std::time::Instant::now();
                let r = rokos::rokos_parallel(g, opts.max_iterations);
                let mut profile = RunProfile::new();
                profile.host(
                    "Rokos fused iteration (wall clock)",
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                Ok(Coloring {
                    scheme: *self,
                    colors: r.colors,
                    num_colors: r.num_colors,
                    iterations: r.rounds,
                    profile,
                })
            }
            Scheme::CpuJpLlf | Scheme::CpuJpSl => {
                let variant = if *self == Scheme::CpuJpLlf {
                    jp_orderings::JpVariant::LargestLogDegreeFirst
                } else {
                    jp_orderings::JpVariant::SmallestDegreeLast
                };
                let t0 = std::time::Instant::now();
                let r = jp_orderings::jp_ordered(g, variant, opts.seed, opts.max_iterations);
                let mut profile = RunProfile::new();
                profile.host("ordered JP (wall clock)", t0.elapsed().as_secs_f64() * 1e3);
                Ok(Coloring {
                    scheme: *self,
                    colors: r.colors,
                    num_colors: r.num_colors,
                    iterations: r.rounds,
                    profile,
                })
            }
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parses a display name (`"T-ldg"`, `"csrcolor"`, …) back into the
    /// scheme — what CLIs use for `--schemes` lists.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::from_name(s).ok_or_else(|| {
            let known: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
            format!(
                "unknown scheme {s:?} (expected one of: {})",
                known.join(", ")
            )
        })
    }
}

/// A scheme selection as requested by a front end: either a concrete
/// [`Scheme`] or `Auto`, meaning "let the planner decide". `Auto` is a
/// *request-time* notion only — by the time a job is fingerprinted,
/// cached or executed it has been resolved to a concrete scheme (the
/// `gcol-plan` crate owns that resolution), so cache keys always name
/// the plan that actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeChoice {
    /// Resolve the scheme (and backend/shards/exchange) via the planner.
    Auto,
    /// Run exactly this scheme.
    Fixed(Scheme),
}

impl SchemeChoice {
    /// Display name: `"auto"` or the fixed scheme's paper-legend name.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeChoice::Auto => "auto",
            SchemeChoice::Fixed(s) => s.name(),
        }
    }

    /// The concrete scheme, if this choice is already resolved.
    pub fn fixed(&self) -> Option<Scheme> {
        match self {
            SchemeChoice::Auto => None,
            SchemeChoice::Fixed(s) => Some(*s),
        }
    }
}

impl From<Scheme> for SchemeChoice {
    fn from(s: Scheme) -> Self {
        SchemeChoice::Fixed(s)
    }
}

impl std::fmt::Display for SchemeChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchemeChoice {
    type Err = String;

    /// `"auto"` (case-insensitive) or any [`Scheme`] display name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(SchemeChoice::Auto);
        }
        s.parse::<Scheme>().map(SchemeChoice::Fixed).map_err(|_| {
            let known: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
            format!(
                "unknown scheme {s:?} (expected \"auto\" or one of: {})",
                known.join(", ")
            )
        })
    }
}

/// Object-safe interface for coloring algorithms, so downstream users can
/// plug their own schemes into harnesses written against the built-in
/// ones. Every [`Scheme`] implements it by dispatching to itself.
pub trait Colorer: Sync {
    /// Display name for reports.
    fn label(&self) -> &str;

    /// Colors `g`, using the simulated `dev` if the algorithm runs there;
    /// errors (non-convergence, bad options) come back as [`ColorError`].
    fn try_run(&self, g: &Csr, dev: &Device, opts: &ColorOptions) -> Result<Coloring, ColorError>;

    /// Colors `g`, panicking on [`ColorError`] — for harnesses that treat
    /// failure as a bug.
    fn run(&self, g: &Csr, dev: &Device, opts: &ColorOptions) -> Coloring {
        self.try_run(g, dev, opts)
            .unwrap_or_else(|e| panic!("{}: {e}", self.label()))
    }
}

impl Colorer for Scheme {
    fn label(&self) -> &str {
        self.name()
    }
    fn try_run(&self, g: &Csr, dev: &Device, opts: &ColorOptions) -> Result<Coloring, ColorError> {
        self.try_color(g, dev, opts)
    }
}

/// All built-in schemes as trait objects — a ready-made registry
/// ([`Scheme::ALL`] boxed).
pub fn all_colorers() -> Vec<Box<dyn Colorer>> {
    Scheme::ALL
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn Colorer>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcol_graph::gen::simple::erdos_renyi;

    #[test]
    fn every_scheme_colors_properly_through_dispatch() {
        let dev = Device::tiny();
        let g = erdos_renyi(400, 2400, 1);
        let opts = ColorOptions::default();
        for scheme in Scheme::ALL {
            let r = scheme.color(&g, &dev, &opts);
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            assert_eq!(r.scheme, scheme);
            assert!(r.num_colors >= 1);
            assert!(r.total_ms() > 0.0, "{scheme} reported zero time");
        }
    }

    #[test]
    fn scheme_names_round_trip() {
        for scheme in Scheme::ALL {
            assert_eq!(Scheme::from_name(scheme.name()), Some(scheme));
            assert_eq!(scheme.name().parse::<Scheme>(), Ok(scheme));
        }
        assert!(Scheme::from_name("no-such-scheme").is_none());
        let err = "no-such-scheme".parse::<Scheme>().unwrap_err();
        assert!(err.contains("unknown scheme"), "{err}");
        assert!(err.contains("T-ldg"), "{err}");
    }

    #[test]
    fn registry_covers_every_scheme_and_colors_properly() {
        let dev = Device::tiny();
        let g = erdos_renyi(200, 1200, 4);
        let opts = ColorOptions::default();
        let registry = all_colorers();
        assert_eq!(registry.len(), Scheme::ALL.len());
        let mut names = std::collections::HashSet::new();
        for colorer in &registry {
            assert!(names.insert(colorer.label().to_string()), "dup name");
            let r = colorer.run(&g, &dev, &opts);
            verify_coloring(&g, &r.colors).unwrap_or_else(|e| panic!("{}: {e}", colorer.label()));
        }
    }

    #[test]
    fn paper_seven_matches_figure_order() {
        let names: Vec<&str> = Scheme::paper_seven().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "sequential",
                "3-step GM",
                "T-base",
                "T-ldg",
                "D-base",
                "D-ldg",
                "csrcolor"
            ]
        );
    }

    #[test]
    fn classes_partition_the_vertex_set() {
        let dev = Device::tiny();
        let g = erdos_renyi(300, 1500, 6);
        let r = Scheme::DataBase.color(&g, &dev, &ColorOptions::default());
        let classes = r.classes();
        assert_eq!(classes.len(), r.num_colors);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, 300);
        for (ci, class) in classes.iter().enumerate() {
            for &v in class {
                assert_eq!(r.colors[v as usize] as usize, ci + 1);
            }
            assert!(class.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        assert_eq!(
            r.class_sizes(),
            classes.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_profile_uses_cpu_model() {
        let dev = Device::tiny();
        let g = erdos_renyi(500, 3000, 2);
        let r = Scheme::Sequential.color(&g, &dev, &ColorOptions::default());
        let expect = CpuModel::xeon_e5_2670().greedy_sweep_ms(500, g.num_edges());
        assert!((r.total_ms() - expect).abs() < 1e-9);
    }

    #[test]
    fn scheme_choice_parses_auto_and_every_scheme_name() {
        assert_eq!("auto".parse::<SchemeChoice>(), Ok(SchemeChoice::Auto));
        assert_eq!("AUTO".parse::<SchemeChoice>(), Ok(SchemeChoice::Auto));
        assert_eq!(SchemeChoice::Auto.name(), "auto");
        assert_eq!(SchemeChoice::Auto.fixed(), None);
        for s in Scheme::ALL {
            let c: SchemeChoice = s.name().parse().unwrap();
            assert_eq!(c, SchemeChoice::from(s));
            assert_eq!(c.fixed(), Some(s));
            assert_eq!(c.to_string(), s.name());
        }
        let err = "warp-speed".parse::<SchemeChoice>().unwrap_err();
        assert!(err.contains("auto"), "{err}");
        assert!(err.contains("csrcolor"), "{err}");
    }
}

//! Seeded-violation tests: each rule gets a miniature source file with
//! a deliberate violation and the test asserts the linter fires with
//! the right rule at the right file:line. A linter whose negative tests
//! pass vacuously (rule never fires) is worse than no linter — these
//! are the proof each rule actually rejects its violation class.

use gcol_lint::lint_file;

/// kernel-ctx: raw slice indexing inside a kernel body is rejected at
/// the offending line; the ctx-mediated version of the same access is
/// accepted.
#[test]
fn kernel_ctx_rejects_direct_indexing() {
    let bad = "\
fn kernel(t: &mut impl KernelCtx, colors: &[u32]) {
    let v = t.global_id();
    let c = colors[v as usize];
    t.st(out, v, c);
}
";
    let diags = lint_file("seed/kernel_bad.rs", bad);
    assert_eq!(diags.len(), 1, "exactly the indexing line fires: {diags:?}");
    assert_eq!(diags[0].rule, "kernel-ctx");
    assert_eq!(diags[0].file, "seed/kernel_bad.rs");
    assert_eq!(
        diags[0].line, 3,
        "diagnostic anchors to `colors[v as usize]`"
    );

    let good = bad.replace("colors[v as usize]", "t.ld(colors, v as usize)");
    assert!(
        lint_file("seed/kernel_good.rs", &good).is_empty(),
        "the ctx-mediated access is clean"
    );
}

/// kernel-ctx: attributes (`#[inline]`), `vec![…]` in non-kernel fns,
/// and indexing in ordinary host functions never fire.
#[test]
fn kernel_ctx_ignores_host_code_and_attributes() {
    let src = "\
#[inline]
fn host(data: &[u32]) -> u32 {
    let v = vec![1, 2, 3];
    data[0] + v[1]
}

#[inline(always)]
fn kernel(t: &mut impl KernelCtx) {
    let x = t.ld(buf, 0);
    t.st(buf, 0, x + 1);
}
";
    assert!(lint_file("seed/host.rs", src).is_empty());
}

/// readonly-ldg: an annotated field passed to anything but `ldg` —
/// here an `st` call and a raw read — fires per access site.
#[test]
fn readonly_ldg_rejects_non_ldg_access() {
    let bad = "\
struct EdgeKernel {
    /// gcol-lint: readonly
    src: Buffer<u32>,
    dst: Buffer<u32>,
}
impl EdgeKernel {
    fn run(&self, t: &mut impl KernelCtx) {
        let e = t.global_id() as usize;
        let u = t.ldg(self.src, e);
        t.st(self.src, e, u + 1);
    }
}
";
    let diags = lint_file("seed/readonly_bad.rs", bad);
    assert_eq!(diags.len(), 1, "only the st() access fires: {diags:?}");
    assert_eq!(diags[0].rule, "readonly-ldg");
    assert_eq!(diags[0].line, 10, "anchors to the st(self.src, …) line");
    assert!(diags[0].message.contains("src"));

    let good = bad.replace("t.st(self.src, e, u + 1);", "t.st(self.dst, e, u + 1);");
    assert!(
        lint_file("seed/readonly_good.rs", &good).is_empty(),
        "writes to the unannotated buffer are fine"
    );
}

/// hot-path: the module tag turns allocation into an error; without the
/// tag the same source is clean.
#[test]
fn hot_path_rejects_allocation_and_time() {
    let body = "\
fn repair(order: &mut [u32]) {
    let t0 = std::time::Instant::now();
    let mut scratch = Vec::new();
    scratch.push(t0.elapsed().as_nanos() as u32);
    order.sort_unstable();
}
";
    let tagged = format!("//! gcol::hot_path\n{body}");
    let diags = lint_file("seed/hot_bad.rs", &tagged);
    assert!(
        diags.iter().all(|d| d.rule == "hot-path"),
        "only hot-path fires: {diags:?}"
    );
    // std::time + Instant on line 3, Vec::new on line 4.
    assert!(
        diags.iter().any(|d| d.line == 3),
        "the Instant::now line fires: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.line == 4),
        "the Vec::new line fires: {diags:?}"
    );

    assert!(
        lint_file("seed/hot_untagged.rs", body).is_empty(),
        "same source without the tag is out of scope"
    );
}

/// io-error-line: an io error enum variant without a `line` field is
/// rejected; the exempt shapes (Io, delegation to another *Error) pass.
#[test]
fn io_error_line_rejects_unanchored_variants() {
    let bad = "\
pub enum MtxError {
    BadHeader { line: usize, found: String },
    Truncated,
    DuplicateEntry { row: u64, col: u64 },
    Io(std::io::Error),
    Mtx(HeaderError),
}
";
    let diags = lint_file("crates/graph/src/io/seed.rs", bad);
    assert_eq!(
        diags.len(),
        2,
        "Truncated and DuplicateEntry fire: {diags:?}"
    );
    assert!(diags.iter().all(|d| d.rule == "io-error-line"));
    assert_eq!(diags[0].line, 3, "unit variant `Truncated`");
    assert_eq!(diags[1].line, 4, "struct variant without `line`");

    // Outside graph/src/io the rule does not apply at all.
    assert!(
        lint_file("crates/core/src/seed.rs", bad).is_empty(),
        "io-error-line is scoped to the io tree"
    );
}

/// The allow pragma suppresses exactly its rule on the next line and
/// nothing else.
#[test]
fn allow_pragma_is_line_and_rule_scoped() {
    let src = "\
pub enum SeedError {
    // gcol-lint: allow(io-error-line) hint-only variant, no input line exists
    UnknownFormat { hint: String },
    Truncated,
}
";
    let diags = lint_file("crates/graph/src/io/seed.rs", src);
    assert_eq!(
        diags.len(),
        1,
        "UnknownFormat suppressed, Truncated still fires: {diags:?}"
    );
    assert_eq!(diags[0].line, 4);
}

/// Violations inside comments, strings, and `#[cfg(test)]` modules are
/// invisible to every rule.
#[test]
fn comments_strings_and_test_mods_are_blanked() {
    let src = "\
//! gcol::hot_path
// this mentions Vec::new but is a comment
fn f() {
    let s = \"Instant::now() inside a string\";
    let _ = s;
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = Vec::new();
        let _ = std::time::Instant::now();
        let _ = v;
    }
}
";
    assert!(lint_file("seed/blanked.rs", src).is_empty());
}

/// planner-model: a decision threshold inlined in plan logic is
/// rejected at its line; the same file using only structural 0/1
/// literals is clean, and the same source under model.rs (or outside
/// the plan crate entirely) is exempt.
#[test]
fn planner_model_rejects_inline_decision_constants() {
    let bad = "\
pub fn choose(ms: f64, colors: f64) -> bool {
    let one = 1.0;
    ms < 0.75 * colors + one
}
";
    let diags = lint_file("crates/plan/src/lib.rs", bad);
    assert_eq!(diags.len(), 1, "exactly the 0.75 fires: {diags:?}");
    assert_eq!(diags[0].rule, "planner-model");
    assert_eq!(diags[0].line, 3, "diagnostic anchors to the magic number");
    assert!(diags[0].message.contains("0.75"), "{}", diags[0].message);

    // The decision table itself is where such constants belong…
    assert!(
        lint_file("crates/plan/src/model.rs", bad).is_empty(),
        "model.rs is exempt"
    );
    // …and the rule is scoped to the plan crate.
    assert!(
        lint_file("crates/core/src/lib.rs", bad).is_empty(),
        "planner-model is scoped to plan/src"
    );
}
